//! Offline stand-in for `serde`.
//!
//! The real crates.io registry is unreachable in this container, so the
//! workspace vendors a minimal, Value-based serialization framework with the
//! same import surface the codebase uses: `serde::{Serialize, Deserialize}`
//! traits plus derive macros of the same names, re-exported from the
//! companion `serde_derive` proc-macro crate.
//!
//! Design: types convert to/from a JSON-shaped [`Value`] tree. `serde_json`
//! (also vendored) renders and parses that tree. This intentionally trades
//! the zero-copy streaming architecture of real serde for a tiny,
//! dependency-free implementation; every payload in this workspace is small
//! (session snapshots, query specs, bench reports), so the extra allocation
//! is irrelevant.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// A JSON-shaped value tree. Object entries keep insertion order (and are
/// emitted sorted by `serde_json` for deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// -- helpers used by generated code ----------------------------------------

#[doc(hidden)]
pub fn __find<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[doc(hidden)]
pub fn __missing_field<T>(ty: &str, field: &str) -> Result<T, Error> {
    Err(Error::custom(format!("missing field `{field}` for {ty}")))
}

// -- primitive impls --------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => *f as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw).map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => *f as i64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw).map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// -- container impls --------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

/// Renders a map key as a JSON object key. Real serde requires map keys to
/// serialize as strings or integers; same restriction here.
fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        _ => Err(Error::custom("map key must serialize to string or integer")),
    }
}

/// Rebuilds a map key from its JSON object-key string: try the key type's
/// string form first, then fall back to integer forms (covers numeric
/// newtype keys such as `DescriptorId`).
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if s == "true" || s == "false" {
        if let Ok(k) = K::from_value(&Value::Bool(s == "true")) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot interpret map key `{s}`")))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k.to_value()).expect("unsupported map key type");
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k.to_value()).expect("unsupported map key type");
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(a) if a.len() == [$($n),+].len() => {
                        Ok(($($t::from_value(&a[$n])?,)+))
                    }
                    _ => Err(Error::custom("expected tuple array")),
                }
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn numeric_map_keys_round_trip() {
        let mut m: HashMap<u32, String> = HashMap::new();
        m.insert(3, "x".into());
        m.insert(11, "y".into());
        let back = HashMap::<u32, String>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn signed_and_float_coercions() {
        assert_eq!(i32::from_value(&Value::U64(5)).unwrap(), 5);
        assert_eq!(u16::from_value(&Value::I64(9)).unwrap(), 9);
        assert!((f64::from_value(&Value::U64(2)).unwrap() - 2.0).abs() < 1e-12);
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }
}
