//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the item token stream (no `syn`/`quote` available in this
//! container) and emits impls of the Value-based `serde::Serialize` /
//! `serde::Deserialize` traits defined by the in-tree `serde` stub.
//!
//! Supported surface — exactly what this workspace uses:
//! * named structs, tuple structs, unit structs (no generics)
//! * enums with unit, named-field, and tuple variants (externally tagged)
//! * `#[serde(transparent)]` on single-field structs
//! * `#[serde(skip)]` on named fields (omitted on serialize, `Default` on
//!   deserialize)
//!
//! Anything else is rejected with a panic so the gap is loud at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

// ---------------------------------------------------------------------------
// item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    data: Data,
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

struct Attrs {
    transparent: bool,
    skip: bool,
}

fn parse_serde_attr(group: &proc_macro::Group, attrs: &mut Attrs) {
    // Contents of the `(...)` following `serde`.
    for tok in group.stream() {
        match tok {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "transparent" => attrs.transparent = true,
                "skip" => attrs.skip = true,
                other => panic!("serde stub: unsupported serde attribute `{other}`"),
            },
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde stub: unsupported serde attribute token `{other}`"),
        }
    }
}

/// Skips one `#[...]` attribute starting at `i` (which points at `#`),
/// recording `serde(...)` contents into `attrs`. Returns the index after it.
fn consume_attr(toks: &[TokenTree], i: usize, attrs: &mut Attrs) -> usize {
    debug_assert!(matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#'));
    let TokenTree::Group(g) = &toks[i + 1] else {
        panic!("serde stub: malformed attribute");
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    if let Some(TokenTree::Ident(id)) = inner.first() {
        if id.to_string() == "serde" {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_attr(args, attrs);
            }
        }
    }
    i + 2
}

fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize, attrs: &mut Attrs) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i = consume_attr(toks, i, attrs);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super) / ...
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Skips a type after `:` until a top-level `,` (or end). Tracks `<`/`>`
/// nesting so commas inside generics don't split the field.
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while let Some(tok) = toks.get(i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut attrs = Attrs {
            transparent: false,
            skip: false,
        };
        i = skip_attrs_and_vis(&toks, i, &mut attrs);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            panic!(
                "serde stub: expected field name, got {:?}",
                toks.get(i).map(|t| t.to_string())
            );
        };
        let name = name.to_string();
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde stub: expected `:` after field `{name}`"),
        }
        i = skip_type(&toks, i);
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field {
            name,
            skip: attrs.skip,
        });
    }
    fields
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        let mut attrs = Attrs {
            transparent: false,
            skip: false,
        };
        i = skip_attrs_and_vis(&toks, i, &mut attrs);
        if attrs.skip {
            panic!("serde stub: #[serde(skip)] on tuple fields is unsupported");
        }
        if i >= toks.len() {
            break;
        }
        i = skip_type(&toks, i);
        n += 1;
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    n
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut attrs = Attrs {
            transparent: false,
            skip: false,
        };
        i = skip_attrs_and_vis(&toks, i, &mut attrs);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            panic!("serde stub: expected enum variant name");
        };
        let name = name.to_string();
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.clone();
                i += 1;
                VariantKind::Named(parse_named_fields(&g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.clone();
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&g))
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = Attrs {
        transparent: false,
        skip: false,
    };
    let mut i = skip_attrs_and_vis(&toks, 0, &mut attrs);

    let Some(TokenTree::Ident(kw)) = toks.get(i) else {
        panic!("serde stub: expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    i += 1;
    let Some(TokenTree::Ident(name)) = toks.get(i) else {
        panic!("serde stub: expected item name");
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde stub: generic types are unsupported (derive on `{name}`)");
        }
    }

    let data = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!(
                "serde stub: malformed struct body: {:?}",
                other.map(|t| t.to_string())
            ),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g))
            }
            _ => panic!("serde stub: malformed enum body"),
        },
        other => panic!("serde stub: cannot derive for `{other}` items"),
    };

    Item {
        name,
        transparent: attrs.transparent,
        data,
    }
}

// ---------------------------------------------------------------------------
// code generation
// ---------------------------------------------------------------------------

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = parse_item(input);
    let code = match mode {
        Mode::Ser => gen_serialize(&item),
        Mode::De => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| {
        panic!(
            "serde stub: generated invalid code for `{}`: {e:?}",
            item.name
        )
    })
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            if item.transparent {
                let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                assert!(
                    live.len() == 1,
                    "serde stub: transparent requires exactly one field"
                );
                format!("::serde::Serialize::to_value(&self.{})", live[0].name)
            } else {
                let mut s = String::from(
                    "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                );
                for f in fields.iter().filter(|f| !f.skip) {
                    s.push_str(&format!(
                        "__fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Object(__fields)");
                s
            }
        }
        Data::TupleStruct(n) => {
            if item.transparent {
                assert!(
                    *n == 1,
                    "serde stub: transparent requires exactly one field"
                );
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
            }
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let pat: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let mut inner = String::from(
                            "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "__fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(__fields))]) }}\n",
                            pat.join(", ")
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let content = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), {content})]),\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n  fn to_value(&self) -> ::serde::Value {{\n    {body}\n  }}\n}}\n"
    )
}

/// Generates the `field: <expr>` initializers for a named-field body read
/// from the object slice bound to `__obj`.
fn named_field_inits(ty_name: &str, fields: &[Field]) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            s.push_str(&format!(
                "{0}: match ::serde::__find(__obj, \"{0}\") {{\n  ::std::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)?,\n  ::std::option::Option::None => return ::serde::__missing_field(\"{1}\", \"{0}\"),\n}},\n",
                f.name, ty_name
            ));
        }
    }
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            if item.transparent {
                let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                assert!(
                    live.len() == 1,
                    "serde stub: transparent requires exactly one field"
                );
                let mut inits = format!(
                    "{}: ::serde::Deserialize::from_value(__v)?,\n",
                    live[0].name
                );
                for f in fields.iter().filter(|f| f.skip) {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                }
                format!("::std::result::Result::Ok({name} {{ {inits} }})")
            } else {
                format!(
                    "let __obj = match __v {{\n  ::serde::Value::Object(__m) => __m.as_slice(),\n  _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected object for {name}\")),\n}};\n::std::result::Result::Ok({name} {{\n{inits}}})",
                    inits = named_field_inits(name, fields)
                )
            }
        }
        Data::TupleStruct(n) => {
            if item.transparent {
                assert!(
                    *n == 1,
                    "serde stub: transparent requires exactly one field"
                );
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                    .collect();
                format!(
                    "let __arr = match __v {{\n  ::serde::Value::Array(__a) if __a.len() == {n} => __a,\n  _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected {n}-element array for {name}\")),\n}};\n::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
        }
        Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Named(fields) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet __obj = match __content {{\n  ::serde::Value::Object(__m) => __m.as_slice(),\n  _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected object for variant {name}::{vn}\")),\n}};\nreturn ::std::result::Result::Ok({name}::{vn} {{\n{inits}}});\n}}\n",
                            inits = named_field_inits(&format!("{name}::{vn}"), fields)
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        if *n == 1 {
                            tagged_arms.push_str(&format!(
                                "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__content)?)),\n"
                            ));
                        } else {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{vn}\" => {{\nlet __arr = match __content {{\n  ::serde::Value::Array(__a) if __a.len() == {n} => __a,\n  _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected array for variant {name}::{vn}\")),\n}};\nreturn ::std::result::Result::Ok({name}::{vn}({}));\n}}\n",
                                elems.join(", ")
                            ));
                        }
                    }
                }
            }
            format!(
                "match __v {{\n  ::serde::Value::Str(__s) => match __s.as_str() {{\n    {unit_arms}\n    _ => {{}}\n  }},\n  ::serde::Value::Object(__m) if __m.len() == 1 => {{\n    let (__tag, __content) = &__m[0];\n    let _ = __content;\n    match __tag.as_str() {{\n      {tagged_arms}\n      _ => {{}}\n    }}\n  }}\n  _ => {{}}\n}}\n::std::result::Result::Err(::serde::Error::custom(\"invalid value for enum {name}\"))"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n  fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n    let _ = __v;\n    {body}\n  }}\n}}\n"
    )
}
