//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the rand API this workspace uses — seeded
//! [`rngs::StdRng`], [`Rng::gen_range`] over integer and float ranges,
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`] — on top of a
//! SplitMix64 core. Deterministic for a given seed, which is all the
//! synthetic-corpus generators need; the exact stream differs from upstream
//! rand, so seeded corpora are internally reproducible but not bit-identical
//! to ones generated with the real crate.

use std::ops::{Range, RangeInclusive};

/// Core RNG trait: a source of `u64`s plus the derived sampling helpers.
pub trait RngCore {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of type `T` via [`Standard`]-style distribution
    /// (bool, integers, unit-interval floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps 64 random bits to a `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample(bits: u64) -> Self;
}

impl Standard for bool {
    fn sample(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(bits: u64) -> Self {
        unit_f64(bits)
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn sample(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

/// Types with a uniform sampler, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`. Implemented as blanket impls
/// over [`SampleUniform`] (like upstream rand) so type inference can unify
/// the element type with unsuffixed literals before defaulting kicks in.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(lo, hi, true, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    (hi as i128 - lo as i128 + 1) as u128
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    (hi as i128 - lo as i128) as u128
                };
                let x = (rng.next_u64() as u128) % span;
                (lo as i128 + x as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                if !inclusive {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-based deterministic RNG standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): full-period, passes
            // BigCrush; more than enough for synthetic-corpus generation.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias: the stub uses the same core for the small RNG.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::Rng;

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&y));
            let z: u32 = rng.gen_range(5..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }
}
