//! Offline stand-in for `proptest`.
//!
//! Same test-authoring surface the workspace uses — `proptest!` with
//! `#![proptest_config(ProptestConfig::with_cases(N))]`, range/tuple/char
//! class/`collection::vec` strategies, `prop_map` / `prop_flat_map` /
//! `prop_filter_map` combinators, `prop_assert!` / `prop_assert_eq!` — but
//! backed by plain deterministic random sampling: each test case draws from
//! an RNG seeded by the test's path and case index. No shrinking: a failing
//! case reports its case number (re-runnable because sampling is
//! deterministic), not a minimized input.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 RNG used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's module path + name and the case index, so each
    /// `(test, case)` pair sees a fixed, reproducible stream.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// errors / config
// ---------------------------------------------------------------------------

/// Failure raised by `prop_assert*` (or returned from a test body).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

impl From<&str> for TestCaseError {
    fn from(s: &str) -> Self {
        TestCaseError(s.to_string())
    }
}

/// Per-block configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, scaled down by `BIONAV_SANITIZER_SCALE` when set — the
    /// same knob the heavy fixtures honor (`bionav_mesh::synth::
    /// sanitizer_scale`), so instrumented runs (Miri, TSan) shrink the
    /// property suites too instead of excluding them. Floor-bounded at 8
    /// cases so a scaled run still explores, and deterministic for a
    /// given scale (the per-case RNG seed depends only on test name and
    /// case index).
    fn default() -> Self {
        let scale = std::env::var("BIONAV_SANITIZER_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| s.is_finite())
            .unwrap_or(1.0)
            .clamp(0.01, 1.0);
        // Precision note: 256 * scale is exact well past f64's integer
        // range; ceil keeps any nonzero scale at >= 1 before the floor.
        let cases = ((256.0 * scale).ceil() as u32).max(8);
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it,
    /// and draws from that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps redrawing until `f` returns `Some`; panics (citing `reason`)
    /// after too many rejections.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    /// Keeps redrawing until `f` accepts; panics (citing `reason`) after too
    /// many rejections.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

const MAX_REJECTS: usize = 1_000;

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected {MAX_REJECTS} draws: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected {MAX_REJECTS} draws: {}", self.reason);
    }
}

/// Always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// -- numeric ranges ---------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// -- tuples -----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

// -- `any` ------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Whole-domain strategy for `T`; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// -- string patterns --------------------------------------------------------

/// Character-class regex subset: `[class]{lo,hi}` atoms, e.g. `"[ -~]{1,40}"`
/// or `"[a-z]{2,8}"`. Classes support ranges, literals and `\n`/`\t`/`\\`
/// escapes; quantifiers support `{n}`, `{lo,hi}`, or none (exactly one).
struct PatternAtom {
    /// Inclusive `(lo, hi)` char spans.
    spans: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        assert!(
            chars[i] == '[',
            "proptest stub: unsupported regex `{pat}` (only `[class]{{lo,hi}}` atoms)"
        );
        i += 1;
        let mut spans: Vec<(char, char)> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            assert!(
                i < chars.len(),
                "proptest stub: unterminated class in `{pat}`"
            );
            let c = chars[i];
            i += 1;
            match c {
                ']' => {
                    if let Some(p) = pending.take() {
                        spans.push((p, p));
                    }
                    break;
                }
                '\\' => {
                    let esc = chars[i];
                    i += 1;
                    let lit = match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    };
                    if let Some(p) = pending.take() {
                        spans.push((p, p));
                    }
                    pending = Some(lit);
                }
                '-' if pending.is_some() && chars.get(i) != Some(&']') => {
                    let lo = pending.take().unwrap();
                    let mut hi = chars[i];
                    i += 1;
                    if hi == '\\' {
                        hi = match chars[i] {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        };
                        i += 1;
                    }
                    assert!(lo <= hi, "proptest stub: inverted range in `{pat}`");
                    spans.push((lo, hi));
                }
                lit => {
                    if let Some(p) = pending.take() {
                        spans.push((p, p));
                    }
                    pending = Some(lit);
                }
            }
        }
        assert!(!spans.is_empty(), "proptest stub: empty class in `{pat}`");
        // Quantifier.
        let (min, max) = if chars.get(i) == Some(&'{') {
            i += 1;
            let mut lo = String::new();
            while chars[i].is_ascii_digit() {
                lo.push(chars[i]);
                i += 1;
            }
            let lo: usize = lo.parse().expect("bad quantifier");
            let hi = if chars[i] == ',' {
                i += 1;
                let mut hi = String::new();
                while chars[i].is_ascii_digit() {
                    hi.push(chars[i]);
                    i += 1;
                }
                hi.parse().expect("bad quantifier")
            } else {
                lo
            };
            assert!(chars[i] == '}', "proptest stub: bad quantifier in `{pat}`");
            i += 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { spans, min, max });
    }
    atoms
}

fn sample_class(spans: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = spans
        .iter()
        .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
        .sum();
    let mut x = rng.below(total);
    for (lo, hi) in spans {
        let w = u64::from(*hi as u32 - *lo as u32 + 1);
        if x < w {
            // Spans in this subset never straddle the surrogate gap.
            return ::core::char::from_u32(*lo as u32 + x as u32).expect("invalid char in class");
        }
        x -= w;
    }
    unreachable!()
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(sample_class(&atom.spans, rng));
            }
        }
        out
    }
}

// -- modules mirroring the real crate layout --------------------------------

pub mod char {
    use super::{Strategy, TestRng};
    use core::primitive::char;

    /// Uniform char in the inclusive range `[lo, hi]`.
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// `proptest::char::range(lo, hi)`: chars in `[lo, hi]` inclusive.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi);
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            loop {
                let x = self.lo + rng.below(u64::from(self.hi - self.lo + 1)) as u32;
                if let Some(c) = ::core::char::from_u32(x) {
                    return c;
                }
            }
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-style function (the `#[test]` attribute is written
/// explicitly by the caller, matching real proptest) that runs the body for
/// `cases` deterministic random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __cfg.cases,
                        stringify!($name),
                        __e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        for case in 0..200u32 {
            let mut rng = crate::TestRng::for_case("pattern", case);
            let s = Strategy::generate(&"[ -~]{1,40}", &mut rng);
            assert!((1..=40).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
            let t = Strategy::generate(&"[a-z]{2,8}", &mut rng);
            assert!((2..=8).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_lowercase()));
            let n = Strategy::generate(&"[ -~\n]{0,400}", &mut rng);
            assert!(n.chars().count() <= 400);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(
            (a, b) in (0u32..100, 5usize..=9),
            v in crate::collection::vec(0u8..10, 1..6),
            c in crate::char::range('A', 'F'),
        ) {
            prop_assert!(a < 100);
            prop_assert!((5..=9).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(('A'..='F').contains(&c));
            if a == u32::MAX {
                return Ok(());
            }
            prop_assert_eq!(a.wrapping_add(0), a);
        }

        #[test]
        fn combinators_compose(
            n in (2usize..=5).prop_flat_map(|n| (crate::Just(n), 0usize..n)),
            odd in (0u32..1000).prop_filter_map("even", |x| if x % 2 == 1 { Some(x) } else { None }),
        ) {
            let (bound, idx) = n;
            prop_assert!(idx < bound);
            prop_assert_eq!(odd % 2, 1);
        }
    }
}
