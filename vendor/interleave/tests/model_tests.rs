//! Self-tests for the interleave checker: the scheduler must find real
//! races, must not flag correct synchronization, and must respect its
//! preemption bound deterministically.

#![forbid(unsafe_code)]

use interleave::sync::{AtomicU64, Mutex, Ordering};
use interleave::{check, thread, Config};
use std::sync::Arc;

/// Classic lost update: two threads `load` then `store(v + 1)`. The checker
/// MUST find the interleaving where both loads happen before either store.
#[test]
fn racy_read_modify_write_is_caught() {
    let result = check(Config::default(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    // Intentionally torn read-modify-write.
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = result.expect_err("checker must catch the torn RMW");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure message: {}",
        failure.message
    );
    assert!(!failure.schedule.is_empty());
}

/// The same lost update needs one preemption to manifest; with a preemption
/// bound of zero (only forced switches) every schedule is serial and the
/// model passes. This pins the bound semantics.
#[test]
fn preemption_bound_zero_misses_the_race() {
    let result = check(Config::with_preemption_bound(0), || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    let report = result.expect("serial schedules cannot lose the update");
    assert!(report.complete);
}

/// `fetch_add` is a single yield point plus an atomic op, so no
/// interleaving can lose an increment.
#[test]
fn atomic_fetch_add_is_safe() {
    let result = check(Config::default(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    });
    let report = result.expect("fetch_add must be race-free");
    assert!(report.complete, "exploration must finish");
    assert!(report.executions > 1, "more than one schedule must exist");
}

/// A mutex-protected read-modify-write is race-free even though the naked
/// version above is not.
#[test]
fn mutex_counter_is_safe() {
    let result = check(Config::default(), || {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    let mut g = c.lock();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2);
    });
    let report = result.expect("mutex counter must be race-free");
    assert!(report.complete);
}

/// Classic AB/BA lock-order inversion must be reported as a deadlock, not a
/// hang.
#[test]
fn lock_order_inversion_is_reported_as_deadlock() {
    let result = check(Config::default(), || {
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::new(Mutex::new(0u64));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let h1 = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        let h2 = thread::spawn(move || {
            let _gb = b3.lock();
            let _ga = a3.lock();
        });
        let _ = h1.join();
        let _ = h2.join();
    });
    let failure = result.expect_err("AB/BA must deadlock under some schedule");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure message: {}",
        failure.message
    );
}

/// The DFS is deterministic: the same model yields the same execution count
/// and the same failing schedule every time.
#[test]
fn exploration_is_deterministic() {
    fn run() -> (usize, Vec<usize>) {
        let failure = check(Config::default(), || {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        })
        .expect_err("racy model");
        (failure.executions, failure.schedule)
    }
    assert_eq!(run(), run());
}

/// Passthrough: modeled primitives created outside any model run behave like
/// their std counterparts (library code compiled with `--cfg interleave`
/// must keep working in ordinary tests).
#[test]
fn passthrough_outside_model() {
    let counter = AtomicU64::new(5);
    assert_eq!(counter.fetch_add(2, Ordering::Relaxed), 5);
    assert_eq!(counter.load(Ordering::Relaxed), 7);
    let m = Mutex::new(1u32);
    {
        let mut g = m.lock();
        *g += 1;
    }
    assert_eq!(*m.lock(), 2);
    let h = thread::spawn(|| 41 + 1);
    assert_eq!(h.join().unwrap(), 42);
}

/// `max_executions` truncation is reported as `complete: false`, never as a
/// spurious failure.
#[test]
fn truncation_reports_incomplete() {
    let cfg = Config {
        max_executions: 2,
        ..Config::default()
    };
    let report = check(cfg, || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    })
    .expect("safe model");
    assert_eq!(report.executions, 2);
    assert!(!report.complete);
}
