//! Modeled synchronization primitives.
//!
//! Inside a [`crate::check`]/[`crate::model`] run, every operation is a
//! scheduler yield point and atomics are explored under sequential
//! consistency. Outside a model run ("passthrough"), the types behave
//! exactly like their `std`/`parking_lot` counterparts, so library code
//! compiled against this module still works in ordinary tests and builds.

use crate::scheduler::current;
use std::ops::{Deref, DerefMut};
use std::sync::atomic;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};

pub use std::sync::atomic::Ordering;

macro_rules! modeled_atomic {
    ($name:ident, $inner:ty, $prim:ty) => {
        /// Modeled atomic integer: each op is a scheduler yield point inside
        /// a model run and a plain atomic op (with the caller's ordering)
        /// outside one. Model exploration is sequentially consistent
        /// regardless of the ordering argument.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $inner,
        }

        impl $name {
            /// Create a new atomic with the given initial value.
            pub const fn new(v: $prim) -> Self {
                Self {
                    inner: <$inner>::new(v),
                }
            }

            fn gate(&self) {
                if let Some((ctl, me)) = current() {
                    ctl.yield_point(me);
                }
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $prim {
                self.gate();
                self.inner.load(order)
            }

            /// Atomic store.
            pub fn store(&self, v: $prim, order: Ordering) {
                self.gate();
                self.inner.store(v, order)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                self.gate();
                self.inner.fetch_add(v, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                self.gate();
                self.inner.fetch_sub(v, order)
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                self.gate();
                self.inner.swap(v, order)
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current_v: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.gate();
                self.inner
                    .compare_exchange(current_v, new, success, failure)
            }

            /// Atomic maximum, returning the previous value.
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                self.gate();
                self.inner.fetch_max(v, order)
            }
        }
    };
}

modeled_atomic!(AtomicU64, atomic::AtomicU64, u64);
modeled_atomic!(AtomicUsize, atomic::AtomicUsize, usize);

/// Modeled mutex with a `parking_lot`-shaped API: `lock()` returns the guard
/// directly (poisoning is recovered internally). Inside a model run the
/// acquire is a yield point and contention blocks the modeled thread; the
/// release is deliberately not a yield point (it only enables others).
///
/// A mutex participating in a model must be created inside the model closure
/// — its scheduler identity is assigned on first lock and is only valid for
/// the execution that assigned it.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    id: OnceLock<usize>,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            id: OnceLock::new(),
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the mutex, blocking the (modeled) thread until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let release = if let Some((ctl, me)) = current() {
            let mid = *self.id.get_or_init(|| ctl.register_mutex());
            ctl.lock_mutex(me, mid);
            Some((ctl, mid))
        } else {
            None
        };
        // Inside a model the scheduler has granted exclusive ownership, so
        // this never contends; outside one it is the real blocking lock.
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            inner: Some(guard),
            release,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard returned by [`Mutex::lock`]. Dropping releases the real lock first,
/// then informs the scheduler so blocked modeled threads become runnable.
pub struct MutexGuard<'a, T> {
    inner: Option<StdMutexGuard<'a, T>>,
    release: Option<(std::sync::Arc<crate::scheduler::Controller>, usize)>,
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the underlying lock before telling the scheduler the
        // modeled mutex is free, so a woken thread can immediately acquire.
        drop(self.inner.take());
        if let Some((ctl, mid)) = self.release.take() {
            ctl.unlock_mutex(mid);
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release") // unreachable: cleared only in Drop
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release") // unreachable: cleared only in Drop
    }
}
