//! Modeled thread spawn/join.
//!
//! Inside a model run, spawned closures run on real OS threads but are
//! scheduled cooperatively by the controller; outside one, this is a thin
//! wrapper over [`std::thread`].

use crate::scheduler::{current, run_modeled, Controller};
use std::sync::{Arc, Mutex as StdMutex};

enum Inner<T> {
    Modeled {
        ctl: Arc<Controller>,
        id: usize,
        slot: Arc<StdMutex<Option<T>>>,
    },
    Real(std::thread::JoinHandle<T>),
}

/// Handle to a spawned (possibly modeled) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result.
    ///
    /// In a model run a panicking child aborts the whole execution, so this
    /// returns `Ok` whenever it returns at all; the `Result` shape mirrors
    /// [`std::thread::JoinHandle::join`] for drop-in use.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Modeled { ctl, id, slot } => {
                let me = current()
                    .map(|(_, me)| me)
                    .expect("modeled JoinHandle joined outside its model run");
                ctl.join_thread(me, id);
                let value = slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("modeled thread finished without a value");
                Ok(value)
            }
            Inner::Real(h) => h.join(),
        }
    }
}

/// Spawn a thread running `f`. Inside a model run the child is registered
/// with the scheduler and the spawn itself is a yield point (the scheduler
/// may run the child immediately or let the parent continue).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((ctl, me)) = current() {
        let id = ctl.register_thread();
        let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        {
            let ctl2 = Arc::clone(&ctl);
            let slot2 = Arc::clone(&slot);
            let h = std::thread::spawn(move || run_modeled(ctl2, id, f, slot2));
            ctl.push_os_handle(h);
        }
        // Let the scheduler decide whether the child runs before the parent
        // continues — spawning is itself an observable ordering decision.
        ctl.yield_point(me);
        JoinHandle {
            inner: Inner::Modeled { ctl, id, slot },
        }
    } else {
        JoinHandle {
            inner: Inner::Real(std::thread::spawn(f)),
        }
    }
}
