//! Token-passing bounded-exhaustive scheduler.
//!
//! One [`Controller`] exists per *execution* (one concrete schedule). Modeled
//! threads run on real OS threads but exactly one holds the "token"
//! (`State::active`) at a time; every modeled operation routes through a
//! yield point where the scheduler records a [`Choice`] and hands the token
//! to the chosen thread. Re-running with a `replay` prefix plus one diverging
//! index performs depth-first search over the schedule tree.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};

/// Sentinel for "no thread holds the token" (all threads finished).
const NO_ACTIVE: usize = usize::MAX;

/// Exploration limits for [`check`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of *involuntary* context switches (preemptions of a
    /// runnable thread) per schedule. Forced switches — when the running
    /// thread blocks or finishes — are always free. Default 2.
    pub preemption_bound: usize,
    /// Hard cap on the number of schedules explored before giving up with
    /// `Report { complete: false }`. Default 500 000.
    pub max_executions: usize,
    /// Hard cap on yield points within a single schedule; exceeding it is
    /// reported as a failure (livelock guard). Default 20 000.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_executions: 500_000,
            max_steps: 20_000,
        }
    }
}

impl Config {
    /// Convenience constructor overriding only the preemption bound.
    pub fn with_preemption_bound(bound: usize) -> Self {
        Config {
            preemption_bound: bound,
            ..Config::default()
        }
    }
}

/// Successful exploration summary returned by [`check`].
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub executions: usize,
    /// True when the bounded schedule tree was exhausted (as opposed to
    /// hitting `max_executions`).
    pub complete: bool,
}

/// A failing schedule found by [`check`].
#[derive(Clone, Debug)]
pub struct Failure {
    /// Human-readable description: panic message, deadlock report, or step
    /// budget overflow.
    pub message: String,
    /// Number of schedules executed up to and including the failing one.
    pub executions: usize,
    /// The failing schedule as a sequence of thread ids, one per yield
    /// point. Thread 0 is the root closure.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failed after {} execution(s): {}\nschedule (thread ids per step): {:?}",
            self.executions, self.message, self.schedule
        )
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedJoin(usize),
    Finished,
}

/// One scheduling decision: the ordered candidate set and the branch taken.
struct Choice {
    /// Runnable thread ids at this yield point. When the previously active
    /// thread is still runnable it is placed first, so index 0 is always the
    /// "no preemption" branch.
    candidates: Vec<usize>,
    /// Index into `candidates` actually taken.
    index: usize,
    /// Whether the previously active thread was runnable here (i.e. taking
    /// `index != 0` constitutes a preemption).
    prev_runnable: bool,
    /// Preemption count accumulated *before* this choice, used to honor the
    /// preemption bound when generating alternatives.
    preemptions_before: usize,
}

struct State {
    statuses: Vec<Status>,
    active: usize,
    /// Per-mutex held flag, indexed by mutex id.
    mutexes: Vec<bool>,
    trace: Vec<Choice>,
    /// Choice indices to replay before diverging (DFS prefix).
    replay: Vec<usize>,
    preemptions: usize,
    steps: usize,
    abort: Option<String>,
}

pub(crate) struct Controller {
    cfg: Config,
    state: StdMutex<State>,
    cv: Condvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Panic payload used to unwind modeled threads when the execution aborts
/// (failure found or replay done). Swallowed by `run_modeled`.
struct AbortSignal;

thread_local! {
    static CTX: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

/// The current thread's (controller, thread id), when running inside a model.
pub(crate) fn current() -> Option<(Arc<Controller>, usize)> {
    CTX.try_with(|c| c.borrow().clone()).ok().flatten()
}

fn set_ctx(ctl: Arc<Controller>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((ctl, id)));
}

fn clear_ctx() {
    let _ = CTX.try_with(|c| c.borrow_mut().take());
}

/// Suppress default panic output for panics raised inside modeled threads:
/// exploration intentionally drives models into failing schedules (and uses
/// `AbortSignal` panics to unwind), so the noise would be misleading. Panics
/// outside models keep the previous hook's behavior.
fn install_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let in_model = CTX
                .try_with(|c| c.try_borrow().map(|b| b.is_some()).unwrap_or(true))
                .unwrap_or(false);
            if !in_model {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "modeled thread panicked (non-string payload)".to_string()
    }
}

impl Controller {
    fn new(cfg: Config, replay: Vec<usize>) -> Self {
        Controller {
            cfg,
            state: StdMutex::new(State {
                statuses: Vec::new(),
                active: NO_ACTIVE,
                mutexes: Vec::new(),
                trace: Vec::new(),
                replay,
                preemptions: 0,
                steps: 0,
                abort: None,
            }),
            cv: Condvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.statuses.push(Status::Runnable);
        st.statuses.len() - 1
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock_state();
        st.mutexes.push(false);
        st.mutexes.len() - 1
    }

    pub(crate) fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    /// Record a scheduling choice and hand the token to the chosen thread.
    /// `prev` is the thread making the choice; `prev_runnable` says whether
    /// it could itself continue (false when it just blocked or finished).
    fn pick(&self, st: &mut State, prev: usize, prev_runnable: bool) {
        if st.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        st.steps += 1;
        if st.steps > self.cfg.max_steps {
            st.abort = Some(format!(
                "step budget exceeded ({} yield points): possible livelock",
                self.cfg.max_steps
            ));
            self.cv.notify_all();
            return;
        }
        let mut cands = Vec::new();
        if prev_runnable {
            cands.push(prev);
        }
        for (i, s) in st.statuses.iter().enumerate() {
            if *s == Status::Runnable && !(prev_runnable && i == prev) {
                cands.push(i);
            }
        }
        if cands.is_empty() {
            if st.statuses.iter().all(|s| *s == Status::Finished) {
                st.active = NO_ACTIVE;
            } else {
                let blocked: Vec<String> = st
                    .statuses
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !matches!(s, Status::Finished))
                    .map(|(i, s)| format!("thread {i}: {s:?}"))
                    .collect();
                st.abort = Some(format!(
                    "deadlock: no runnable thread ({})",
                    blocked.join(", ")
                ));
            }
            self.cv.notify_all();
            return;
        }
        let depth = st.trace.len();
        let index = if depth < st.replay.len() {
            st.replay[depth].min(cands.len() - 1)
        } else {
            0 // default: keep running the previous thread (lazy preemption)
        };
        let chosen = cands[index];
        let preemptions_before = st.preemptions;
        if prev_runnable && chosen != prev {
            st.preemptions += 1;
        }
        st.trace.push(Choice {
            candidates: cands,
            index,
            prev_runnable,
            preemptions_before,
        });
        st.active = chosen;
        self.cv.notify_all();
    }

    /// Block until `me` holds the token; panic with `AbortSignal` if the
    /// execution aborted.
    fn wait_token(&self, mut st: StdMutexGuard<'_, State>, me: usize) {
        loop {
            if st.abort.is_some() {
                drop(st);
                panic::panic_any(AbortSignal);
            }
            if st.active == me {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A modeled operation is about to execute on thread `me`: let the
    /// scheduler decide who runs next, then wait for the token.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut st = self.lock_state();
        if st.abort.is_none() {
            self.pick(&mut st, me, true);
        }
        self.wait_token(st, me);
    }

    /// First wait of a freshly spawned modeled thread (no choice recorded —
    /// the spawner's yield point already decided).
    fn wait_initial(&self, me: usize) {
        let st = self.lock_state();
        self.wait_token(st, me);
    }

    /// Modeled mutex acquire: one yield point, then block (forced switch)
    /// while contended.
    pub(crate) fn lock_mutex(&self, me: usize, mid: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.lock_state();
            if st.abort.is_some() {
                drop(st);
                panic::panic_any(AbortSignal);
            }
            if !st.mutexes[mid] {
                st.mutexes[mid] = true;
                return;
            }
            st.statuses[me] = Status::BlockedMutex(mid);
            self.pick(&mut st, me, false);
            self.wait_token(st, me);
        }
    }

    /// Modeled mutex release. Deliberately *not* a yield point: releasing
    /// only enables other threads, it does not observe shared state, so
    /// skipping the choice here halves the schedule tree without losing any
    /// distinguishable interleaving.
    pub(crate) fn unlock_mutex(&self, mid: usize) {
        let mut st = self.lock_state();
        st.mutexes[mid] = false;
        for s in st.statuses.iter_mut() {
            if *s == Status::BlockedMutex(mid) {
                *s = Status::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// Modeled `JoinHandle::join`: block until `target` finishes.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.yield_point(me);
        loop {
            let mut st = self.lock_state();
            if st.abort.is_some() {
                drop(st);
                panic::panic_any(AbortSignal);
            }
            if st.statuses[target] == Status::Finished {
                return;
            }
            st.statuses[me] = Status::BlockedJoin(target);
            self.pick(&mut st, me, false);
            self.wait_token(st, me);
        }
    }

    /// Normal completion of a modeled thread: wake joiners and hand off.
    fn thread_finished(&self, me: usize) {
        let mut st = self.lock_state();
        st.statuses[me] = Status::Finished;
        for s in st.statuses.iter_mut() {
            if *s == Status::BlockedJoin(me) {
                *s = Status::Runnable;
            }
        }
        if st.abort.is_none() {
            self.pick(&mut st, me, false);
        }
        self.cv.notify_all();
    }

    /// Completion during abort/unwind: mark finished without scheduling.
    fn thread_finished_quiet(&self, me: usize) {
        let mut st = self.lock_state();
        st.statuses[me] = Status::Finished;
        for s in st.statuses.iter_mut() {
            if *s == Status::BlockedJoin(me) {
                *s = Status::Runnable;
            }
        }
        self.cv.notify_all();
    }

    fn abort_with(&self, msg: String) {
        let mut st = self.lock_state();
        if st.abort.is_none() {
            st.abort = Some(msg);
        }
        self.cv.notify_all();
    }
}

/// Body of every modeled OS thread: install the thread-local context, wait
/// for the first token grant, run the closure, and report the outcome.
pub(crate) fn run_modeled<F, T>(
    ctl: Arc<Controller>,
    id: usize,
    f: F,
    slot: Arc<StdMutex<Option<T>>>,
) where
    F: FnOnce() -> T,
    T: Send,
{
    set_ctx(ctl.clone(), id);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        ctl.wait_initial(id);
        f()
    }));
    clear_ctx();
    match result {
        Ok(value) => {
            // Store before marking finished so joiners observe the value.
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
            ctl.thread_finished(id);
        }
        Err(payload) => {
            if payload.downcast_ref::<AbortSignal>().is_none() {
                ctl.abort_with(panic_message(payload.as_ref()));
            }
            ctl.thread_finished_quiet(id);
        }
    }
}

/// Compute the DFS successor of a completed trace: scan from the deepest
/// choice for an untried alternative that respects the preemption bound, and
/// return the replay prefix selecting it. `None` means the bounded tree is
/// exhausted.
fn next_replay(trace: &[Choice], bound: usize) -> Option<Vec<usize>> {
    for k in (0..trace.len()).rev() {
        let c = &trace[k];
        for alt in c.index + 1..c.candidates.len() {
            // candidates[0] is the previous thread whenever it was runnable,
            // so any alt != 0 at such a choice is a preemption.
            let is_preemption = c.prev_runnable && alt != 0;
            if is_preemption && c.preemptions_before >= bound {
                continue;
            }
            let mut replay: Vec<usize> = trace[..k].iter().map(|c| c.index).collect();
            replay.push(alt);
            return Some(replay);
        }
    }
    None
}

/// Exhaustively explore the interleavings of `f` under `cfg`.
///
/// `f` is executed once per schedule; it must be deterministic apart from
/// scheduling, and every modeled primitive ([`crate::sync::Mutex`],
/// [`crate::sync::AtomicU64`], …) that participates in the model must be
/// created *inside* `f` (identifiers are per-execution). Returns the first
/// failing schedule (panic, deadlock, or livelock guard) as a [`Failure`],
/// or a [`Report`] once the bounded schedule tree is exhausted.
pub fn check<F>(cfg: Config, f: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let f = Arc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        let ctl = Arc::new(Controller::new(cfg.clone(), std::mem::take(&mut replay)));
        let root = ctl.register_thread();
        debug_assert_eq!(root, 0, "root closure must be thread 0");
        {
            let mut st = ctl.lock_state();
            st.active = root;
        }
        let slot: Arc<StdMutex<Option<()>>> = Arc::new(StdMutex::new(None));
        {
            let ctl2 = Arc::clone(&ctl);
            let f2 = Arc::clone(&f);
            let slot2 = Arc::clone(&slot);
            let h = std::thread::spawn(move || run_modeled(ctl2, 0, move || f2(), slot2));
            ctl.push_os_handle(h);
        }
        // Join every OS thread of this execution. A handle is always pushed
        // before its spawner returns from `spawn`, and the spawner's own
        // handle precedes it here, so draining to empty joins everything.
        loop {
            let h = ctl
                .os_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop();
            match h {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        let st = ctl.lock_state();
        if let Some(msg) = &st.abort {
            let schedule = st.trace.iter().map(|c| c.candidates[c.index]).collect();
            return Err(Failure {
                message: msg.clone(),
                executions,
                schedule,
            });
        }
        match next_replay(&st.trace, cfg.preemption_bound) {
            Some(next) => {
                if executions >= cfg.max_executions {
                    return Ok(Report {
                        executions,
                        complete: false,
                    });
                }
                replay = next;
            }
            None => {
                return Ok(Report {
                    executions,
                    complete: true,
                })
            }
        }
    }
}

/// [`check`] with default [`Config`], panicking on any failure or truncated
/// exploration. This is the assertion-style entry point for model tests.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    match check(Config::default(), f) {
        Ok(report) => assert!(
            report.complete,
            "interleave: exploration truncated after {} executions (raise max_executions or shrink the model)",
            report.executions
        ),
        Err(failure) => panic!("interleave: {failure}"),
    }
}
