//! `interleave` — a minimal deterministic interleaving checker ("loom-lite").
//!
//! This vendored crate provides modeled concurrency primitives
//! ([`sync::Mutex`], [`sync::AtomicU64`], [`sync::AtomicUsize`]) plus a
//! bounded exhaustive scheduler that explores thread interleavings of a
//! closure run under [`check`] / [`model`].
//!
//! # How it works
//!
//! Threads spawned via [`thread::spawn`] inside a model run on real OS
//! threads, but a token-passing controller (see [`check`]) ensures exactly one
//! modeled thread runs at a time. Every operation on a modeled primitive is a
//! *yield point*: the scheduler picks which thread runs next, records the
//! choice, and on subsequent executions replays a prefix of previous choices
//! before diverging — a depth-first search over the schedule tree. A
//! *preemption bound* (default 2) caps the number of involuntary context
//! switches per schedule, which keeps exploration tractable while still
//! finding the overwhelming majority of real interleaving bugs (empirically,
//! most concurrency bugs require ≤ 2 preemptions to trigger).
//!
//! # Scope and limitations
//!
//! * Atomics are explored under **sequential consistency** regardless of the
//!   `Ordering` passed: weak-memory reorderings are *not* modeled. This finds
//!   logic races (lost updates, torn check-then-act sequences) but not bugs
//!   that only manifest under relaxed hardware memory models — those are
//!   covered by the ThreadSanitizer CI job instead.
//! * Modeled primitives must be **created inside** the closure passed to
//!   [`check`]/[`model`] (identifiers are per-execution). Primitives created
//!   outside any model run fall back to real `std` behavior ("passthrough"),
//!   so code using them still works in ordinary tests and production builds
//!   compiled with `--cfg interleave`.
//! * Deadlocks (all live threads blocked) and assertion panics inside the
//!   model are reported as failures together with the schedule that produced
//!   them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scheduler;
pub mod sync;
pub mod thread;

pub use scheduler::{check, model, Config, Failure, Report};
