//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` with the parking_lot API shape:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and a
//! poisoned lock is recovered instead of propagated — matching parking_lot's
//! no-poisoning semantics. Slightly slower than the real crate under heavy
//! contention, identical in behavior.

use std::sync::PoisonError;

/// Mutual exclusion lock with parking_lot's panic-safe API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Readers-writer lock with parking_lot's panic-safe API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: no poison propagation
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
