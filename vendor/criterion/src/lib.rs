//! Offline stand-in for `criterion`.
//!
//! Keeps the bench-authoring surface this workspace uses — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`, `criterion_main!` —
//! but replaces the statistical machinery with a simple calibrated
//! median-of-samples measurement printed to stdout. Good enough to compare
//! orders of magnitude and watch for regressions by eye; not a substitute
//! for criterion's confidence intervals.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Label for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the measured closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    /// Iterations per sample, chosen by calibration.
    iters: u64,
    /// Collected per-iteration sample durations.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters` iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.samples
            .push(total / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX));
    }

    /// Times `routine` over fresh inputs from `setup`, excluding the setup
    /// cost from the sample (Criterion's `iter_batched` with per-iteration
    /// batches). Use when the routine consumes state that is expensive to
    /// construct — e.g. a cache-miss path that needs a fresh engine.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples
            .push(total / u32::try_from(self.iters.max(1)).unwrap_or(u32::MAX));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_count: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        // Calibrate the per-sample iteration count so one sample costs
        // roughly 5ms (bounded to keep total runtime sane).
        let mut probe = Bencher {
            iters: 1,
            samples: Vec::new(),
        };
        f(&mut probe, input);
        let once = probe
            .samples
            .first()
            .copied()
            .unwrap_or(Duration::from_micros(1));
        let target = Duration::from_millis(5);
        let iters = if once.is_zero() {
            1_000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64
        };

        let mut bencher = Bencher {
            iters,
            samples: Vec::with_capacity(self.sample_count),
        };
        for _ in 0..self.sample_count {
            f(&mut bencher, input);
        }
        bencher.samples.sort_unstable();
        let median = bencher.samples[bencher.samples.len() / 2];
        let lo = bencher.samples[0];
        let hi = bencher.samples[bencher.samples.len() - 1];
        println!(
            "bench {:<40} median {:>12?}  [{:?} .. {:?}]  ({} samples x {} iters)",
            format!("{}/{}", self.name, id.label),
            median,
            lo,
            hi,
            self.sample_count,
            iters
        );
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            name,
            sample_count: 10,
            _criterion: self,
        }
    }
}

/// Declares a bench group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter("noop"), &7u64, |b, x| {
            b.iter(|| x + 1);
            ran += 1;
        });
        group.finish();
        assert!(ran >= 3);
    }
}
