//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde::Value` tree to JSON text and parses JSON
//! text back into it. Covers the entry points this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`to_writer`], [`from_str`],
//! [`from_reader`].

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// JSON error: message plus (for parse errors) a byte offset.
#[derive(Debug)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset: None,
        }
    }
    fn at(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {off}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point / exponent so the value
                // round-trips as a float (1.0 -> "1.0").
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, indent, '[', ']', items.iter(), |out, item, ind| {
            write_value(out, item, ind);
        }),
        Value::Object(entries) => write_seq(
            out,
            indent,
            '{',
            '}',
            entries.iter(),
            |out, (k, val), ind| {
                write_escaped(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(open);
    let n = items.len();
    let inner = indent.map(|d| d + 1);
    for (i, item) in items.enumerate() {
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        write_item(out, item, inner);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(d) = indent {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
    }
    out.push(close);
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes `value` as human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(e.to_string()))
}

/// Serializes `value` as indented JSON into `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(e.to_string()))
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::at("unexpected end of input", self.pos)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(_) => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::at(format!("expected `{kw}`"), self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::at("unterminated string", self.pos));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::at("unterminated escape", self.pos));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::at("truncated \\u escape", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::at("bad \\u escape", self.pos))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::at("bad \\u escape", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex =
                                        self.bytes.get(self.pos + 2..self.pos + 6).ok_or_else(
                                            || Error::at("truncated surrogate", self.pos),
                                        )?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| Error::at("bad surrogate", self.pos))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| Error::at("bad surrogate", self.pos))?;
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error::at("invalid codepoint", self.pos))?);
                        }
                        _ => return Err(Error::at("unknown escape", self.pos)),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::at("invalid utf-8", start))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if text.is_empty() {
            return Err(Error::at("expected value", start));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::at("trailing characters", parser.pos));
    }
    T::from_value(&value).map_err(Error::from)
}

/// Reads all of `reader` and parses it as JSON into a `T`.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::new(e.to_string()))?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::U64(1), Value::F64(2.5), Value::Null]),
            ),
            ("b".into(), Value::Str("x \"y\" \n π".into())),
            ("c".into(), Value::I64(-4)),
            ("d".into(), Value::Bool(true)),
        ]);
        let text = to_string(&ValueWrap(v.clone())).unwrap();
        let back: ValueWrap = from_str(&text).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn pretty_output_parses() {
        let v = Value::Object(vec![(
            "k".into(),
            Value::Array(vec![Value::U64(1), Value::U64(2)]),
        )]);
        let text = to_string_pretty(&ValueWrap(v.clone())).unwrap();
        assert!(text.contains('\n'));
        let back: ValueWrap = from_str(&text).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<ValueWrap>("1 1").is_err());
        assert!(from_str::<ValueWrap>("{\"a\":}").is_err());
    }

    /// Test-only passthrough so `Value` itself can ride the public API.
    #[derive(Debug)]
    struct ValueWrap(Value);

    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl Deserialize for ValueWrap {
        fn from_value(v: &Value) -> Result<Self, serde::Error> {
            Ok(ValueWrap(v.clone()))
        }
    }
}
