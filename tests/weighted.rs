//! Integration tests for the weighted-citations extension (§IV's
//! "appropriate weighting" adaptation): uniform weights are a no-op, the
//! model is scale-invariant, and up-weighting a region steers the cut.

use bionav::core::edgecut::heuristic::expand_component;
use bionav::core::{CostParams, NavNodeId, NavigationTree};
use bionav::medline::CitationId;
use bionav::workload::{paper_queries, Workload, WorkloadConfig};

fn nav_inputs() -> (Workload, Vec<CitationId>) {
    let w = Workload::build(&WorkloadConfig {
        queries: paper_queries().into_iter().take(5).collect(),
        ..WorkloadConfig::test_size()
    });
    let results = w.index.query("prothymosin").citations;
    (w, results)
}

#[test]
fn uniform_weights_equal_the_plain_build() {
    let (w, results) = nav_inputs();
    let plain = NavigationTree::build(&w.hierarchy, &w.store, &results);
    let weighted = NavigationTree::build_weighted(&w.hierarchy, &w.store, &results, |_| 1.0);
    assert_eq!(plain.len(), weighted.len());
    for n in plain.iter_preorder() {
        assert_eq!(plain.explore_weight(n), weighted.explore_weight(n));
    }
    assert_eq!(
        plain.total_explore_weight(),
        weighted.total_explore_weight()
    );
}

#[test]
fn global_weight_scaling_does_not_change_cuts() {
    // EXPLORE probabilities are normalized by the tree total, so scaling
    // every weight by the same constant must leave the planner's decisions
    // untouched.
    let (w, results) = nav_inputs();
    let base = NavigationTree::build(&w.hierarchy, &w.store, &results);
    let scaled = NavigationTree::build_weighted(&w.hierarchy, &w.store, &results, |_| 7.5);
    let params = CostParams::default();
    let comp_a: Vec<NavNodeId> = base.iter_preorder().collect();
    let comp_b: Vec<NavNodeId> = scaled.iter_preorder().collect();
    let cut_a = expand_component(&base, &comp_a, &params).expect("expands");
    let cut_b = expand_component(&scaled, &comp_b, &params).expect("expands");
    assert_eq!(cut_a.cut, cut_b.cut, "scale invariance of the cut");
    assert_eq!(cut_a.reduced_size, cut_b.reduced_size);
}

#[test]
fn upweighting_a_region_raises_its_explore_share() {
    let (w, results) = nav_inputs();
    let plain = NavigationTree::build(&w.hierarchy, &w.store, &results);
    // Pick the root child fronting the *least* citations and boost exactly
    // its subtree's citations.
    let underdog = *plain
        .children(NavNodeId::ROOT)
        .iter()
        .min_by_key(|&&c| plain.subtree_distinct(c))
        .expect("root has children");
    let boosted_set: Vec<CitationId> = plain
        .subtree_set(underdog)
        .iter()
        .map(|i| plain.citation_id(i))
        .collect();
    let boosted = NavigationTree::build_weighted(&w.hierarchy, &w.store, &results, |id| {
        if boosted_set.contains(&id) {
            10.0
        } else {
            1.0
        }
    });

    let share = |nav: &NavigationTree, root: NavNodeId| -> f64 {
        let sub: f64 = nav
            .subtree_nodes(root)
            .iter()
            .map(|&n| nav.explore_weight(n))
            .sum();
        sub / nav.total_explore_weight()
    };
    let before = share(&plain, underdog);
    let after = share(&boosted, underdog);
    assert!(
        after > before,
        "boosting the underdog's citations must raise its share ({before:.4} → {after:.4})"
    );
}
