//! Property tests over randomized navigation trees: maximum-embedding
//! invariants, EdgeCut validity, partition covering, planner consistency
//! and simulation termination.

use bionav::core::active::ActiveTree;
use bionav::core::edgecut::heuristic::heuristic_reduced_opt;
use bionav::core::edgecut::opt::CutProblem;
use bionav::core::edgecut::partition::partition_until;
use bionav::core::sim::simulate_bionav;
use bionav::core::{CostParams, NavNodeId, NavigationTree};
use bionav::medline::corpus::{self, CorpusConfig};
use bionav::medline::{CitationId, CitationStore};
use bionav::mesh::synth::{self, SynthConfig};
use bionav::mesh::ConceptHierarchy;
use proptest::prelude::*;

/// Random end-to-end instances: a synthetic hierarchy plus a corpus whose
/// whole citation set is the "query result".
fn instance(
    seed: u64,
    hierarchy_size: usize,
    n_citations: usize,
) -> (ConceptHierarchy, CitationStore, NavigationTree) {
    let hierarchy = synth::generate(&SynthConfig::small(seed, hierarchy_size))
        .expect("synthetic hierarchies build");
    let store = corpus::generate(
        &hierarchy,
        &CorpusConfig {
            seed: seed ^ 0xABCD,
            n_citations,
            mean_annotations: 5,
            mean_indexed: 12,
            zipf_s: 0.9,
        },
    );
    let results: Vec<CitationId> = store.iter().map(|c| c.id).collect();
    let nav = NavigationTree::build(&hierarchy, &store, &results);
    (hierarchy, store, nav)
}

fn params() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..1000, 20usize..150, 20usize..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn maximum_embedding_invariants((seed, hs, nc) in params()) {
        let (hierarchy, _store, nav) = instance(seed, hs, nc);
        for n in nav.iter_preorder() {
            if n != NavNodeId::ROOT {
                // Definition 2: no node with an empty results list survives.
                prop_assert!(nav.results_count(n) > 0, "node {} empty", n.0);
            }
            // Ancestry is preserved: the navigation parent embeds a proper
            // hierarchy ancestor (or the root).
            if let Some(p) = nav.parent(n) {
                let hp = nav.hierarchy_node(p);
                let hn = nav.hierarchy_node(n);
                prop_assert!(
                    p == NavNodeId::ROOT || hierarchy.is_ancestor(hp, hn),
                    "embedding broke ancestry"
                );
            }
        }
        // Every citation attached below the root is in the root's subtree set.
        let mut union = bionav::core::CitSet::new(nav.universe());
        for n in nav.iter_preorder() {
            union.union_with(nav.results(n));
        }
        prop_assert_eq!(union.count(), nav.subtree_distinct(NavNodeId::ROOT));
    }

    #[test]
    fn heuristic_cuts_are_always_valid_and_terminate((seed, hs, nc) in params()) {
        let (_h, _s, nav) = instance(seed, hs, nc);
        let mut active = ActiveTree::new(&nav);
        let cost = CostParams::default();
        let mut steps = 0usize;
        loop {
            let Some(root) = nav
                .iter_preorder()
                .find(|&n| active.is_visible(n) && active.component_size(n) > 1)
            else {
                break;
            };
            let out = heuristic_reduced_opt(&nav, &active, root, &cost)
                .expect("multi-node components expand");
            prop_assert!(!out.cut.is_empty());
            // validate() is exactly Definition 3; expand() would reject too.
            prop_assert!(active.validate(&nav, root, &out.cut).is_ok());
            active.expand(&nav, root, &out.cut).expect("validated");
            steps += 1;
            prop_assert!(steps <= nav.len() * 2, "no termination");
        }
        for n in nav.iter_preorder() {
            prop_assert!(active.is_visible(n));
        }
    }

    #[test]
    fn component_sizes_always_partition_the_tree((seed, hs, nc) in params()) {
        let (_h, _s, nav) = instance(seed, hs, nc);
        let mut active = ActiveTree::new(&nav);
        let cost = CostParams::default();
        for _ in 0..4 {
            let Some(root) = nav
                .iter_preorder()
                .find(|&n| active.is_visible(n) && active.component_size(n) > 1)
            else {
                break;
            };
            let out = heuristic_reduced_opt(&nav, &active, root, &cost).expect("expands");
            active.expand(&nav, root, &out.cut).expect("valid");
            let total: usize = nav
                .iter_preorder()
                .filter(|&n| active.is_visible(n))
                .map(|n| active.component_size(n))
                .sum();
            prop_assert_eq!(total, nav.len());
        }
    }

    #[test]
    fn partitions_cover_and_respect_k((seed, hs, nc) in params()) {
        let (_h, _s, nav) = instance(seed, hs, nc);
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        for k in [2usize, 5, 10] {
            let parts = partition_until(&nav, &comp, k);
            prop_assert!(parts.len() <= k);
            let mut members: Vec<NavNodeId> =
                parts.iter().flat_map(|p| p.nodes.iter().copied()).collect();
            members.sort();
            let mut expected = comp.clone();
            expected.sort();
            prop_assert_eq!(members, expected);
            prop_assert_eq!(parts[0].root, NavNodeId::ROOT);
        }
    }

    #[test]
    fn visualization_shows_exactly_component_roots((seed, hs, nc) in params()) {
        let (_h, _s, nav) = instance(seed, hs, nc);
        let mut active = ActiveTree::new(&nav);
        let cost = CostParams::default();
        for _ in 0..3 {
            let Some(root) = nav
                .iter_preorder()
                .find(|&n| active.is_visible(n) && active.component_size(n) > 1)
            else {
                break;
            };
            let out = heuristic_reduced_opt(&nav, &active, root, &cost).expect("expands");
            active.expand(&nav, root, &out.cut).expect("valid");
        }
        let vis = active.visualize(&nav);
        let shown: Vec<NavNodeId> = vis.iter().map(|v| v.node).collect();
        let roots: Vec<NavNodeId> =
            nav.iter_preorder().filter(|&n| active.is_visible(n)).collect();
        prop_assert_eq!(shown, roots);
        // Visualization parents are themselves visible.
        for v in &vis {
            if let Some(p) = v.parent {
                prop_assert!(active.is_visible(p));
            }
        }
    }

    #[test]
    fn expanded_components_never_grow((seed, hs, nc) in params()) {
        // Fig 2b→2c of the paper: after expanding a node, its displayed
        // count (the distinct citations of its shrunken upper component)
        // never increases, and lower components show subsets of what the
        // expanded component held.
        let (_h, _s, nav) = instance(seed, hs, nc);
        let mut active = ActiveTree::new(&nav);
        let cost = CostParams::default();
        for _ in 0..5 {
            let Some(root) = nav
                .iter_preorder()
                .find(|&n| active.is_visible(n) && active.component_size(n) > 1)
            else {
                break;
            };
            let before = active.component_distinct(&nav, root);
            let before_set = active.component_set(&nav, root);
            let out = heuristic_reduced_opt(&nav, &active, root, &cost).expect("expands");
            active.expand(&nav, root, &out.cut).expect("valid");
            prop_assert!(active.component_distinct(&nav, root) <= before);
            for &lower in out.cut.lower_roots() {
                let lower_set = active.component_set(&nav, lower);
                prop_assert_eq!(
                    lower_set.intersect_count(&before_set),
                    lower_set.count(),
                    "lower components hold subsets of the expanded component"
                );
            }
        }
    }

    #[test]
    fn oracle_reaches_random_targets((seed, hs, nc) in params(), pick in 0usize..1000) {
        let (_h, _s, nav) = instance(seed, hs, nc);
        if nav.len() <= 1 {
            return Ok(());
        }
        let target = NavNodeId((1 + pick % (nav.len() - 1)) as u32);
        let run = simulate_bionav(&nav, &CostParams::default(), &[target]);
        prop_assert_eq!(run.outcome.expands, run.trace.len());
        prop_assert_eq!(
            run.outcome.revealed,
            run.trace.iter().map(|t| t.revealed).sum::<usize>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_antichain_cuts_are_accepted_and_others_rejected(
        (seed, hs, nc) in params(),
        picks in proptest::collection::vec(0usize..1_000_000, 1..6),
    ) {
        use bionav::core::EdgeCut;
        let (_h, _s, nav) = instance(seed, hs, nc);
        if nav.len() < 3 {
            return Ok(());
        }
        let active = ActiveTree::new(&nav);
        // Build a random *valid* cut of the root component: pick nodes, then
        // drop any that is an ancestor or descendant of an earlier pick.
        let mut cut_nodes: Vec<NavNodeId> = Vec::new();
        for p in &picks {
            let candidate = NavNodeId((1 + p % (nav.len() - 1)) as u32);
            let related = cut_nodes.iter().any(|&c| {
                c == candidate
                    || nav.is_ancestor(c, candidate)
                    || nav.is_ancestor(candidate, c)
            });
            if !related {
                cut_nodes.push(candidate);
            }
        }
        prop_assert!(!cut_nodes.is_empty());
        let cut = EdgeCut::new(cut_nodes.clone());
        prop_assert!(active.validate(&nav, NavNodeId::ROOT, &cut).is_ok());
        // Every antichain violation must be rejected.
        for &c in &cut_nodes {
            if let Some(child) = nav.children(c).first().copied() {
                let mut nested = cut_nodes.clone();
                nested.push(child);
                let bad = EdgeCut::new(nested);
                prop_assert!(
                    active.validate(&nav, NavNodeId::ROOT, &bad).is_err(),
                    "nested edge accepted"
                );
            }
        }
        // Applying the valid cut yields exactly cut_nodes.len() + 1 visible
        // roots and preserves the node partition.
        let mut applied = active.clone();
        applied.expand(&nav, NavNodeId::ROOT, &cut).expect("validated");
        let visible = nav.iter_preorder().filter(|&n| applied.is_visible(n)).count();
        prop_assert_eq!(visible, cut_nodes.len() + 1);
        let total: usize = nav
            .iter_preorder()
            .filter(|&n| applied.is_visible(n))
            .map(|n| applied.component_size(n))
            .sum();
        prop_assert_eq!(total, nav.len());
    }

    #[test]
    fn optimal_cut_is_self_consistent((seed, hs) in (0u64..500, 8usize..14)) {
        // On small whole-tree components the DP's optimal cut, re-priced
        // through cost_with_first_cut, must reproduce the optimal cost, and
        // no other single-root cut may beat it.
        let (_h, _s, nav) = instance(seed, hs, 40);
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        if comp.len() < 3 || comp.len() > 16 {
            return Ok(());
        }
        let params = CostParams {
            planner: bionav::core::Planner::Recursive,
            max_opt_nodes: 18,
            ..CostParams::default()
        };
        let problem = CutProblem::from_component(&nav, &comp, params);
        let mut solver = problem.solver();
        let optimal = solver.solve_full();
        if let Some(cut) = solver.best_cut_full() {
            let forced = solver.cost_with_first_cut(problem.full_mask(), &cut);
            prop_assert!((forced - optimal).abs() < 1e-6);
            for unit in 1..comp.len() {
                let alt = solver.cost_with_first_cut(problem.full_mask(), &[unit]);
                prop_assert!(alt >= optimal - 1e-6, "unit {unit} beats the optimum");
            }
        }
    }
}
