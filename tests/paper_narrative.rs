//! The paper's Fig 2 narrative, asserted on the evaluation workload: the
//! things that make BioNav *BioNav* — expansions reveal selected
//! *descendants* (not all children, not necessarily children at all),
//! repeated root expansion keeps revealing more, and displayed counts
//! shrink as components get cut smaller.

use bionav::core::session::Session;
use bionav::core::{CostParams, NavNodeId};
use bionav::workload::{paper_queries, Workload, WorkloadConfig};

fn workload() -> Workload {
    Workload::build(&WorkloadConfig {
        queries: paper_queries(),
        ..WorkloadConfig::test_size()
    })
}

#[test]
fn expansions_reveal_descendants_not_children() {
    // Fig 2c: expanding "Biological Phenomena…" reveals "Cell
    // Proliferation" directly, skipping "Cell Growth Processes". Across
    // complete navigations of the workload, a share of reveals must skip
    // levels — that is the whole point of EdgeCuts over child-listing.
    // (Root-level cuts usually land on root children because the
    // partitioner detaches heavy top clusters; skips concentrate in deeper
    // components where weight-equal parent→child chains appear.)
    let w = workload();
    let mut skipping_reveals = 0usize;
    let mut total_reveals = 0usize;
    for q in &w.queries {
        let run = w.run_query(&q.spec.name);
        let mut session = Session::new(&run.nav, CostParams::default());
        let mut guard = 0usize;
        while let Some(root) = run
            .nav
            .iter_preorder()
            .find(|&n| session.active().is_visible(n) && session.component_size(n) > 1)
        {
            let revealed = session.expand(root).expect("expandable components expand");
            total_reveals += revealed.len();
            skipping_reveals += revealed
                .iter()
                .filter(|&&r| run.nav.parent(r) != Some(root))
                .count();
            guard += 1;
            assert!(guard <= run.nav.len() * 2, "{}: stuck", q.spec.name);
        }
    }
    assert!(
        total_reveals > 100,
        "expected many reveals, got {total_reveals}"
    );
    assert!(
        skipping_reveals > 0,
        "no reveal ever skipped a level across {total_reveals} reveals — \
         that is a static interface, not BioNav"
    );
}

#[test]
fn repeated_root_expansion_accumulates_reveals() {
    // Fig 2a→2b: the user expands the root three times, revealing 3 then 4
    // then 4 more concepts; every round adds something and the root keeps
    // its `>>>` until its component is exhausted.
    let w = workload();
    let run = w.run_query("prothymosin");
    let mut session = Session::new(&run.nav, CostParams::default());
    let mut seen = 0usize;
    for _ in 0..3 {
        if session.component_size(NavNodeId::ROOT) <= 1 {
            break;
        }
        let revealed = session.expand(NavNodeId::ROOT).expect("root expands");
        assert!(!revealed.is_empty(), "every EXPAND must reveal something");
        let visible_now = session.visualize().len();
        assert!(visible_now > seen, "the visualization must grow");
        seen = visible_now;
    }
    assert!(
        seen >= 3,
        "three root expansions should reveal several concepts"
    );
}

#[test]
fn displayed_counts_shrink_as_components_get_cut() {
    // Fig 2b→2c: "Biological Phenomena… (217)" drops to (166) once part of
    // its component is revealed separately. Generic form: expanding any
    // node never increases its displayed count, and usually decreases it.
    let w = workload();
    let run = w.run_query("vardenafil");
    let mut session = Session::new(&run.nav, CostParams::default());
    let revealed = session.expand(NavNodeId::ROOT).expect("root expands");
    let pick = *revealed
        .iter()
        .max_by_key(|&&n| session.component_size(n))
        .expect("revealed something");
    if session.component_size(pick) > 1 {
        let before = session.component_distinct(pick);
        session.expand(pick).expect("expandable");
        let after = session.component_distinct(pick);
        assert!(after <= before, "counts never grow ({before} → {after})");
    }
}

#[test]
fn every_visible_count_equals_its_components_distinct_citations() {
    // Definition 5: the number shown next to a label is the distinct
    // citation count of the node's component — cross-checked against the
    // session's own SHOWRESULTS.
    let w = workload();
    let run = w.run_query("varenicline");
    let mut session = Session::new(&run.nav, CostParams::default());
    session.expand(NavNodeId::ROOT).expect("root expands");
    let rows = session.visualize();
    for row in rows {
        let listed = session.show_results(row.node).expect("visible nodes list");
        assert_eq!(listed.len() as u32, row.component_distinct);
    }
}
