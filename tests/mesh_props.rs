//! Property tests for the MeSH substrate: tree-number algebra, hierarchy
//! construction from random descriptor sets, and ASCII-format round trips.

use bionav::mesh::{parser, ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random well-formed tree numbers: `L\d\d(\.\d{3}){0,4}`.
fn tree_number_strategy() -> impl Strategy<Value = TreeNumber> {
    (
        proptest::char::range('A', 'F'),
        0u8..100,
        proptest::collection::vec(0u16..1000, 0..5),
    )
        .prop_map(|(cat, num, segs)| {
            let mut s = format!("{cat}{num:02}");
            for seg in segs {
                s.push_str(&format!(".{seg:03}"));
            }
            TreeNumber::parse(&s).expect("constructed to be valid")
        })
}

/// A random *closed* set of tree positions: every prefix of every member is
/// present, so strict hierarchy building succeeds.
fn closed_positions() -> impl Strategy<Value = Vec<TreeNumber>> {
    proptest::collection::vec(tree_number_strategy(), 1..25).prop_map(|numbers| {
        let mut closed: HashSet<String> = HashSet::new();
        for tn in numbers {
            let mut cur = Some(tn);
            while let Some(t) = cur {
                closed.insert(t.to_string());
                cur = t.parent();
            }
        }
        let mut out: Vec<TreeNumber> = closed
            .into_iter()
            .map(|s| TreeNumber::parse(&s).unwrap())
            .collect();
        out.sort();
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_display_round_trip(tn in tree_number_strategy()) {
        let back = TreeNumber::parse(tn.as_str()).unwrap();
        prop_assert_eq!(back, tn);
    }

    #[test]
    fn parent_child_are_inverse(tn in tree_number_strategy(), seg in 0u16..1000) {
        let child = tn.child(&format!("{seg:03}"));
        let parent = child.parent();
        prop_assert_eq!(parent.as_ref(), Some(&tn));
        prop_assert!(tn.is_ancestor_of(&child));
        prop_assert!(!child.is_ancestor_of(&tn));
        prop_assert_eq!(child.depth(), tn.depth() + 1);
    }

    #[test]
    fn ancestry_is_transitive_and_antisymmetric(
        a in tree_number_strategy(),
        b in tree_number_strategy(),
        c in tree_number_strategy(),
    ) {
        if a.is_ancestor_of(&b) && b.is_ancestor_of(&c) {
            prop_assert!(a.is_ancestor_of(&c));
        }
        prop_assert!(!(a.is_ancestor_of(&b) && b.is_ancestor_of(&a)));
    }

    #[test]
    fn hierarchy_build_preserves_every_position(positions in closed_positions()) {
        let descriptors: Vec<Descriptor> = positions
            .iter()
            .enumerate()
            .map(|(i, tn)| {
                Descriptor::new(DescriptorId(i as u32 + 1), format!("c{i}"), vec![tn.clone()])
            })
            .collect();
        let h = ConceptHierarchy::from_descriptors(&descriptors).unwrap();
        prop_assert_eq!(h.len(), positions.len() + 1); // + root
        // Node depth equals tree-number depth; parents embed prefixes.
        for d in &descriptors {
            let nodes = h.nodes_of(d.id);
            prop_assert_eq!(nodes.len(), 1);
            let node = h.node(nodes[0]);
            prop_assert_eq!(node.depth() as usize, d.tree_numbers[0].depth());
        }
        // Pre-order visits every node exactly once.
        let visited: HashSet<_> = h.iter_preorder().collect();
        prop_assert_eq!(visited.len(), h.len());
    }

    #[test]
    fn ascii_format_round_trips(positions in closed_positions()) {
        // Serialize random descriptors to the MeSH ASCII format and parse
        // them back.
        let descriptors: Vec<Descriptor> = positions
            .iter()
            .enumerate()
            .map(|(i, tn)| {
                Descriptor::new(
                    DescriptorId(i as u32 + 1),
                    format!("Concept {i}"),
                    vec![tn.clone()],
                )
            })
            .collect();
        let mut ascii = String::new();
        for d in &descriptors {
            ascii.push_str("*NEWRECORD\n");
            ascii.push_str(&format!("MH = {}\n", d.label));
            for tn in &d.tree_numbers {
                ascii.push_str(&format!("MN = {tn}\n"));
            }
            ascii.push_str(&format!("UI = {}\n\n", d.id.as_ui()));
        }
        let parsed = parser::parse_ascii(&ascii).unwrap();
        prop_assert_eq!(parsed.len(), descriptors.len());
        let mut a = parsed.clone();
        let mut b = descriptors.clone();
        a.sort_by_key(|d| d.id);
        b.sort_by_key(|d| d.id);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parser_never_panics_on_noise(noise in "[ -~\n]{0,400}") {
        // Arbitrary printable input: errors are fine, panics are not.
        let _ = parser::parse_ascii(&noise);
    }

    #[test]
    fn xml_round_trips_arbitrary_descriptors(
        positions in closed_positions(),
        labels in proptest::collection::vec("[ -~]{1,40}", 1..25),
    ) {
        use bionav::mesh::xml;
        let descriptors: Vec<Descriptor> = positions
            .iter()
            .enumerate()
            .map(|(i, tn)| {
                // Labels may contain XML-hostile characters; trim to dodge
                // the parser's whitespace normalization of text nodes.
                let label = labels[i % labels.len()].trim();
                let label = if label.is_empty() { "x" } else { label };
                Descriptor::new(DescriptorId(i as u32 + 1), label, vec![tn.clone()])
            })
            .collect();
        let serialized = xml::write_xml(&descriptors);
        let parsed = xml::parse_xml(&serialized).unwrap();
        let mut a = parsed;
        let mut b = descriptors;
        a.sort_by_key(|d| d.id);
        b.sort_by_key(|d| d.id);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn xml_parser_never_panics_on_noise(noise in "[ -~\n]{0,400}") {
        let _ = bionav::mesh::xml::parse_xml(&noise);
    }
}
