//! Property tests for the §VII crawl: against random corpora, the crawl
//! must agree with a direct "which citations carry this label phrase"
//! scan, and denormalization must be an exact transpose.

use bionav::medline::etl::{Crawl, CrawlConfig, CrawlResult};
use bionav::medline::{normalize_phrase, Citation, CitationId, CitationStore, InvertedIndex};
use bionav::mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Random fixtures: up to 8 single-position concepts with 1–2 word labels,
/// up to 25 citations each carrying a random subset of label phrases.
fn fixture_strategy() -> impl Strategy<Value = (ConceptHierarchy, CitationStore)> {
    let label = proptest::collection::vec("[a-z]{2,8}", 1..=2).prop_map(|words| words.join(" "));
    (
        proptest::collection::vec(label, 1..=8),
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), 8), 0..25),
    )
        .prop_map(|(labels, carry)| {
            let descriptors: Vec<Descriptor> = labels
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    let tn = TreeNumber::parse(&format!("A{:02}", i + 1)).unwrap();
                    Descriptor::new(DescriptorId(i as u32 + 1), l.clone(), vec![tn])
                })
                .collect();
            let hierarchy = ConceptHierarchy::from_descriptors(&descriptors).unwrap();
            let mut store = CitationStore::new();
            for (ci, flags) in carry.iter().enumerate() {
                let terms: Vec<String> = flags
                    .iter()
                    .take(labels.len())
                    .enumerate()
                    .filter(|(_, &keep)| keep)
                    .map(|(li, _)| normalize_phrase(&labels[li]))
                    .collect();
                store
                    .insert(Citation::new(
                        CitationId(ci as u32 + 1),
                        format!("c{ci}"),
                        terms,
                        vec![],
                        vec![],
                    ))
                    .unwrap();
            }
            (hierarchy, store)
        })
}

fn brute_force(hierarchy: &ConceptHierarchy, store: &CitationStore) -> CrawlResult {
    let mut result = CrawlResult::default();
    for n in hierarchy.iter_preorder().skip(1) {
        let node = hierarchy.node(n);
        let Some(d) = node.descriptor() else { continue };
        let phrase = normalize_phrase(node.label());
        let ids: Vec<CitationId> = store
            .iter()
            .filter(|c| c.terms.contains(&phrase))
            .map(|c| c.id)
            .collect();
        result.global_counts.insert(d, ids.len() as u64);
        result.tuples += ids.len() as u64;
        if !ids.is_empty() {
            result.associations.insert(d, ids);
        }
    }
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn crawl_agrees_with_direct_scan((hierarchy, store) in fixture_strategy()) {
        // Labels may collide (two concepts, same words); both then match
        // the same citations — exactly what the scan computes too.
        let index = InvertedIndex::build(&store);
        let crawled = Crawl::new(&hierarchy, &index, CrawlConfig::default()).run_to_end();
        let direct = brute_force(&hierarchy, &store);
        prop_assert_eq!(&crawled.associations, &direct.associations);
        prop_assert_eq!(&crawled.global_counts, &direct.global_counts);
        prop_assert_eq!(crawled.tuples, direct.tuples);
    }

    #[test]
    fn denormalize_is_an_exact_transpose((hierarchy, store) in fixture_strategy()) {
        let index = InvertedIndex::build(&store);
        let crawled = Crawl::new(&hierarchy, &index, CrawlConfig::default()).run_to_end();
        let rows = crawled.denormalize();
        // Forward: every tuple appears in its citation's row.
        for (&concept, ids) in &crawled.associations {
            for id in ids {
                prop_assert!(rows[id].contains(&concept));
            }
        }
        // Backward: every row entry traces to a tuple.
        let mut tuples: HashSet<(DescriptorId, CitationId)> = HashSet::new();
        for (&concept, ids) in &crawled.associations {
            tuples.extend(ids.iter().map(|&id| (concept, id)));
        }
        let mut back = 0usize;
        for (&id, concepts) in &rows {
            for &c in concepts {
                prop_assert!(tuples.contains(&(c, id)));
                back += 1;
            }
        }
        prop_assert_eq!(back, tuples.len(), "no tuple lost or duplicated");
    }

    #[test]
    fn tick_pacing_is_exact(
        (hierarchy, store) in fixture_strategy(),
        per_tick in 1usize..5,
    ) {
        let index = InvertedIndex::build(&store);
        let distinct_concepts: HashMap<DescriptorId, ()> = hierarchy
            .iter_preorder()
            .skip(1)
            .filter_map(|n| hierarchy.node(n).descriptor())
            .map(|d| (d, ()))
            .collect();
        let mut crawl = Crawl::new(
            &hierarchy,
            &index,
            CrawlConfig { requests_per_tick: per_tick, retmax: None },
        );
        let n = distinct_concepts.len();
        prop_assert_eq!(crawl.remaining(), n);
        while crawl.tick() {}
        let result = crawl.run_to_end();
        prop_assert_eq!(result.ticks as usize, n.div_ceil(per_tick));
    }
}
