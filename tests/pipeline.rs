//! Cross-crate integration tests: the full BioNav pipeline from hierarchy
//! generation through keyword retrieval, navigation-tree construction,
//! interactive sessions and the evaluation harness.

use bionav::core::baseline::simulate_static;
use bionav::core::session::Session;
use bionav::core::sim::simulate_bionav;
use bionav::core::stats::NavTreeStats;
use bionav::core::{CostParams, NavNodeId, NavigationTree};
use bionav::medline::CitationStore;
use bionav::workload::{evaluate, paper_queries, Workload, WorkloadConfig};

fn small_workload() -> Workload {
    Workload::build(&WorkloadConfig {
        queries: paper_queries(),
        ..WorkloadConfig::test_size()
    })
}

#[test]
fn every_paper_query_runs_end_to_end() {
    let w = small_workload();
    assert_eq!(w.queries.len(), 10);
    for q in &w.queries {
        let run = w.run_query(&q.spec.name);
        assert!(run.result_size > 0, "{}: empty result", q.spec.name);
        assert!(run.nav.len() > 1, "{}: empty tree", q.spec.name);
        // The target is reachable and carries its forced attachments.
        assert!(run.nav.results_count(run.target) >= 1);
        assert_eq!(run.nav.label(run.target), q.spec.target.label);
    }
}

#[test]
fn keyword_index_agrees_with_ground_truth() {
    let w = small_workload();
    for q in &w.queries {
        let got = w.index.query(&q.spec.keywords).citations;
        assert_eq!(got, q.citation_ids, "{}", q.spec.name);
    }
}

#[test]
fn oracle_navigation_reaches_every_target() {
    let w = small_workload();
    let params = CostParams::default();
    for q in &w.queries {
        let run = w.run_query(&q.spec.name);
        let sim = simulate_bionav(&run.nav, &params, &[run.target]);
        // The run terminated (internally asserted) and tallied coherently.
        assert_eq!(sim.trace.len(), sim.outcome.expands, "{}", q.spec.name);
        assert!(
            sim.outcome.results_inspected >= run.nav.results_count(run.target) as usize,
            "{}: SHOWRESULTS must cover the target's citations",
            q.spec.name
        );
    }
}

#[test]
fn evaluation_beats_static_in_aggregate() {
    let w = small_workload();
    let evals = evaluate(&w, &CostParams::default());
    let mean: f64 = evals
        .iter()
        .map(bionav::workload::QueryEval::improvement)
        .sum::<f64>()
        / evals.len() as f64;
    assert!(
        mean > 0.3,
        "mean improvement {mean:.2} too low even at test scale"
    );
}

#[test]
fn workload_store_round_trips_through_json() {
    let w = small_workload();
    let mut buf = Vec::new();
    w.store.save_json(&mut buf).unwrap();
    let restored = CitationStore::load_json(buf.as_slice()).unwrap();
    assert_eq!(restored.len(), w.store.len());
    // Rebuilding a navigation tree from the restored store matches.
    let q = &w.queries[4]; // prothymosin
    let nav_a = NavigationTree::build(&w.hierarchy, &w.store, &q.citation_ids);
    let nav_b = NavigationTree::build(&w.hierarchy, &restored, &q.citation_ids);
    assert_eq!(nav_a.len(), nav_b.len());
    assert_eq!(
        nav_a.total_attached_with_duplicates(),
        nav_b.total_attached_with_duplicates()
    );
    assert_eq!(NavTreeStats::compute(&nav_a), NavTreeStats::compute(&nav_b));
}

#[test]
fn sessions_survive_a_full_user_journey() {
    let w = small_workload();
    let run = w.run_query("prothymosin");
    let mut session = Session::new(&run.nav, CostParams::default());

    // Expand the root twice (the paper's repeated root expansion, Fig 2b).
    let first = session.expand(NavNodeId::ROOT).unwrap();
    assert!(!first.is_empty());
    if session.component_size(NavNodeId::ROOT) > 1 {
        session.expand(NavNodeId::ROOT).unwrap();
    }
    // Dive into a revealed concept, inspect, backtrack, re-expand.
    let pick = first[0];
    session.ignore(first[first.len() - 1]);
    if session.component_size(pick) > 1 {
        session.expand(pick).unwrap();
    }
    let listed = session.show_results(pick).unwrap();
    assert_eq!(listed.len() as u32, session.component_distinct(pick));
    session.backtrack().unwrap();
    let again = session.expand(NavNodeId::ROOT);
    // After backtracking an expansion the root is expandable again unless
    // everything is already visible.
    if session.component_size(NavNodeId::ROOT) > 1 {
        again.unwrap();
    }
    assert!(session.cost().total_cost() > 0);
    assert!(!session.log().is_empty());
}

#[test]
fn intro_claim_shape_holds_on_two_targets() {
    // The introduction's example: reaching two independent research
    // concepts of the prothymosin result costs BioNav a fraction of the
    // static interface's concept examinations.
    let w = small_workload();
    let run = w.run_query("prothymosin");
    let t1 = run.target;
    let t2 = run
        .nav
        .iter_preorder()
        .filter(|&n| n != t1 && run.nav.results_count(n) >= 1 && run.nav.nav_depth(n) >= 2)
        .max_by_key(|&n| run.nav.nav_depth(n))
        .unwrap_or(t1);
    let stat = simulate_static(&run.nav, &[t1, t2]);
    let bio = simulate_bionav(&run.nav, &CostParams::default(), &[t1, t2]);
    assert!(
        bio.outcome.revealed < stat.revealed,
        "BioNav revealed {} vs static {}",
        bio.outcome.revealed,
        stat.revealed
    );
}

#[test]
fn empty_and_degenerate_results_never_panic() {
    let w = small_workload();
    // A query matching nothing yields a root-only tree; every downstream
    // layer must cope.
    let nav = NavigationTree::build(&w.hierarchy, &w.store, &[]);
    assert!(nav.is_empty());
    assert_eq!(nav.universe(), 0);
    let mut session = Session::new(&nav, CostParams::default());
    assert!(
        session.expand(NavNodeId::ROOT).is_err(),
        "nothing to expand"
    );
    let listed = session.show_results(NavNodeId::ROOT).unwrap();
    assert!(listed.is_empty());
    let run = simulate_bionav(&nav, &CostParams::default(), &[NavNodeId::ROOT]);
    assert_eq!(run.outcome.expands, 0);
    let stat = simulate_static(&nav, &[NavNodeId::ROOT]);
    assert_eq!(stat.interaction_cost(), 0);

    // One citation, one concept: the smallest real navigation.
    let q = &w.queries[0];
    let nav = NavigationTree::build(&w.hierarchy, &w.store, &q.citation_ids[..1]);
    assert!(nav.len() >= 2);
    let run = simulate_bionav(
        &nav,
        &CostParams::default(),
        &[NavNodeId((nav.len() - 1) as u32)],
    );
    assert!(run.outcome.expands <= nav.len());
}

#[test]
fn deterministic_across_rebuilds() {
    let a = small_workload();
    let b = small_workload();
    let ea = evaluate(&a, &CostParams::default());
    let eb = evaluate(&b, &CostParams::default());
    for (x, y) in ea.iter().zip(&eb) {
        assert_eq!(x.name, y.name);
        assert_eq!(
            x.bionav.outcome.interaction_cost(),
            y.bionav.outcome.interaction_cost()
        );
        assert_eq!(
            x.static_outcome.interaction_cost(),
            y.static_outcome.interaction_cost()
        );
    }
}
