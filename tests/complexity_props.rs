//! Property tests for the §V NP-completeness reduction: on random
//! edge-weighted graphs, the MAXIMUM EDGE SUBGRAPH optimum must equal the
//! TED duplicate optimum under the paper's mapping, for every subset size.

use bionav::core::complexity::{mes_ted_equivalence, reduce_to_ted, MesInstance};
use proptest::prelude::*;

/// Random small MES instances: ≤ 7 vertices, ≤ 12 weighted edges.
fn mes_strategy() -> impl Strategy<Value = MesInstance> {
    (2usize..=7).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1u64..=9).prop_filter_map("self-loop", move |(u, v, w)| {
            (u != v).then_some((u.min(v), u.max(v), w))
        });
        proptest::collection::vec(edge, 0..=12).prop_map(move |mut edges| {
            // One edge per vertex pair (MES sums weights of distinct edges;
            // parallel edges would be a different problem).
            edges.sort_by_key(|&(u, v, _)| (u, v));
            edges.dedup_by_key(|&mut (u, v, _)| (u, v));
            MesInstance::new(n, edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduction_preserves_optima_for_every_k(mes in mes_strategy()) {
        for k in 0..=mes.node_count {
            prop_assert!(
                mes_ted_equivalence(&mes, k),
                "MES/TED optima diverged at k = {k} for {mes:?}"
            );
        }
    }

    #[test]
    fn duplicates_equal_induced_weight_on_random_subsets(
        mes in mes_strategy(),
        bits in 0u32..128,
    ) {
        let ted = reduce_to_ted(&mes);
        let subset: Vec<usize> =
            (0..mes.node_count).filter(|&i| bits & (1 << i) != 0).collect();
        prop_assert_eq!(
            ted.duplicates_for_upper(&subset),
            mes.induced_weight(&subset)
        );
    }

    #[test]
    fn universe_is_total_weight(mes in mes_strategy()) {
        let ted = reduce_to_ted(&mes);
        let total: u64 = mes.edges.iter().map(|&(_, _, w)| w).sum();
        prop_assert_eq!(ted.universe, total);
    }

    #[test]
    fn decision_is_monotone_in_both_arguments(mes in mes_strategy()) {
        let ted = reduce_to_ted(&mes);
        let n = mes.node_count;
        let total: u64 = mes.edges.iter().map(|&(_, _, w)| w).sum();
        // Loosening either bound can only keep a satisfiable instance
        // satisfiable.
        for s in 2..=n + 1 {
            for d in 0..=total {
                if ted.decide(s, d) {
                    prop_assert!(ted.decide(s + 1, d));
                    if d > 0 {
                        prop_assert!(ted.decide(s, d - 1));
                    }
                }
            }
        }
    }
}
