// Fixture: ad-hoc unwind boundaries outside fault.rs must fire; mentions
// in comments/docs ("catch_unwind") and strings never trigger, and a
// reasoned annotation suppresses exactly one use.
pub fn swallow_panics(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    std::panic::catch_unwind(f).is_ok()
}

pub fn qualified_differently(f: impl FnOnce() + std::panic::UnwindSafe) {
    use std::panic;
    let _ = panic::catch_unwind(f);
}

pub fn documented_only() -> &'static str {
    // The API reference talks about catch_unwind but never calls it.
    "catch_unwind"
}

pub fn annotated(f: impl FnOnce() + std::panic::UnwindSafe) {
    // lint: allow(no-catch-unwind) — FFI shim fixture: the boundary is audited here
    let _ = std::panic::catch_unwind(f);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_assert_on_panics() {
        assert!(std::panic::catch_unwind(|| panic!("boom")).is_err());
    }
}
