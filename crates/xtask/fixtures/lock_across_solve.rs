// Fixture: guards held across solver boundaries, dropped guards, annotated
// designs, and same-line temporary guards.
pub fn violates(state: &Shared) -> Plan {
    let guard = state.inner.lock();
    partition_until(&guard.tree, 4)
}

pub fn dropped(state: &Shared) -> Plan {
    let guard = state.inner.lock();
    let k = guard.budget;
    drop(guard);
    partition_until_free(k)
}

pub fn annotated(state: &Shared) -> Plan {
    // lint: allow(lock-across-solve) — per-session lock: one user by protocol
    let guard = state.inner.lock();
    partition_until(&guard.tree, 4)
}

pub fn same_line_temporary(state: &Shared) -> Plan {
    state.inner.lock().expand_cached(4)
}

pub fn scoped(state: &Shared) -> usize {
    {
        let guard = state.inner.lock();
        let _ = guard.budget;
    }
    solve_full(7)
}
