//! Seeded violation: two functions nest the same pair of locks in
//! opposite orders — the canonical AB/BA deadlock. `analyze` must report
//! a lock-order cycle Engine::alpha <-> Engine::beta.
impl Engine {
    fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }
    fn ba(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }
}
