//! Seeded violation for the coverage pass: `FailSite::Dead` is declared
//! but never armed in core and never exercised by a chaos test — both
//! matrix cells must be false and both findings must fire.
pub enum FailSite {
    Armed,
    Dead,
}
