// Fixture: router-level lock guards spanning member-Engine entry points.
fn live_guard_across_entry(tier: &Tier) {
    let guard = tier.registry.lock();
    tier.shards[0].open_session("q");
    drop(guard);
    tier.shards[0].expand(id, node);
}
fn same_line_temporary_guard(tier: &Tier) {
    tier.table.lock().with_session(id, op);
}
fn scope_closed_before_entry(tier: &Tier) {
    {
        let guard = tier.table.lock();
        let _ = guard.len();
    }
    tier.shards[1].close_session(id);
}
fn annotated_fan_in(tier: &Tier) {
    // lint: allow(no-cross-shard-lock) — result-slot lock, owned by this call, not a shard lock
    let slot = results.lock();
    tier.shards[0].replay(&jobs, 1);
    drop(slot);
}
