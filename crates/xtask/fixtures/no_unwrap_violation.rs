// Fixture: plain library code, every pattern must fire once.
pub fn f(v: Vec<u32>) -> u32 {
    let a = v.first().unwrap();
    let b = v.last().expect("non-empty");
    if *a > *b {
        panic!("inverted");
    }
    *a
}
