// Fixture: annotated and exempt uses must stay silent; a reasonless
// annotation must NOT suppress.
pub fn f(v: Vec<u32>) -> u32 {
    // lint: allow(no-unwrap) — the queue is seeded above; emptiness is a bug
    let a = v.first().unwrap();
    let b = v.last().copied().unwrap_or(0); // not a real unwrap()
    *a + b
}

pub fn trailing(v: &[u32]) -> u32 {
    v[0] + v.last().unwrap() // lint: allow(no-unwrap) — indexed above, same bound
}

pub fn reasonless(v: &[u32]) -> u32 {
    // lint: allow(no-unwrap)
    *v.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_tests_anything_goes() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
        v.last().expect("non-empty");
    }
}
