//! Seeded violation: the serve loop lost its `Request::Stats` arm (and
//! with it the only `Reply::Stats` construction site) — the drift the
//! analyzer exists to catch. Everything else is wired as in the clean
//! twin.
pub fn apply(req: Request, engine: &Engine) -> Reply {
    match req {
        Request::Open { query } => match engine.open_session(&query) {
            Ok(session) => Reply::Opened { session },
            Err(e) => Reply::Error {
                message: e.to_string(),
            },
        },
        other => Reply::Error {
            message: format!("unhandled verb"),
        },
    }
}
