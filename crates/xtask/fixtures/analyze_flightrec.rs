//! Fixture flight-recorder verb table for the coverage pass's `Request`
//! family: just the enum — recorder scopes are minted by the serve/REPL
//! fixtures, never in here.
pub enum Verb {
    Open,
    Stats,
}
