// Fixture: RMW ops need an explicit Ordering, and every Ordering use needs
// a nearby justification comment.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn implicit(c: &AtomicU64) {
    c.fetch_add(1);
}

pub fn uncommented(c: &AtomicU64) {
    let x = 1 + 1;
    let y = x + 1;
    let z = y + 1;
    let _ = (x, y, z);
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn commented(c: &AtomicU64) {
    // Relaxed: the counter is monotonic telemetry; no ordering is derived.
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn annotated(c: &AtomicU64) {
    // lint: allow(atomic-ordering) — migrated verbatim from the vendored shim
    c.fetch_add(1, Ordering::Relaxed);
}
