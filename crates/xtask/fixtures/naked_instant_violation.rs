// Fixture: raw clock reads outside the trace module must fire.
use std::time::{Instant, SystemTime};

pub fn times_a_build() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn wall_clock_stamp() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
