//! Fixture serve loop: `apply` matches every Request variant and
//! constructs every Reply variant — the clean scenario.
pub fn apply(req: Request, engine: &Engine) -> Reply {
    match req {
        Request::Open { query } => match engine.open_session(&query) {
            Ok(session) => Reply::Opened { session },
            Err(e) => Reply::Error {
                message: e.to_string(),
            },
        },
        Request::Stats => Reply::Stats {
            text: engine.stats(),
        },
    }
}

/// Fixture attribution anchor: maps every wire verb to its
/// flight-recorder verb before the request scope is minted.
fn verb_of(req: &Request) -> Verb {
    match req {
        Request::Open { .. } => Verb::Open,
        Request::Stats => Verb::Stats,
    }
}
