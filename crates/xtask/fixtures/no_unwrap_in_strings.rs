// Fixture: the lexer must keep patterns inside literals and comments from
// ever reaching the rule pass.
pub fn f() -> &'static str {
    // This comment mentions x.unwrap() and panic!("boom") harmlessly.
    let msg = "call .unwrap() at your peril";
    let raw = r#"panic!("not real") .expect("nothing")"#;
    let _ = (msg, raw);
    "ok"
}

/// Doc text may cite `v.unwrap()` freely.
pub fn g() -> u32 {
    0
}
