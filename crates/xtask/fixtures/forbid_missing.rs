//! Fixture: a crate root that forgot the safety attribute.

pub fn f() -> u32 {
    1
}
