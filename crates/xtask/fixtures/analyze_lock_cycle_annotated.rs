//! Negative twin of `analyze_lock_cycle.rs`: the BA-side acquisition
//! carries a reasoned `lock-order` annotation, so the site leaves the
//! graph and the cycle disappears. A reasonless annotation would NOT
//! suppress (same grammar as the lint rules).
impl Engine {
    fn ab(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        drop(b);
        drop(a);
    }
    fn ba(&self) {
        let b = self.beta.lock();
        // lint: allow(lock-order) — beta's alpha is a per-instance latch
        // that is unshared until this block publishes it
        let a = self.alpha.lock();
        drop(a);
        drop(b);
    }
}
