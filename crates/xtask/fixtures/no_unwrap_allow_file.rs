// lint: allow-file(no-unwrap) — REPL surface: prompts assume a live session
pub fn f(v: Vec<u32>) -> u32 {
    let a = v.first().unwrap();
    let b = v.last().expect("non-empty");
    *a + *b
}

pub fn g() {
    panic!("still covered by the file-level allow");
}
