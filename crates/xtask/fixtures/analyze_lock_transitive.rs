//! Seeded violation: the cycle only exists through the call graph — no
//! single function nests both locks. `holds_alpha` calls `grab_beta`
//! while alpha is held; `holds_beta` calls `grab_alpha` while beta is
//! held. The fixpoint closure must still find alpha -> beta -> alpha.
impl Engine {
    fn holds_alpha(&self) {
        let a = self.alpha.lock();
        self.grab_beta();
        drop(a);
    }
    fn grab_beta(&self) {
        let b = self.beta.lock();
        drop(b);
    }
    fn holds_beta(&self) {
        let b = self.beta.lock();
        self.grab_alpha();
        drop(b);
    }
    fn grab_alpha(&self) {
        let a = self.alpha.lock();
        drop(a);
    }
}
