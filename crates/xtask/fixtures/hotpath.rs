// Fixture: scanned under virtual edgecut and navtree paths (rules fire)
// and once under a non-hot-path path (silent).
use std::collections::HashMap;

pub fn violates(xs: &[u32], up: u32) -> bool {
    let mut seen: HashMap<u32, u32> = HashMap::new();
    seen.insert(up, up);
    xs.contains(&up)
}

pub fn fine(map: &HashMap<u32, u32>, up: u32) -> bool {
    map.contains_key(&up)
}

pub fn annotated(xs: &[u32], up: u32) -> bool {
    // lint: allow(hotpath-no-hashmap) — reference module, not on the serve path
    xs.contains(&up)
}
