//! Fixture REPL: exercises the engine calls VERB_WIRING names for the
//! fixture verbs (`open_session` for Open, `stats` for Stats).
pub fn run(engine: &Engine, line: &str) {
    let session = engine.open_session(line);
    let text = engine.stats();
    render(session, text);
}

/// Fixture recorder scopes: interactive traffic joins the flight ring
/// without passing through the wire front-end.
pub fn record(engine: &Engine) {
    let _open = flightrec::ensure_scope(Verb::Open);
    let _stats = flightrec::ensure_scope(Verb::Stats);
    let json = flightrec::flightrec_json();
    render_flight(json);
}
