//! Fixture REPL: exercises the engine calls VERB_WIRING names for the
//! fixture verbs (`open_session` for Open, `stats` for Stats).
pub fn run(engine: &Engine, line: &str) {
    let session = engine.open_session(line);
    let text = engine.stats();
    render(session, text);
}
