//! Fixture proto crate for the protocol-drift pass: two wired verbs
//! (`Open`, `Stats` — both in VERB_WIRING) and the replies the fixture
//! serve loop produces. The `tests` module names every variant, so the
//! "named by a test" leg is satisfied for the clean scenario.
pub enum Request {
    Open { query: String },
    Stats,
}

pub enum Reply {
    Opened { session: u64 },
    Stats { text: String },
    Error { message: String },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names_every_verb() {
        let open = Request::Open { query: q };
        let stats = Request::Stats;
        let replies = (
            Reply::Opened { session: 1 },
            Reply::Stats { text: t },
            Reply::Error { message: m },
        );
    }
}
