// Fixture: annotated and test-region clock reads must stay silent; a
// reasonless annotation must NOT suppress.
pub fn reference_timing() -> std::time::Duration {
    // lint: allow(no-naked-instant) — historical reference kept verbatim; never on the serve path
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

pub fn reasonless() -> std::time::Duration {
    // lint: allow(no-naked-instant)
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_read_the_clock() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
