//! Property-based fuzz suite for the xtask lexer and tokenizer.
//!
//! Two layers of invariant, each checked over generated corpora:
//!
//! 1. **Channel classification** (`lexer::split`): literal *contents*
//!    never reach the code channel (strings blank to `""`, chars to
//!    `''`), comment text lands in the comment channel, lifetimes are
//!    not mistaken for unterminated char literals, and raw strings honor
//!    their hash count.
//! 2. **Parser round-trip** (`tokens::tokenize`): per line, the
//!    concatenated token texts reproduce that line's code channel with
//!    whitespace removed — the tokenizer never invents, drops, or
//!    reorders characters. This invariant is universal (it holds for
//!    arbitrary byte soup, not just valid Rust), so it is asserted on
//!    both the structured and the adversarial corpora.

use proptest::prelude::*;
use proptest::TestCaseError;
use xtask::lexer::{self, Line};
use xtask::tokens;

/// Marker embedded in every generated literal/comment body: if it ever
/// shows up in a code channel, classification leaked.
const SECRET: &str = "zzsecretzz";

/// The universal tokenizer invariant: tokens reconcatenate to the code
/// channel, minus whitespace, line by line.
fn check_roundtrip(src: &str) -> Result<(), TestCaseError> {
    let lines = lexer::split(src);
    let tf = tokens::tokenize(&lines);
    let mut by_line: Vec<String> = vec![String::new(); lines.len()];
    for t in &tf.toks {
        if t.line >= by_line.len() {
            return Err(TestCaseError::fail(format!(
                "token {:?} cites line {} of {}",
                t.text,
                t.line,
                by_line.len()
            )));
        }
        by_line[t.line].push_str(&t.text);
    }
    for (i, line) in lines.iter().enumerate() {
        let stripped: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(
            &by_line[i],
            &stripped,
            "line {} of {:?}: tokens diverge from the code channel",
            i,
            src
        );
    }
    Ok(())
}

fn code_channel(lines: &[Line]) -> String {
    lines
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join("\n")
}

fn comment_channel(lines: &[Line]) -> String {
    lines
        .iter()
        .map(|l| l.comment.as_str())
        .collect::<Vec<_>>()
        .join("\n")
}

/// One generated source fragment; `expect_comment` says where its SECRET
/// body must surface.
#[derive(Debug, Clone)]
struct Piece {
    text: String,
    /// `Some(true)`: SECRET must appear in the comment channel;
    /// `Some(false)`: SECRET is literal content and must be blanked from
    /// BOTH channels' code (it appears in neither code nor — for
    /// strings — comment). `None`: no SECRET in this piece.
    carries_secret: Option<bool>,
    /// The piece must terminate its line (line comments).
    ends_line: bool,
}

/// Renders piece `kind` (0..=9) with sub-choice `sub`.
fn render_piece(kind: usize, sub: usize) -> Piece {
    let hashes = "#".repeat(sub % 4);
    match kind {
        // Plain code: idents, numbers, punctuation soup.
        0 => Piece {
            text: format!("ident{sub}"),
            carries_secret: None,
            ends_line: false,
        },
        1 => Piece {
            text: format!("{sub}_u64"),
            carries_secret: None,
            ends_line: false,
        },
        2 => Piece {
            text: "match x { A::B { c } => (d, e[f]), _ => g() }".to_string(),
            carries_secret: None,
            ends_line: false,
        },
        // String literal, with an escaped quote half the time.
        3 => Piece {
            text: if sub.is_multiple_of(2) {
                format!("let s = \"{SECRET}\";")
            } else {
                format!("let s = \"a\\\"{SECRET}\\\"b\";")
            },
            carries_secret: Some(false),
            ends_line: false,
        },
        // Raw string with `sub % 4` hashes; with at least one hash the
        // body may contain a bare quote.
        4 => Piece {
            text: if hashes.is_empty() {
                format!("let r = r\"{SECRET}\";")
            } else {
                format!("let r = r{hashes}\"a\"b{SECRET}\"{hashes};")
            },
            carries_secret: Some(false),
            ends_line: false,
        },
        // Char literal vs lifetime: both on one line; the lifetime must
        // not swallow the rest of the line as an unterminated char.
        5 => Piece {
            text: "let c: &'a str = f('x', '\\n', b'y');".to_string(),
            carries_secret: None,
            ends_line: false,
        },
        // Byte string.
        6 => Piece {
            text: format!("let b = b\"{SECRET}\";"),
            carries_secret: Some(false),
            ends_line: false,
        },
        // Line comment: terminates the line.
        7 => Piece {
            text: format!("// {SECRET}"),
            carries_secret: Some(true),
            ends_line: true,
        },
        // Block comment, nested `sub % 3` levels deep, sometimes spanning
        // lines.
        8 => {
            let depth = sub % 3;
            let mut t = String::new();
            for _ in 0..=depth {
                t.push_str("/* ");
            }
            t.push_str(SECRET);
            if sub.is_multiple_of(2) {
                t.push('\n');
            }
            for _ in 0..=depth {
                t.push_str(" */");
            }
            Piece {
                text: t,
                carries_secret: Some(true),
                ends_line: false,
            }
        }
        // Doc comment.
        _ => Piece {
            text: format!("/// {SECRET}"),
            carries_secret: Some(true),
            ends_line: true,
        },
    }
}

proptest! {
    #[test]
    fn structured_sources_classify_and_roundtrip(
        choices in proptest::collection::vec((0usize..10, 0usize..8), 1..24),
    ) {
        let pieces: Vec<Piece> = choices.iter().map(|&(k, s)| render_piece(k, s)).collect();
        let mut src = String::new();
        for p in &pieces {
            src.push_str(&p.text);
            src.push(if p.ends_line { '\n' } else { ' ' });
        }
        src.push('\n');

        let lines = lexer::split(&src);
        let code = code_channel(&lines);
        let comments = comment_channel(&lines);

        // Literal contents and comment bodies never reach the code channel.
        prop_assert!(
            !code.contains(SECRET),
            "literal/comment content leaked into code: {:?}\ncode: {:?}",
            src,
            code
        );
        // Comment bodies surface in the comment channel; literal contents
        // are blanked everywhere.
        for p in &pieces {
            if p.carries_secret == Some(true) {
                prop_assert!(
                    comments.contains(SECRET),
                    "comment body lost: {:?}\ncomments: {:?}",
                    src,
                    comments
                );
            }
        }
        // The lifetime piece keeps the rest of its line in code.
        if pieces.iter().any(|p| p.text.contains("&'a str")) {
            prop_assert!(code.contains("str"), "lifetime ate the line: {:?}", code);
        }

        check_roundtrip(&src)?;
    }

    #[test]
    fn adversarial_soup_never_panics_and_roundtrips(
        // Printable ASCII plus the lexer's trigger characters and newlines,
        // in arbitrary order — unterminated literals, stray hashes, nested
        // comment openers included.
        soup in "[ -~\n\"'\\\\#/*r b]{0,300}",
    ) {
        let lines = lexer::split(&soup);
        // Line structure: at most one Line per input line (`str::lines`
        // semantics, and a literal spanning a newline folds its physical
        // lines into one Line).
        prop_assert!(
            lines.len() <= soup.lines().count(),
            "split invented lines: {} > {}",
            lines.len(),
            soup.lines().count()
        );
        check_roundtrip(&soup)?;
    }

    #[test]
    fn raw_string_hash_counts_are_honored(
        hashes in 0usize..5,
        body in "[a-z\" ]{0,20}",
    ) {
        // r<hashes>"<body>"<hashes> — body may contain quotes whenever
        // hashes > 0; terminator is quote + exactly `hashes` hashes.
        let h = "#".repeat(hashes);
        let body = if hashes == 0 { body.replace('"', "q") } else { body };
        let src = format!("let r = r{h}\"{SECRET}{body}\"{h}; after();\n");
        let lines = lexer::split(&src);
        let code = code_channel(&lines);
        prop_assert!(!code.contains(SECRET), "raw string leaked: {:?}", code);
        prop_assert!(
            code.contains("after"),
            "raw string terminator missed, rest of line swallowed: {:?}",
            code
        );
        check_roundtrip(&src)?;
    }
}
