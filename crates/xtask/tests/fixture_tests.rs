//! Per-rule fixture tests: each fixture under `fixtures/` is scanned with a
//! virtual workspace-relative path, and the expected findings (and ONLY
//! those) must fire. This is the acceptance test the analysis-toolchain
//! issue requires: the lint pass must fail on each seeded violation and
//! stay silent on the allowlisted/negative twins.

use xtask::scan_source;

/// Rule ids fired per (line, rule) pair, sorted.
fn hits(path: &str, src: &str) -> Vec<(usize, &'static str)> {
    let mut v: Vec<(usize, &'static str)> = scan_source(path, src)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect();
    v.sort();
    v
}

fn rules_only(path: &str, src: &str) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = scan_source(path, src).into_iter().map(|f| f.rule).collect();
    v.sort();
    v.dedup();
    v
}

// ---------------------------------------------------------------------------
// no-unwrap
// ---------------------------------------------------------------------------

#[test]
fn no_unwrap_fires_on_each_pattern() {
    let src = include_str!("../fixtures/no_unwrap_violation.rs");
    let hits = hits("crates/core/src/fixture.rs", src);
    assert_eq!(
        hits,
        vec![(3, "no-unwrap"), (4, "no-unwrap"), (6, "no-unwrap")],
        "unwrap/expect/panic must each fire exactly once"
    );
}

#[test]
fn no_unwrap_honors_annotations_and_test_mods() {
    let src = include_str!("../fixtures/no_unwrap_allowed.rs");
    let hits = hits("crates/core/src/fixture.rs", src);
    // Only the reasonless annotation's unwrap (line 16) may fire.
    assert_eq!(
        hits,
        vec![(16, "no-unwrap")],
        "annotated + trailing-annotated + test-mod uses must be silent; \
         a reasonless annotation must not suppress"
    );
}

#[test]
fn no_unwrap_allow_file_covers_whole_file() {
    let src = include_str!("../fixtures/no_unwrap_allow_file.rs");
    assert!(
        hits("crates/core/src/fixture.rs", src).is_empty(),
        "allow-file must cover every occurrence"
    );
}

#[test]
fn no_unwrap_ignores_strings_comments_docs() {
    let src = include_str!("../fixtures/no_unwrap_in_strings.rs");
    assert!(hits("crates/core/src/fixture.rs", src).is_empty());
}

#[test]
fn no_unwrap_exempts_bins() {
    let src = include_str!("../fixtures/no_unwrap_violation.rs");
    assert!(
        !rules_only("crates/cli/src/bin/tool.rs", src).contains(&"no-unwrap"),
        "bin targets are exempt from no-unwrap"
    );
}

// ---------------------------------------------------------------------------
// atomic-ordering
// ---------------------------------------------------------------------------

#[test]
fn atomic_ordering_fires_on_implicit_and_uncommented() {
    let src = include_str!("../fixtures/atomic_ordering.rs");
    let hits = hits("crates/core/src/fixture.rs", src);
    assert_eq!(
        hits,
        vec![(6, "atomic-ordering"), (14, "atomic-ordering")],
        "implicit-ordering RMW and uncommented Ordering use must fire; \
         commented and annotated uses must be silent"
    );
}

// ---------------------------------------------------------------------------
// hotpath-no-hashmap
// ---------------------------------------------------------------------------

#[test]
fn hotpath_rule_is_scoped_to_edgecut_and_navtree() {
    let src = include_str!("../fixtures/hotpath.rs");
    let expected = vec![(6, "hotpath-no-hashmap"), (8, "hotpath-no-hashmap")];
    assert_eq!(
        hits("crates/core/src/edgecut/fixture.rs", src),
        expected,
        "HashMap::new and slice .contains(&…) must fire; contains_key and \
         the annotated scan must not"
    );
    assert_eq!(
        hits("crates/core/src/navtree.rs", src),
        expected,
        "the cold-open tree build is under the same budget (and must stay \
         bit-deterministic), so the rule fires there too"
    );
    assert!(
        hits("crates/core/src/session.rs", src).is_empty(),
        "outside the two hot-path regions the same code is fine"
    );
}

// ---------------------------------------------------------------------------
// lock-across-solve
// ---------------------------------------------------------------------------

#[test]
fn lock_across_solve_tracks_guards() {
    let src = include_str!("../fixtures/lock_across_solve.rs");
    let hits = hits("crates/core/src/fixture.rs", src);
    assert_eq!(
        hits,
        vec![(5, "lock-across-solve"), (22, "lock-across-solve")],
        "live-guard solve and same-line temporary guard must fire; dropped, \
         annotated, and scope-closed guards must be silent"
    );
}

// ---------------------------------------------------------------------------
// no-cross-shard-lock
// ---------------------------------------------------------------------------

#[test]
fn cross_shard_lock_tracks_guards_in_the_router() {
    let src = include_str!("../fixtures/cross_shard_lock.rs");
    let hits = hits("crates/core/src/shard.rs", src);
    assert_eq!(
        hits,
        vec![(4, "no-cross-shard-lock"), (9, "no-cross-shard-lock")],
        "live-guard entry call and same-line temporary guard must fire; \
         dropped, scope-closed, and annotated guards must be silent"
    );
}

#[test]
fn cross_shard_lock_is_scoped_to_shard_rs() {
    // The same source under any other path is out of scope: holding a lock
    // across e.g. Engine::with_session inside engine.rs is the engine's own
    // (already-reviewed) session protocol, not a tier-serialization bug.
    let src = include_str!("../fixtures/cross_shard_lock.rs");
    assert!(
        !rules_only("crates/core/src/engine.rs", src).contains(&"no-cross-shard-lock"),
        "the rule applies only to the sharded router"
    );
}

// ---------------------------------------------------------------------------
// no-catch-unwind
// ---------------------------------------------------------------------------

#[test]
fn catch_unwind_fires_outside_fault_rs() {
    let src = include_str!("../fixtures/catch_unwind_violation.rs");
    let hits = hits("crates/core/src/engine.rs", src);
    assert_eq!(
        hits,
        vec![(5, "no-catch-unwind"), (10, "no-catch-unwind")],
        "both call spellings must fire; comment/string mentions, the \
         annotated boundary, and test-mod asserts must be silent"
    );
}

#[test]
fn catch_unwind_is_sanctioned_in_fault_rs() {
    // The fault-exempt twin: the *same* source scanned under the registry's
    // path produces no findings — fault::isolate is the one unwind home.
    let src = include_str!("../fixtures/catch_unwind_violation.rs");
    assert!(
        !rules_only("crates/core/src/fault.rs", src).contains(&"no-catch-unwind"),
        "crates/core/src/fault.rs is the sanctioned catch_unwind home"
    );
}

#[test]
fn catch_unwind_applies_to_bins_too() {
    let src = include_str!("../fixtures/catch_unwind_violation.rs");
    assert!(
        rules_only("crates/cli/src/bin/tool.rs", src).contains(&"no-catch-unwind"),
        "bins must not swallow panics either; quarantine accounting lives in fault.rs"
    );
}

// ---------------------------------------------------------------------------
// forbid-unsafe
// ---------------------------------------------------------------------------

#[test]
fn forbid_unsafe_checks_crate_roots_only() {
    let missing = include_str!("../fixtures/forbid_missing.rs");
    let present = include_str!("../fixtures/forbid_present.rs");
    assert_eq!(
        rules_only("crates/core/src/lib.rs", missing),
        vec!["forbid-unsafe"]
    );
    assert_eq!(
        rules_only("crates/cli/src/bin/tool.rs", missing),
        vec!["forbid-unsafe"],
        "bin roots are crate roots too"
    );
    assert!(rules_only("crates/core/src/lib.rs", present).is_empty());
    assert!(
        rules_only("crates/core/src/session.rs", missing).is_empty(),
        "non-root modules need no attribute"
    );
}

// ---------------------------------------------------------------------------
// no-naked-instant
// ---------------------------------------------------------------------------

#[test]
fn naked_instant_fires_on_raw_clock_reads() {
    let src = include_str!("../fixtures/naked_instant_violation.rs");
    let hits = hits("crates/core/src/engine.rs", src);
    assert_eq!(
        hits,
        vec![(5, "no-naked-instant"), (10, "no-naked-instant")],
        "Instant::now and SystemTime::now must each fire exactly once"
    );
}

#[test]
fn naked_instant_applies_to_bins_too() {
    let src = include_str!("../fixtures/naked_instant_violation.rs");
    assert!(
        rules_only("crates/bench/src/bin/reproduce.rs", src).contains(&"no-naked-instant"),
        "bins time the serve path; the clock rule must cover them"
    );
}

#[test]
fn naked_instant_honors_annotations_and_test_mods() {
    let src = include_str!("../fixtures/naked_instant_allowed.rs");
    let hits = hits("crates/core/src/engine.rs", src);
    // Only the reasonless annotation's read (line 11) may fire.
    assert_eq!(
        hits,
        vec![(11, "no-naked-instant")],
        "a reasoned allow and test-mod reads must be silent; \
         a reasonless annotation must not suppress"
    );
}

#[test]
fn naked_instant_exempts_the_trace_module_and_telemetry() {
    let src = include_str!("../fixtures/naked_instant_violation.rs");
    for path in [
        "crates/core/src/trace/mod.rs",
        "crates/core/src/trace/ring.rs",
        "crates/core/src/telemetry.rs",
    ] {
        assert!(
            !rules_only(path, src).contains(&"no-naked-instant"),
            "{path} is the clock's home; the rule must not fire there"
        );
    }
}

// ---------------------------------------------------------------------------
// The rule table itself
// ---------------------------------------------------------------------------

#[test]
fn rule_table_is_complete_and_unique() {
    let mut ids: Vec<&str> = xtask::RULES.iter().map(|r| r.id).collect();
    ids.sort();
    assert_eq!(
        ids,
        vec![
            "atomic-ordering",
            "forbid-unsafe",
            "hotpath-no-hashmap",
            "lock-across-solve",
            "no-catch-unwind",
            "no-cross-shard-lock",
            "no-naked-instant",
            "no-unwrap"
        ]
    );
    for r in xtask::RULES {
        assert!(!r.summary.is_empty() && !r.scope.is_empty() && !r.rationale.is_empty());
    }
}

// ---------------------------------------------------------------------------
// The workspace itself must be clean (same entry point CI uses).
// ---------------------------------------------------------------------------

#[test]
fn workspace_scan_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let findings = xtask::scan_workspace(&root).expect("workspace scan reads all sources");
    assert!(
        findings.is_empty(),
        "workspace lint violations:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
