//! CONTRIBUTING.md rule-table drift check: the table under "## Project
//! lint rules" must stay in sync with [`xtask::RULES`] — the same source
//! of truth `cargo xtask rules --json` serializes. Docs that promise a
//! rule the lint doesn't enforce (or hide a scope it does) are worse than
//! no docs, so this test diffs:
//!
//! * the rule **ids**, in table order vs `RULES` order;
//! * every **path token** of each rule's scope (any whitespace-separated
//!   `scope` token containing `/`) against the table row's scope cell —
//!   this is what caught the `hotpath-no-hashmap` row omitting
//!   `crates/core/src/navtree.rs` after PR 6 widened the rule.

use xtask::RULES;

/// `(id, scope cell)` rows of the lint-rule table, in document order.
fn table_rows() -> Vec<(String, String)> {
    let md = include_str!("../../../CONTRIBUTING.md");
    // Restrict to the lint-rules section: other sections have tables too.
    let section = md
        .split("## Project lint rules")
        .nth(1)
        .expect("CONTRIBUTING.md has a '## Project lint rules' section");
    let section = section.split("\n## ").next().unwrap_or(section);
    section
        .lines()
        .filter_map(|l| {
            let l = l.trim();
            let body = l.strip_prefix("| `")?;
            let (id, rest) = body.split_once('`')?;
            let mut cells = rest.split('|').map(str::trim).filter(|c| !c.is_empty());
            let scope = cells.next()?.to_string();
            Some((id.to_string(), scope))
        })
        .collect()
}

#[test]
fn rule_ids_match_the_rules_table_in_order() {
    let rows = table_rows();
    let doc_ids: Vec<&str> = rows.iter().map(|(id, _)| id.as_str()).collect();
    let code_ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    assert_eq!(
        doc_ids, code_ids,
        "CONTRIBUTING.md rule table drifted from `cargo xtask rules` \
         (same ids, same order, no extras, no omissions)"
    );
}

#[test]
fn every_scope_path_appears_in_the_documented_scope() {
    let rows = table_rows();
    for rule in RULES {
        let (_, doc_scope) = rows
            .iter()
            .find(|(id, _)| id == rule.id)
            .unwrap_or_else(|| panic!("rule `{}` missing from CONTRIBUTING.md", rule.id));
        let doc_scope_plain = doc_scope.replace('`', "");
        for token in rule.scope.split_whitespace().filter(|t| t.contains('/')) {
            assert!(
                doc_scope_plain.contains(token),
                "rule `{}`: scope path `{token}` is enforced by the lint but absent from \
                 the CONTRIBUTING.md row (documented scope: {doc_scope:?})",
                rule.id
            );
        }
    }
}

#[test]
fn analyses_are_documented_too() {
    // The `analyze` passes have their own table in CONTRIBUTING.md; every
    // analysis id must appear (the analyzer enforces the add-a-verb /
    // failpoint / stage checklists, so the docs must name it).
    let md = include_str!("../../../CONTRIBUTING.md");
    for a in xtask::analyze::ANALYSES {
        assert!(
            md.contains(&format!("`{}`", a.id)),
            "analysis `{}` is not documented in CONTRIBUTING.md",
            a.id
        );
    }
}
