//! Meta-tests for `cargo xtask analyze`: each seeded-violation fixture
//! must be flagged (these tests FAIL if the analyzer goes blind), each
//! negative twin must stay silent, and the real workspace must be clean —
//! including the acceptance scenario from the issue: removing a `match`
//! arm for any `Request` variant in serve.rs makes `analyze` fail.

use std::path::Path;

use xtask::analysis_files;
use xtask::analyze::{analyze_files, Report};

fn files(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect()
}

fn rules_of(report: &Report) -> Vec<&'static str> {
    let mut v: Vec<&'static str> = report.findings.iter().map(|f| f.rule).collect();
    v.sort();
    v
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

#[test]
fn opposite_nesting_fixture_is_flagged_as_a_cycle() {
    let report = analyze_files(&files(&[(
        "crates/core/src/cycle.rs",
        include_str!("../fixtures/analyze_lock_cycle.rs"),
    )]));
    assert_eq!(
        rules_of(&report),
        vec!["lock-order"],
        "{:?}",
        report.findings
    );
    let msg = &report.findings[0].message;
    assert!(msg.contains("Engine::alpha"), "{msg}");
    assert!(msg.contains("Engine::beta"), "{msg}");
    assert!(msg.contains("cycle"), "{msg}");
}

#[test]
fn annotated_twin_is_clean() {
    let report = analyze_files(&files(&[(
        "crates/core/src/cycle.rs",
        include_str!("../fixtures/analyze_lock_cycle_annotated.rs"),
    )]));
    assert!(
        report.findings.is_empty(),
        "a reasoned lock-order annotation must suppress: {:?}",
        report.findings
    );
}

#[test]
fn reasonless_annotation_does_not_suppress() {
    let src = include_str!("../fixtures/analyze_lock_cycle_annotated.rs")
        .replace(
            "// lint: allow(lock-order) — beta's alpha is a per-instance latch\n        // that is unshared until this block publishes it",
            "// lint: allow(lock-order)",
        );
    let report = analyze_files(&files(&[("crates/core/src/cycle.rs", &src)]));
    assert_eq!(
        rules_of(&report),
        vec!["lock-order"],
        "an annotation without a reason is ignored"
    );
}

#[test]
fn transitive_cycle_through_the_call_graph_is_flagged() {
    let report = analyze_files(&files(&[(
        "crates/core/src/transitive.rs",
        include_str!("../fixtures/analyze_lock_transitive.rs"),
    )]));
    assert_eq!(
        rules_of(&report),
        vec!["lock-order"],
        "{:?}",
        report.findings
    );
    assert!(
        report.findings[0].message.contains("may acquire"),
        "the finding explains the call edge: {}",
        report.findings[0].message
    );
}

#[test]
fn consistent_one_direction_nesting_is_clean() {
    // Only the AB half of the cycle fixture: an order edge, no cycle.
    let report = analyze_files(&files(&[(
        "crates/core/src/oneway.rs",
        "impl Engine {\n\
             fn ab(&self) {\n\
                 let a = self.alpha.lock();\n\
                 let b = self.beta.lock();\n\
                 drop(b);\n\
                 drop(a);\n\
             }\n\
         }\n",
    )]));
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn test_code_locks_are_exempt() {
    let report = analyze_files(&files(&[(
        "crates/core/tests/cycle.rs",
        include_str!("../fixtures/analyze_lock_cycle.rs"),
    )]));
    assert!(
        report.findings.is_empty(),
        "tests/ files are wholly test code: {:?}",
        report.findings
    );
}

// ---------------------------------------------------------------------------
// proto-drift
// ---------------------------------------------------------------------------

const PROTO: &str = include_str!("../fixtures/analyze_proto.rs");
const SERVE_OK: &str = include_str!("../fixtures/analyze_serve_ok.rs");
const REPL: &str = include_str!("../fixtures/analyze_repl.rs");

#[test]
fn fully_wired_fixture_protocol_is_clean() {
    let report = analyze_files(&files(&[
        ("crates/proto/src/lib.rs", PROTO),
        ("crates/cli/src/serve.rs", SERVE_OK),
        ("crates/cli/src/repl.rs", REPL),
    ]));
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn dropped_serve_arm_fixture_is_flagged() {
    let report = analyze_files(&files(&[
        ("crates/proto/src/lib.rs", PROTO),
        (
            "crates/cli/src/serve.rs",
            include_str!("../fixtures/analyze_serve_drift.rs"),
        ),
        ("crates/cli/src/repl.rs", REPL),
    ]));
    // The drifted serve loop lost the Stats arm AND the only Reply::Stats
    // construction site: two findings, both proto-drift.
    assert_eq!(rules_of(&report), vec!["proto-drift", "proto-drift"]);
    let messages: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("Request::Stats") && m.contains("apply")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("Reply::Stats") && m.contains("constructed")),
        "{messages:?}"
    );
}

#[test]
fn verb_without_wiring_table_entry_is_flagged() {
    let proto = PROTO.replace("    Stats,\n", "    Stats,\n    Probe,\n");
    let report = analyze_files(&files(&[
        ("crates/proto/src/lib.rs", &proto),
        ("crates/cli/src/serve.rs", SERVE_OK),
        ("crates/cli/src/repl.rs", REPL),
    ]));
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("Probe") && f.message.contains("VERB_WIRING")),
        "a new verb must demand its wiring entry: {:?}",
        report.findings
    );
}

#[test]
fn verb_unreachable_from_the_repl_is_flagged() {
    let repl = REPL.replace("let text = engine.stats();\n", "");
    let report = analyze_files(&files(&[
        ("crates/proto/src/lib.rs", PROTO),
        ("crates/cli/src/serve.rs", SERVE_OK),
        ("crates/cli/src/repl.rs", &repl),
    ]));
    assert_eq!(
        rules_of(&report),
        vec!["proto-drift"],
        "{:?}",
        report.findings
    );
    assert!(
        report.findings[0]
            .message
            .contains("not reachable from the REPL"),
        "{}",
        report.findings[0].message
    );
}

#[test]
fn untested_verbs_are_flagged() {
    // Strip the fixture proto's tests module: every variant loses its
    // "named by a test" leg.
    let proto_no_tests = match PROTO.split("#[cfg(test)]").next() {
        Some(head) => head.to_string(),
        None => PROTO.to_string(),
    };
    let report = analyze_files(&files(&[
        ("crates/proto/src/lib.rs", &proto_no_tests),
        ("crates/cli/src/serve.rs", SERVE_OK),
        ("crates/cli/src/repl.rs", REPL),
    ]));
    // 2 Request + 3 Reply variants, one finding each.
    let untested: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.message.contains("not named by any test"))
        .map(|f| f.message.as_str())
        .collect();
    assert_eq!(untested.len(), 5, "{untested:?}");
}

// ---------------------------------------------------------------------------
// coverage
// ---------------------------------------------------------------------------

#[test]
fn dead_failpoint_fixture_is_flagged_and_the_matrix_records_it() {
    let report = analyze_files(&files(&[
        (
            "crates/core/src/fault.rs",
            include_str!("../fixtures/analyze_coverage_gap.rs"),
        ),
        (
            "crates/core/src/engine.rs",
            "fn poke() {\n    fault::hit(FailSite::Armed);\n}\n",
        ),
        (
            "crates/core/tests/chaos.rs",
            "#[test]\nfn arms_armed() {\n    plan.site(FailSite::Armed, 1, Fault::Panic);\n}\n",
        ),
    ]));
    assert_eq!(
        rules_of(&report),
        vec!["coverage", "coverage"],
        "{:?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.message.contains("FailSite::Dead")),
        "{:?}",
        report.findings
    );
    let json = report.matrix.to_json();
    assert!(
        json.contains("\"variant\":\"Armed\",\"cells\":[true,true]"),
        "{json}"
    );
    assert!(
        json.contains("\"variant\":\"Dead\",\"cells\":[false,false]"),
        "{json}"
    );
    assert!(json.contains("\"gaps\":2"), "{json}");
}

// ---------------------------------------------------------------------------
// coverage: the request-context plane (Request × {ctx_propagated,
// flight_recorded}) and the SLO table (SloVerb × {exported, tested})
// ---------------------------------------------------------------------------

const FLIGHTREC: &str = include_str!("../fixtures/analyze_flightrec.rs");

/// The fully wired proto/serve/repl trio plus the flight-recorder verb
/// table that switches the Request coverage family on.
fn ctx_plane_files() -> Vec<(String, String)> {
    files(&[
        ("crates/proto/src/lib.rs", PROTO),
        ("crates/cli/src/serve.rs", SERVE_OK),
        ("crates/cli/src/repl.rs", REPL),
        ("crates/core/src/trace/flightrec.rs", FLIGHTREC),
    ])
}

#[test]
fn fully_attributed_request_plane_is_clean_and_lands_in_the_matrix() {
    let report = analyze_files(&ctx_plane_files());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    let json = report.matrix.to_json();
    assert!(json.contains("\"family\":\"Request\""), "{json}");
    assert!(
        json.contains("\"columns\":[\"ctx_propagated\",\"flight_recorded\"]"),
        "{json}"
    );
    assert!(
        json.contains("\"variant\":\"Stats\",\"cells\":[true,true]"),
        "{json}"
    );
}

#[test]
fn wire_verb_missing_from_verb_of_is_flagged() {
    let mut set = ctx_plane_files();
    for (p, s) in &mut set {
        if p.ends_with("cli/src/serve.rs") {
            *s = s.replace("        Request::Stats => Verb::Stats,\n", "");
        }
    }
    let report = analyze_files(&set);
    assert_eq!(rules_of(&report), vec!["coverage"], "{:?}", report.findings);
    let msg = &report.findings[0].message;
    assert!(
        msg.contains("Request::Stats") && msg.contains("verb_of"),
        "{msg}"
    );
}

#[test]
fn verb_with_no_recorder_scope_outside_the_wire_path_is_flagged() {
    let mut set = ctx_plane_files();
    for (p, s) in &mut set {
        if p.ends_with("cli/src/repl.rs") {
            *s = s.replace(
                "    let _stats = flightrec::ensure_scope(Verb::Stats);\n",
                "",
            );
        }
    }
    let report = analyze_files(&set);
    assert_eq!(rules_of(&report), vec!["coverage"], "{:?}", report.findings);
    let msg = &report.findings[0].message;
    assert!(
        msg.contains("Request::Stats") && msg.contains("flight-recorder scope"),
        "{msg}"
    );
    assert!(
        report
            .matrix
            .to_json()
            .contains("\"variant\":\"Stats\",\"cells\":[true,false]"),
        "{}",
        report.matrix.to_json()
    );
}

#[test]
fn proto_only_fixtures_skip_the_request_family() {
    // Without the Verb enum in the file set the request-context family is
    // gated off — proto-drift fixtures stay exactly as strict as before.
    let report = analyze_files(&files(&[
        ("crates/proto/src/lib.rs", PROTO),
        ("crates/cli/src/serve.rs", SERVE_OK),
        ("crates/cli/src/repl.rs", REPL),
    ]));
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(!report.matrix.to_json().contains("\"family\":\"Request\""));
}

#[test]
fn slo_verb_without_exporter_feed_or_test_is_flagged() {
    let report = analyze_files(&files(&[
        (
            "crates/core/src/slo.rs",
            "pub enum SloVerb {\n    Open,\n    Expand,\n}\n\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn names_open() {\n        \
             let v = SloVerb::Open;\n    }\n}\n",
        ),
        (
            "crates/core/src/engine.rs",
            "fn stats(&self) {\n    self.slo.burns(SloVerb::Open);\n}\n",
        ),
    ]));
    // Expand is neither fed to the monitor nor named by a test.
    assert_eq!(
        rules_of(&report),
        vec!["coverage", "coverage"],
        "{:?}",
        report.findings
    );
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.message.contains("SloVerb::Expand")),
        "{:?}",
        report.findings
    );
    let json = report.matrix.to_json();
    assert!(json.contains("\"family\":\"SloVerb\""), "{json}");
    assert!(
        json.contains("\"variant\":\"Open\",\"cells\":[true,true]"),
        "{json}"
    );
    assert!(
        json.contains("\"variant\":\"Expand\",\"cells\":[false,false]"),
        "{json}"
    );
}

// ---------------------------------------------------------------------------
// acceptance: the real workspace
// ---------------------------------------------------------------------------

fn workspace_root() -> &'static Path {
    // tests run from crates/xtask; the workspace root is two levels up.
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn the_real_workspace_is_clean() {
    let files = analysis_files(workspace_root()).expect("workspace sources readable");
    assert!(files.len() > 30, "loader must see the whole workspace");
    let report = analyze_files(&files);
    assert!(
        report.findings.is_empty(),
        "the committed workspace must analyze clean:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every family made it into the matrix, fully covered.
    let json = report.matrix.to_json();
    for family in ["FailSite", "Stage", "EngineError", "Request", "SloVerb"] {
        assert!(json.contains(&format!("\"family\":\"{family}\"")), "{json}");
    }
    assert!(json.contains("\"gaps\":0"), "{json}");
}

#[test]
fn removing_any_request_match_arm_from_serve_fails_analyze() {
    let all = analysis_files(workspace_root()).expect("workspace sources readable");
    let request_variants: Vec<String> = {
        let model = xtask::model::Model::build(&all);
        model
            .enum_def("Request", "proto")
            .expect("bionav-proto defines Request")
            .variants
            .iter()
            .map(|(v, _)| v.clone())
            .collect()
    };
    assert!(request_variants.len() >= 6, "{request_variants:?}");
    for variant in request_variants {
        let mutated: Vec<(String, String)> = all
            .iter()
            .map(|(p, s)| {
                if p.ends_with("cli/src/serve.rs") {
                    // Renaming the variant in serve.rs deletes its match
                    // arm as far as the protocol is concerned.
                    (
                        p.clone(),
                        s.replace(&format!("Request::{variant}"), "Request::Gone"),
                    )
                } else {
                    (p.clone(), s.clone())
                }
            })
            .collect();
        let report = analyze_files(&mutated);
        assert!(
            report.findings.iter().any(|f| {
                f.rule == "proto-drift"
                    && f.message.contains(&format!("Request::{variant}"))
                    && f.message.contains("apply")
            }),
            "dropping the {variant} arm must fail analyze; got {:?}",
            report.findings
        );
    }
}
