//! # xtask — the BioNav analysis toolchain's custom lint pass
//!
//! A small hand-rolled Rust scanner (no rustc plumbing, no external deps)
//! enforcing project rules that `clippy -D warnings` cannot express —
//! contracts introduced by the concurrent serving work (DESIGN.md §5d):
//!
//! * [`rules::RULES`] is the machine-readable rule table (`cargo xtask
//!   rules --json`).
//! * [`rules::scan_source`] lints one file (used by the fixture tests with
//!   virtual paths), [`scan_workspace`] walks `src/` and `crates/*/src/`.
//!
//! Violations are suppressed with an explicit, *reasoned* annotation:
//!
//! ```text
//! // lint: allow(no-unwrap) — worker threads never panic: f is caught upstream
//! // lint: allow-file(no-unwrap) — REPL surface: prompts assume a live session
//! ```
//!
//! `allow(<rule>)` covers its own line and the next code line (a multi-line
//! reason comment is spanned); `allow-file(<rule>)` covers the whole file. A reason after an em dash / hyphen / colon is
//! mandatory — reasonless annotations are ignored and the violation fires.
//!
//! The scanner lexes real Rust line-by-line (nested block comments, string
//! and char literals, raw strings, lifetime-vs-char disambiguation), so
//! patterns inside strings, comments, or doc text never trigger rules, and
//! `#[cfg(test)]` regions are tracked by brace depth and skipped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod tokens;

use std::path::{Path, PathBuf};

pub use rules::{scan_source, Finding, Rule, RULES};

/// Recursively collect `.rs` files under `dir` (sorted for determinism).
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every first-party source file in the workspace rooted at `root`:
/// the root package's `src/` plus each `crates/*/src/`. Vendored stand-ins
/// under `vendor/` are third-party API shims and are out of scope.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    rs_files(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            rs_files(&member.join("src"), &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(rules::scan_source(&rel, &src));
    }
    Ok(findings)
}

/// Loads every first-party source the `analyze` passes read: the root
/// package's `src/`, each `crates/*/src/`, **and** each `crates/*/tests/`
/// (the analyses cross-reference test coverage, which the lint walk does
/// not). Returns `(workspace-relative path, source)` pairs, sorted.
pub fn analysis_files(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files: Vec<PathBuf> = Vec::new();
    rs_files(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            rs_files(&member.join("src"), &mut files)?;
            rs_files(&member.join("tests"), &mut files)?;
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, src));
    }
    Ok(out)
}

/// Minimal JSON string escaping for the `--json` outputs.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
