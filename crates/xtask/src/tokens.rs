//! A flat token stream over the [`crate::lexer`]'s code channel.
//!
//! The lexer already blanks string/char literal *contents* and splits
//! comments into their own channel, so tokenizing the code channel is a
//! simple scan: identifier/number runs, blanked literals (`""`, `''`), and
//! punctuation (with `::`, `=>`, and `->` merged, because paths, match
//! arms, and return types are what the symbol model reads). Delimiters are matched into a token-tree
//! index ([`TokenFile::match_of`]) instead of a nested tree — the model
//! walks the flat stream and jumps across groups when it needs to.
//!
//! Invariant (fuzz-tested): concatenating every token's text of a line
//! reproduces that line's code channel with the whitespace removed — the
//! tokenizer never invents, drops, or reorders characters.

use crate::lexer::Line;

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `enum`, `match`, names).
    Ident,
    /// Numeric literal (starts with a digit; includes `0x..`, `1_000u64`).
    Num,
    /// A blanked string (`""`) or char (`''`) literal.
    Lit,
    /// Punctuation: one char, or the merged `::` / `=>` pairs.
    Punct,
}

/// One token of a file's code channel.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 0-based line index in the file.
    pub line: usize,
    /// The token's text, verbatim from the code channel.
    pub text: String,
    /// Classification.
    pub kind: TokKind,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A tokenized file: the flat stream plus the delimiter-matching index.
#[derive(Debug, Default)]
pub struct TokenFile {
    /// The flat token stream, in source order.
    pub toks: Vec<Tok>,
    /// `match_of[i]` is the index of the delimiter matching token `i`
    /// (close for an open, open for a close); `usize::MAX` for non-delims
    /// and unbalanced delimiters.
    pub match_of: Vec<usize>,
    /// For every token, the index of the innermost `{` open-brace token
    /// enclosing it (`usize::MAX` at the top level).
    pub enclosing_brace: Vec<usize>,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes the code channels of already-split lines.
pub fn tokenize(lines: &[Line]) -> TokenFile {
    let mut toks = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let cs: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < cs.len() {
            let c = cs[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if is_ident_char(c) {
                let start = i;
                while i < cs.len() && is_ident_char(cs[i]) {
                    i += 1;
                }
                let text: String = cs[start..i].iter().collect();
                let kind = if c.is_ascii_digit() {
                    TokKind::Num
                } else {
                    TokKind::Ident
                };
                toks.push(Tok {
                    line: ln,
                    text,
                    kind,
                });
                continue;
            }
            if (c == '"' || c == '\'') && cs.get(i + 1) == Some(&c) {
                // The lexer blanked the literal to its two delimiters.
                toks.push(Tok {
                    line: ln,
                    text: cs[i..i + 2].iter().collect(),
                    kind: TokKind::Lit,
                });
                i += 2;
                continue;
            }
            // Merge the pair-punctuators the model cares about: paths,
            // match arms, and `->` (so a return-type's `>` can never be
            // mistaken for a generic-angle close).
            let pair: Option<&str> = match (c, cs.get(i + 1)) {
                (':', Some(':')) => Some("::"),
                ('=', Some('>')) => Some("=>"),
                ('-', Some('>')) => Some("->"),
                _ => None,
            };
            if let Some(p) = pair {
                toks.push(Tok {
                    line: ln,
                    text: p.to_string(),
                    kind: TokKind::Punct,
                });
                i += 2;
                continue;
            }
            toks.push(Tok {
                line: ln,
                text: c.to_string(),
                kind: TokKind::Punct,
            });
            i += 1;
        }
    }
    index(toks)
}

/// Builds the delimiter-matching and enclosing-brace indexes.
fn index(toks: Vec<Tok>) -> TokenFile {
    let mut match_of = vec![usize::MAX; toks.len()];
    let mut enclosing_brace = vec![usize::MAX; toks.len()];
    let mut stack: Vec<usize> = Vec::new(); // all delims
    let mut braces: Vec<usize> = Vec::new(); // `{` only
    for (i, t) in toks.iter().enumerate() {
        enclosing_brace[i] = braces.last().copied().unwrap_or(usize::MAX);
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => {
                stack.push(i);
                if t.text == "{" {
                    braces.push(i);
                }
            }
            ")" | "]" | "}" => {
                let want = match t.text.as_str() {
                    ")" => "(",
                    "]" => "[",
                    _ => "{",
                };
                // Pop to the matching opener, tolerating imbalance (the
                // code channel of valid Rust is balanced; fuzz corpora may
                // not be).
                while let Some(open) = stack.pop() {
                    let ot = toks[open].text.as_str();
                    if ot == "{" {
                        braces.pop();
                    }
                    if ot == want {
                        match_of[open] = i;
                        match_of[i] = open;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    TokenFile {
        toks,
        match_of,
        enclosing_brace,
    }
}

impl TokenFile {
    /// The matching delimiter of token `i`, if `i` is a balanced delimiter.
    pub fn match_of(&self, i: usize) -> Option<usize> {
        let m = *self.match_of.get(i)?;
        (m != usize::MAX).then_some(m)
    }

    /// The index of the close brace of the innermost block containing
    /// token `i` (`None` at the top level or if unbalanced).
    pub fn block_end(&self, i: usize) -> Option<usize> {
        let open = *self.enclosing_brace.get(i)?;
        if open == usize::MAX {
            return None;
        }
        self.match_of(open)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn toks(src: &str) -> TokenFile {
        tokenize(&lexer::split(src))
    }

    #[test]
    fn idents_paths_and_arms_tokenize() {
        let tf = toks("match x { Request::Open { query } => 1, _ => 0 }\n");
        let texts: Vec<&str> = tf.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "match", "x", "{", "Request", "::", "Open", "{", "query", "}", "=>", "1", ",", "_",
                "=>", "0", "}"
            ]
        );
    }

    #[test]
    fn blanked_literals_become_lit_tokens() {
        let tf = toks("let s = \"he said \\\"hi\\\"\"; let c = 'x';\n");
        let lits: Vec<&Tok> = tf.toks.iter().filter(|t| t.kind == TokKind::Lit).collect();
        assert_eq!(lits.len(), 2);
        assert_eq!(lits[0].text, "\"\"");
        assert_eq!(lits[1].text, "''");
    }

    #[test]
    fn delimiters_match_across_lines() {
        let tf = toks("fn f() {\n    g(1, [2, 3]);\n}\n");
        let open = tf
            .toks
            .iter()
            .position(|t| t.is_punct("{"))
            .expect("open brace");
        let close = tf.match_of(open).expect("balanced");
        assert!(tf.toks[close].is_punct("}"));
        assert_eq!(close, tf.toks.len() - 1);
        // Everything between is inside that block.
        assert_eq!(tf.enclosing_brace[open + 1], open);
        assert_eq!(tf.block_end(open + 1), Some(close));
    }

    #[test]
    fn roundtrip_text_is_preserved() {
        let src = "impl Foo { fn bar(&self) -> u32 { self.x.lock().len() } }\n";
        let tf = toks(src);
        let joined: String = tf.toks.iter().map(|t| t.text.as_str()).collect();
        let stripped: String = src.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(joined, stripped);
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        let tf = toks("} } ( [ {\n");
        assert_eq!(tf.toks.len(), 5);
        assert!(tf.match_of(0).is_none());
    }
}
