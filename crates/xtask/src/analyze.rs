//! `cargo xtask analyze` — three workspace-wide graph analyses over the
//! [`crate::model`] symbol model (DESIGN.md §5i):
//!
//! * **`lock-order`** — extracts every lock acquisition in `crates/core`,
//!   derives a held-lock → acquired-lock order graph (direct nesting plus
//!   a name-resolved call-graph closure) and fails on cycles: the
//!   workspace-wide generalization of the two hand-written lock lint
//!   rules. Deliberate nesting is excluded with the shared annotation
//!   grammar: `// lint: allow(lock-order) — reason`.
//! * **`proto-drift`** — every `Request`/`Reply` variant in `bionav-proto`
//!   must be matched in `serve.rs::apply`, reachable from the REPL (via
//!   [`VERB_WIRING`]), and named by at least one test in `crates/proto`
//!   or `crates/cli` — adding a verb without wiring every layer is a CI
//!   failure, not a latent bug.
//! * **`coverage`** — the assurance matrix: `FailSite` variants vs chaos
//!   tests arming them, `Stage` variants vs the `ALL` array / `name()`
//!   arms the exporters consume, `EngineError` variants vs construction
//!   sites and tests, `Request` variants vs the request-context plane
//!   (mapped in `serve.rs::verb_of`, flight-recorder scope minted outside
//!   the wire path), `SloVerb` variants vs the exporter feed and tests,
//!   `ShedReason` variants vs the Prometheus exposition / flight-recorder
//!   shed codes / tests. Emitted as machine-readable JSON (`--json`).
//!
//! Every pass takes `(path, source)` pairs, so the meta-tests feed seeded
//! violations through the same code path CI runs. Path *hints* (e.g.
//! `core/src`, `cli/src/serve.rs`) classify files; fixtures use virtual
//! paths containing the same hints.

use std::collections::{BTreeMap, BTreeSet};

use crate::json_escape;
use crate::model::{lock_node, Model};
use crate::rules::Finding;

/// One analysis pass of `cargo xtask analyze` (machine-readable table,
/// mirrored in DESIGN.md §5i).
pub struct Analysis {
    /// Stable id, also the `lint: allow(...)` rule id where applicable.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// The analysis table, in evaluation order.
pub const ANALYSES: &[Analysis] = &[
    Analysis {
        id: "lock-order",
        summary: "no cycles in the derived held-lock -> acquired-lock order graph of crates/core \
                  (direct nesting + call-graph closure)",
    },
    Analysis {
        id: "proto-drift",
        summary: "every Request/Reply variant is matched in serve.rs::apply, reachable from the \
                  REPL, and named by a proto/cli test",
    },
    Analysis {
        id: "coverage",
        summary: "assurance matrix: FailSite vs chaos tests, Stage vs ALL/name()/exporters, \
                  EngineError vs construction sites and tests, Request vs the request-context \
                  plane (verb_of + flight-recorder scope), SloVerb vs exporter feed and tests, \
                  ShedReason vs exposition/flight-recorder/tests",
    },
];

/// REPL reachability table for the protocol-drift pass: which engine call
/// proves a `Request` variant is reachable from the interactive surface.
/// A variant with no entry here is itself a finding — adding a verb means
/// teaching the analyzer where the REPL exercises it.
pub const VERB_WIRING: &[(&str, &str)] = &[
    ("Open", "open_session"),
    ("Expand", "expand"),
    ("ShowResults", "show_results"),
    ("Close", "close_session"),
    ("Stats", "stats"),
    ("Prom", "prometheus_text"),
    ("Debug", "flight_snapshot"),
];

/// The output of one `analyze` run: findings plus the coverage matrix.
pub struct Report {
    /// Violations across all three passes (empty == clean).
    pub findings: Vec<Finding>,
    /// The assurance-coverage matrix, for `--json` / the CI artifact.
    pub matrix: Matrix,
}

/// The machine-readable assurance-coverage matrix.
#[derive(Default)]
pub struct Matrix {
    /// One block per enum family.
    pub families: Vec<Family>,
}

/// One enum family's coverage block.
pub struct Family {
    /// The enum's name (`FailSite`, `Stage`, `EngineError`).
    pub name: &'static str,
    /// Column labels, in cell order.
    pub columns: &'static [&'static str],
    /// `(variant, cells)` rows in declaration order.
    pub rows: Vec<(String, Vec<bool>)>,
}

impl Matrix {
    /// Serializes the matrix to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"families\":[");
        for (fi, fam) in self.families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"family\":\"{}\",\"columns\":[", fam.name));
            for (ci, c) in fam.columns.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", json_escape(c)));
            }
            out.push_str("],\"rows\":[");
            for (ri, (variant, cells)) in fam.rows.iter().enumerate() {
                if ri > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"variant\":\"{}\",\"cells\":[",
                    json_escape(variant)
                ));
                for (ci, c) in cells.iter().enumerate() {
                    if ci > 0 {
                        out.push(',');
                    }
                    out.push_str(if *c { "true" } else { "false" });
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        let gaps: usize = self
            .families
            .iter()
            .flat_map(|f| f.rows.iter())
            .map(|(_, cells)| cells.iter().filter(|c| !**c).count())
            .sum();
        out.push_str(&format!("],\"gaps\":{gaps}}}"));
        out
    }
}

/// Runs all three passes over `(path, source)` pairs.
pub fn analyze_files(files: &[(String, String)]) -> Report {
    let model = Model::build(files);
    let mut findings = Vec::new();
    findings.extend(lock_order(&model));
    findings.extend(protocol_drift(&model));
    let (coverage_findings, matrix) = coverage(&model);
    findings.extend(coverage_findings);
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Report { findings, matrix }
}

// -- pass 1: lock-order graph -----------------------------------------------

/// Whether this file participates in the lock-order pass.
fn core_scope(path: &str) -> bool {
    path.contains("core/src")
}

/// Derives the held-lock → acquired-lock order graph of `crates/core` and
/// reports every cycle (deadlock potential).
///
/// Lock identity is `ImplType::field` — two fields with the same qualified
/// name are one node, so an order between distinct same-name instances
/// (e.g. two sessions' locks) is deliberately not modeled; self-edges are
/// skipped. Call edges resolve callees by bare name (restricted to the
/// caller's impl type for `self.method()` calls) and close transitively
/// over everything a callee may acquire.
pub fn lock_order(model: &Model) -> Vec<Finding> {
    // Eligible sites: core scope, non-test, not annotated away.
    let sites: Vec<(usize, &crate::model::LockSite)> = model
        .locks
        .iter()
        .enumerate()
        .filter(|(_, s)| core_scope(&model.files[s.file].path) && !s.in_test && !s.allowed)
        .collect();
    if sites.is_empty() {
        return Vec::new();
    }

    // Acq*(fn): every lock node a function may acquire, directly or through
    // calls — fixpoint over the name-resolved call graph.
    let mut name_to_fns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in model.fns.iter().enumerate() {
        if !f.in_test && core_scope(&model.files[f.file].path) {
            name_to_fns.entry(&f.name).or_default().push(i);
        }
    }
    let mut acq: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (_, s) in &sites {
        if let Some(fi) = s.fn_idx {
            acq.entry(fi).or_default().insert(lock_node(model, s));
        }
    }
    // Name resolution policy (the graph's precision knob): `self.method()`
    // resolves within the caller's impl type; any other *method* call
    // resolves only when exactly one non-test fn bears the name (a chained
    // `.get(…)` / `.len(…)` on a locked collection must not alias every
    // `get` in the workspace); free/path calls resolve to all same-name
    // fns.
    let candidates = |model: &Model, call: &crate::model::CallSite| -> Vec<usize> {
        let all = name_to_fns
            .get(call.callee.as_str())
            .cloned()
            .unwrap_or_default();
        let tf = &model.files[call.file].tf;
        let is_method = call.tok >= 1 && tf.toks[call.tok - 1].is_punct(".");
        if !is_method {
            return all;
        }
        let self_recv = call.tok >= 2 && tf.toks[call.tok - 2].is_ident("self");
        if self_recv {
            if let Some(qual) = call.fn_idx.and_then(|fi| model.fns[fi].qual.as_deref()) {
                let narrowed: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| model.fns[i].qual.as_deref() == Some(qual))
                    .collect();
                if !narrowed.is_empty() {
                    return narrowed;
                }
            }
        }
        if all.len() == 1 {
            all
        } else {
            Vec::new()
        }
    };
    loop {
        let mut changed = false;
        for call in &model.calls {
            let Some(caller) = call.fn_idx else { continue };
            if !core_scope(&model.files[call.file].path) {
                continue;
            }
            let mut inherited: BTreeSet<String> = BTreeSet::new();
            for callee in candidates(model, call) {
                if let Some(set) = acq.get(&callee) {
                    inherited.extend(set.iter().cloned());
                }
            }
            if inherited.is_empty() {
                continue;
            }
            let entry = acq.entry(caller).or_default();
            let before = entry.len();
            entry.extend(inherited);
            changed |= entry.len() > before;
        }
        if !changed {
            break;
        }
    }

    // Edges: while site A's guard is live, any acquisition B (direct or via
    // a call) orders node(A) before node(B).
    struct Prov {
        path: String,
        line: usize,
        note: String,
    }
    let mut edges: BTreeMap<(String, String), Prov> = BTreeMap::new();
    let mut add_edge = |from: String, to: String, prov: Prov| {
        if from != to {
            edges.entry((from, to)).or_insert(prov);
        }
    };
    for (ai, a) in &sites {
        if a.held_until <= a.tok {
            continue; // temporary guard: dead before anything else runs
        }
        let from = lock_node(model, a);
        let path = model.files[a.file].path.clone();
        for (bi, b) in &sites {
            if bi != ai && b.file == a.file && a.tok < b.tok && b.tok < a.held_until {
                add_edge(
                    from.clone(),
                    lock_node(model, b),
                    Prov {
                        path: path.clone(),
                        line: b.line,
                        note: format!("acquired while {from} is held (guard from line {})", a.line),
                    },
                );
            }
        }
        for call in &model.calls {
            if call.file == a.file && a.tok < call.tok && call.tok < a.held_until {
                for callee in candidates(model, call) {
                    if let Some(set) = acq.get(&callee) {
                        let call_line = model.files[call.file].tf.toks[call.tok].line + 1;
                        for node in set {
                            add_edge(
                                from.clone(),
                                node.clone(),
                                Prov {
                                    path: path.clone(),
                                    line: call_line,
                                    note: format!(
                                        "call to {}() may acquire {node} while {from} is held \
                                         (guard from line {})",
                                        call.callee, a.line
                                    ),
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the order graph.
    let nodes: Vec<&String> = {
        let mut set = BTreeSet::new();
        for (f, t) in edges.keys() {
            set.insert(f);
            set.insert(t);
        }
        set.into_iter().collect()
    };
    let index: BTreeMap<&String, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (f, t) in edges.keys() {
        if let (Some(&fi), Some(&ti)) = (index.get(f), index.get(t)) {
            adj[fi].push(ti);
        }
    }
    let mut findings = Vec::new();
    if let Some(cycle) = find_cycle(&adj) {
        let names: Vec<String> = cycle.iter().map(|&i| nodes[i].clone()).collect();
        let mut detail = String::new();
        let mut at = ("<unknown>".to_string(), 0);
        for w in 0..names.len() {
            let from = &names[w];
            let to = &names[(w + 1) % names.len()];
            if let Some(p) = edges.get(&(from.clone(), to.clone())) {
                if w == 0 {
                    at = (p.path.clone(), p.line);
                }
                detail.push_str(&format!(
                    "; {from} -> {to}: {} ({}:{})",
                    p.note, p.path, p.line
                ));
            }
        }
        findings.push(Finding {
            path: at.0,
            line: at.1,
            rule: "lock-order",
            message: format!(
                "lock-order cycle (deadlock potential): {}{detail} — break the cycle or annotate \
                 the deliberate acquisition with `// lint: allow(lock-order) — reason`",
                names.join(" -> ")
            ),
        });
    }
    findings
}

/// First cycle of a digraph (node indices, cycle order), if any.
/// Iterative coloring DFS — no recursion, no panics.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; adj.len()];
    for start in 0..adj.len() {
        if color[start] != WHITE {
            continue;
        }
        // (node, next child index) path stack.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = GRAY;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            if *child < adj[node].len() {
                let next = adj[node][*child];
                *child += 1;
                match color[next] {
                    WHITE => {
                        color[next] = GRAY;
                        stack.push((next, 0));
                    }
                    GRAY => {
                        // Back edge: the cycle is the path suffix from `next`.
                        let pos = stack.iter().position(|&(n, _)| n == next).unwrap_or(0);
                        return Some(stack[pos..].iter().map(|&(n, _)| n).collect());
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

// -- pass 2: protocol drift --------------------------------------------------

/// Checks that every `Request`/`Reply` variant is wired through all layers:
/// matched in `serve.rs::apply`, reachable from the REPL, and named by a
/// proto/cli test.
pub fn protocol_drift(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(request) = model.enum_def("Request", "proto") else {
        return findings; // no proto crate in this file set: nothing to check
    };
    let reply = model.enum_def("Reply", "proto");
    let proto_path = model.files[request.file].path.clone();

    // serve.rs::apply body range, for "matched in apply" checks.
    let apply_body = model
        .fns
        .iter()
        .find(|f| {
            f.name == "apply" && !f.in_test && model.files[f.file].path.contains("cli/src/serve.rs")
        })
        .and_then(|f| f.body.map(|b| (f.file, b)));

    let tested = |qual: &str, name: &str| {
        model.refs(qual, name, "").any(|r| {
            r.in_test
                && (model.files[r.file].path.contains("crates/proto")
                    || model.files[r.file].path.contains("crates/cli"))
        })
    };

    for (variant, line) in &request.variants {
        // (1) matched in serve.rs::apply
        let in_apply = apply_body.is_some_and(|(file, (b, e))| {
            model
                .refs("Request", variant, "cli/src/serve.rs")
                .any(|r| r.file == file && b < r.tok && r.tok < e && !r.in_test)
        });
        if !in_apply {
            findings.push(Finding {
                path: proto_path.clone(),
                line: *line,
                rule: "proto-drift",
                message: format!(
                    "Request::{variant} is not matched in crates/cli/src/serve.rs::apply — the \
                     serve loop silently drops this verb"
                ),
            });
        }
        // (2) reachable from the REPL
        match VERB_WIRING.iter().find(|(v, _)| v == variant) {
            None => findings.push(Finding {
                path: proto_path.clone(),
                line: *line,
                rule: "proto-drift",
                message: format!(
                    "Request::{variant} has no REPL-wiring entry — add (\"{variant}\", \
                     \"<engine call>\") to VERB_WIRING in crates/xtask/src/analyze.rs and wire \
                     the verb into the REPL"
                ),
            }),
            Some((_, needle)) => {
                let in_repl = model.calls.iter().any(|c| {
                    c.callee == *needle && model.files[c.file].path.contains("cli/src/repl.rs")
                });
                if !in_repl {
                    findings.push(Finding {
                        path: proto_path.clone(),
                        line: *line,
                        rule: "proto-drift",
                        message: format!(
                            "Request::{variant} is not reachable from the REPL: no {needle}() \
                             call in crates/cli/src/repl.rs"
                        ),
                    });
                }
            }
        }
        // (3) named by a test
        if !tested("Request", variant) {
            findings.push(Finding {
                path: proto_path.clone(),
                line: *line,
                rule: "proto-drift",
                message: format!(
                    "Request::{variant} is not named by any test in crates/proto or crates/cli"
                ),
            });
        }
    }

    if let Some(reply) = reply {
        for (variant, line) in &reply.variants {
            let in_serve = model
                .refs("Reply", variant, "cli/src/serve.rs")
                .any(|r| !r.in_test);
            if !in_serve {
                findings.push(Finding {
                    path: proto_path.clone(),
                    line: *line,
                    rule: "proto-drift",
                    message: format!(
                        "Reply::{variant} is never constructed in crates/cli/src/serve.rs — \
                         the serve loop cannot produce this reply"
                    ),
                });
            }
            if !tested("Reply", variant) {
                findings.push(Finding {
                    path: proto_path.clone(),
                    line: *line,
                    rule: "proto-drift",
                    message: format!(
                        "Reply::{variant} is not named by any test in crates/proto or crates/cli"
                    ),
                });
            }
        }
    }
    findings
}

// -- pass 3: assurance-coverage matrix ---------------------------------------

/// Builds the assurance matrix and a finding per gap.
pub fn coverage(model: &Model) -> (Vec<Finding>, Matrix) {
    let mut findings = Vec::new();
    let mut matrix = Matrix::default();

    // FailSite: armed in core (non-test ref outside fault.rs) + named by a
    // chaos test.
    if let Some(def) = model.enum_def("FailSite", "core/src/fault.rs") {
        let def_path = model.files[def.file].path.clone();
        let mut rows = Vec::new();
        for (variant, line) in &def.variants {
            let armed = model
                .refs("FailSite", variant, "core/src")
                .any(|r| !r.in_test && !model.files[r.file].path.ends_with("fault.rs"));
            let chaos = model
                .refs("FailSite", variant, "tests/chaos")
                .next()
                .is_some();
            if !armed {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "FailSite::{variant} is not armed anywhere in crates/core outside \
                         fault.rs — dead failpoint"
                    ),
                });
            }
            if !chaos {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "FailSite::{variant} is not exercised by any chaos test \
                         (crates/core/tests/chaos.rs)"
                    ),
                });
            }
            rows.push((variant.clone(), vec![armed, chaos]));
        }
        matrix.families.push(Family {
            name: "FailSite",
            columns: &["armed_in_core", "chaos_test"],
            rows,
        });
    }

    // Stage: instrumented outside trace/, present in Stage::ALL, and given a
    // name() arm — the two facts both exporters (Prometheus iterates ALL,
    // Chrome trace renders name()) depend on.
    if let Some(def) = model.enum_def("Stage", "trace") {
        let def_path = model.files[def.file].path.clone();
        let name_body = model
            .fns
            .iter()
            .find(|f| f.name == "name" && f.file == def.file && !f.in_test)
            .and_then(|f| f.body.map(|b| (f.file, b)));
        let mut rows = Vec::new();
        for (variant, line) in &def.variants {
            let instrumented = model
                .refs("Stage", variant, "")
                .any(|r| !r.in_test && !model.files[r.file].path.contains("/trace/"));
            let name_arm = name_body.is_some_and(|(file, (b, e))| {
                model
                    .refs("Stage", variant, "")
                    .any(|r| r.file == file && b < r.tok && r.tok < e)
            });
            let in_all = model.refs("Stage", variant, "").any(|r| {
                r.file == def.file
                    && !(def.body.0 < r.tok && r.tok < def.body.1)
                    && !name_body.is_some_and(|(_, (b, e))| b < r.tok && r.tok < e)
            });
            if !instrumented {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "Stage::{variant} is never instrumented outside the trace module — \
                         dead stage"
                    ),
                });
            }
            if !name_arm {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "Stage::{variant} has no Stage::name() arm — both exporters render \
                         stages by name"
                    ),
                });
            }
            if !in_all {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "Stage::{variant} is missing from Stage::ALL — the Prometheus exporter \
                         iterates ALL, so this stage would never be exported"
                    ),
                });
            }
            rows.push((variant.clone(), vec![instrumented, in_all, name_arm]));
        }
        // Family-level: the Prometheus exporter must still iterate ALL.
        let export_iterates = model
            .refs("Stage", "ALL", "trace/export.rs")
            .any(|r| !r.in_test);
        if !export_iterates
            && model
                .files
                .iter()
                .any(|f| f.path.contains("trace/export.rs"))
        {
            findings.push(Finding {
                path: def_path.clone(),
                line: def.line,
                rule: "coverage",
                message: "the exporter (crates/core/src/trace/export.rs) no longer iterates \
                          Stage::ALL — per-stage series would silently vanish"
                    .to_string(),
            });
        }
        matrix.families.push(Family {
            name: "Stage",
            columns: &["instrumented", "in_all", "name_arm"],
            rows,
        });
    }

    // EngineError: constructed in core (non-test ref outside the enum body
    // and outside trait impls like Display) + named by a test somewhere.
    if let Some(def) = model.enum_def("EngineError", "core/src") {
        let def_path = model.files[def.file].path.clone();
        let mut rows = Vec::new();
        for (variant, line) in &def.variants {
            let constructed = model.refs("EngineError", variant, "core/src").any(|r| {
                if r.in_test || (r.file == def.file && def.body.0 < r.tok && r.tok < def.body.1) {
                    return false;
                }
                // A match arm in `impl Display for EngineError` is
                // formatting, not construction.
                !model
                    .impl_at(r.file, r.tok)
                    .is_some_and(|i| i.trait_name.is_some() && i.type_name == "EngineError")
            });
            let in_test = model.refs("EngineError", variant, "").any(|r| r.in_test);
            if !constructed {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "EngineError::{variant} is never constructed in crates/core — dead \
                         error variant"
                    ),
                });
            }
            if !in_test {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "EngineError::{variant} is not named by any test — its refusal path \
                         is unverified"
                    ),
                });
            }
            rows.push((variant.clone(), vec![constructed, in_test]));
        }
        matrix.families.push(Family {
            name: "EngineError",
            columns: &["constructed", "tested"],
            rows,
        });
    }

    // Request × request-context plane, gated on the flight recorder's Verb
    // enum being in the file set (so proto-only fixtures skip it): every
    // wire verb must be mapped by `serve.rs::verb_of` (the front-end's
    // RequestCtx attribution anchor) AND have a recorder scope minted
    // outside the wire path — a `Verb::<variant>` reference in
    // `crates/core` outside `trace/` (engine `flight_scope`) or in the
    // REPL (`ensure_scope`) — so interactive traffic is flight-recorded
    // too, not just TCP frames.
    let verb_enum = model.enum_def("Verb", "trace");
    if let (Some(request), Some(_)) = (model.enum_def("Request", "proto"), verb_enum) {
        let def_path = model.files[request.file].path.clone();
        let verb_of_body = model
            .fns
            .iter()
            .find(|f| {
                f.name == "verb_of"
                    && !f.in_test
                    && model.files[f.file].path.contains("cli/src/serve.rs")
            })
            .and_then(|f| f.body.map(|b| (f.file, b)));
        let mut rows = Vec::new();
        for (variant, line) in &request.variants {
            let ctx_propagated = verb_of_body.is_some_and(|(file, (b, e))| {
                model
                    .refs("Request", variant, "cli/src/serve.rs")
                    .any(|r| r.file == file && b < r.tok && r.tok < e && !r.in_test)
            });
            let flight_recorded = model.refs("Verb", variant, "").any(|r| {
                let path = &model.files[r.file].path;
                !r.in_test
                    && ((path.contains("core/src") && !path.contains("/trace/"))
                        || path.contains("cli/src/repl.rs"))
            });
            if !ctx_propagated {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "Request::{variant} is not mapped in crates/cli/src/serve.rs::verb_of — \
                         the wire front-end cannot attribute this verb's work to a request \
                         context"
                    ),
                });
            }
            if !flight_recorded {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "Request::{variant} has no flight-recorder scope outside the wire \
                         front-end — mint Verb::{variant} (engine flight_scope or REPL \
                         ensure_scope) so interactive traffic is recorded too"
                    ),
                });
            }
            rows.push((variant.clone(), vec![ctx_propagated, flight_recorded]));
        }
        matrix.families.push(Family {
            name: "Request",
            columns: &["ctx_propagated", "flight_recorded"],
            rows,
        });
    }

    // SloVerb: fed to the monitor outside slo.rs (the engine records every
    // op against its objective, which is what the exporter renders) + named
    // by a test.
    if let Some(def) = model.enum_def("SloVerb", "core/src/slo.rs") {
        let def_path = model.files[def.file].path.clone();
        let mut rows = Vec::new();
        for (variant, line) in &def.variants {
            let exported = model
                .refs("SloVerb", variant, "")
                .any(|r| !r.in_test && !model.files[r.file].path.ends_with("slo.rs"));
            let in_test = model.refs("SloVerb", variant, "").any(|r| r.in_test);
            if !exported {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "SloVerb::{variant} is never fed to the SLO monitor outside slo.rs — \
                         its burn rate would never be exported"
                    ),
                });
            }
            if !in_test {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "SloVerb::{variant} is not named by any test — its objective is \
                         unverified"
                    ),
                });
            }
            rows.push((variant.clone(), vec![exported, in_test]));
        }
        // No family-level exporter check: the exposition renders the
        // engine-fed `slo_burn` rows, so an unfed verb is exactly what the
        // per-variant `exported` leg catches.
        matrix.families.push(Family {
            name: "SloVerb",
            columns: &["exported", "tested"],
            rows,
        });
    }

    // ShedReason: every typed overload-shed reason must be rendered by the
    // Prometheus exposition (the exhaustive `bionav_shed_total` series match
    // in trace/export.rs), mapped by the flight recorder (the SHED_* code
    // and name arm in trace/flightrec.rs), and named by a test — otherwise
    // a shed path exists that operators cannot see.
    if let Some(def) = model.enum_def("ShedReason", "core/src/admission.rs") {
        let def_path = model.files[def.file].path.clone();
        let mut rows = Vec::new();
        for (variant, line) in &def.variants {
            let exported = model
                .refs("ShedReason", variant, "trace/export.rs")
                .any(|r| !r.in_test);
            let flight_recorded = model
                .refs("ShedReason", variant, "trace/flightrec.rs")
                .any(|r| !r.in_test);
            let in_test = model.refs("ShedReason", variant, "").any(|r| r.in_test);
            if !exported {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "ShedReason::{variant} has no series in the bionav_shed_total \
                         exposition (trace/export.rs) — this shed path is invisible to \
                         Prometheus"
                    ),
                });
            }
            if !flight_recorded {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "ShedReason::{variant} has no flight-recorder shed code \
                         (trace/flightrec.rs) — shed sessions of this kind leave no \
                         per-request trace"
                    ),
                });
            }
            if !in_test {
                findings.push(Finding {
                    path: def_path.clone(),
                    line: *line,
                    rule: "coverage",
                    message: format!(
                        "ShedReason::{variant} is not named by any test — its shed \
                         accounting is unverified"
                    ),
                });
            }
            rows.push((variant.clone(), vec![exported, flight_recorded, in_test]));
        }
        matrix.families.push(Family {
            name: "ShedReason",
            columns: &["exported", "flight_recorded", "tested"],
            rows,
        });
    }

    (findings, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn nested_bound_guards_make_an_order_edge_but_no_cycle() {
        let report = analyze_files(&files(&[(
            "crates/core/src/a.rs",
            "impl Engine {\n\
                 fn one(&self) {\n\
                     let g = self.cache.lock();\n\
                     let h = self.flights.lock();\n\
                     drop(h);\n\
                     drop(g);\n\
                 }\n\
             }\n",
        )]));
        assert!(
            report.findings.is_empty(),
            "one direction is fine: {:?}",
            report.findings
        );
    }

    #[test]
    fn opposite_nesting_is_a_cycle() {
        let report = analyze_files(&files(&[(
            "crates/core/src/a.rs",
            "impl Engine {\n\
                 fn one(&self) {\n\
                     let g = self.cache.lock();\n\
                     self.flights.lock().len();\n\
                 }\n\
                 fn two(&self) {\n\
                     let g = self.flights.lock();\n\
                     self.cache.lock().len();\n\
                 }\n\
             }\n",
        )]));
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "lock-order");
        assert!(report.findings[0].message.contains("Engine::cache"));
        assert!(report.findings[0].message.contains("Engine::flights"));
    }

    #[test]
    fn shed_reason_family_flags_the_missing_exposition_leg() {
        let admission = (
            "crates/core/src/admission.rs",
            "pub enum ShedReason {\n\
                 Queue,\n\
                 Deadline,\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn names() {\n\
                     let _ = (ShedReason::Queue, ShedReason::Deadline);\n\
                 }\n\
             }\n",
        );
        let flightrec = (
            "crates/core/src/trace/flightrec.rs",
            "pub const SHED_QUEUE: u8 = ShedReason::Queue as u8 + 1;\n\
             pub const SHED_DEADLINE: u8 = ShedReason::Deadline as u8 + 1;\n",
        );
        // Exposition renders Queue but forgot Deadline: exactly one gap.
        let export = (
            "crates/core/src/trace/export.rs",
            "fn series() { let _ = ShedReason::Queue; }\n",
        );
        let report = analyze_files(&files(&[admission, flightrec, export]));
        let shed: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.message.contains("ShedReason"))
            .collect();
        assert_eq!(shed.len(), 1, "{:?}", report.findings);
        assert!(shed[0].message.contains("Deadline"), "{:?}", shed[0]);
        assert!(
            shed[0].message.contains("bionav_shed_total"),
            "{:?}",
            shed[0]
        );
        let fam = report
            .matrix
            .families
            .iter()
            .find(|f| f.name == "ShedReason")
            .expect("family");
        assert_eq!(fam.columns, &["exported", "flight_recorded", "tested"]);
        assert_eq!(fam.rows[0], ("Queue".to_string(), vec![true, true, true]));
        assert_eq!(
            fam.rows[1],
            ("Deadline".to_string(), vec![false, true, true])
        );
    }

    #[test]
    fn matrix_json_counts_gaps() {
        let m = Matrix {
            families: vec![Family {
                name: "FailSite",
                columns: &["armed_in_core", "chaos_test"],
                rows: vec![
                    ("A".to_string(), vec![true, true]),
                    ("B".to_string(), vec![true, false]),
                ],
            }],
        };
        let json = m.to_json();
        assert!(json.contains("\"gaps\":1"), "{json}");
        assert!(
            json.contains("\"variant\":\"B\",\"cells\":[true,false]"),
            "{json}"
        );
    }
}
