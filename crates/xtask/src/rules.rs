//! The project rule table and the per-file scanner.
//!
//! Each rule is a line-pattern pass over the [`crate::lexer`]'s code
//! channel, with `#[cfg(test)]` regions skipped and `// lint: allow(...)`
//! annotations honored. See [`RULES`] for the machine-readable table and
//! CONTRIBUTING.md for the human one.

use crate::lexer::{self, Line};

/// Metadata for one lint rule (the machine-readable rule table).
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule id used in findings and `lint: allow(...)` annotations.
    pub id: &'static str,
    /// One-line description of what the rule forbids.
    pub summary: &'static str,
    /// Which files the rule applies to.
    pub scope: &'static str,
    /// Why the project enforces it.
    pub rationale: &'static str,
}

/// The rule table, in evaluation order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-unwrap",
        summary: "no .unwrap() / .expect() / panic!() in non-test library code",
        scope: "library sources (bins and #[cfg(test)] regions exempt)",
        rationale: "a serving engine must degrade, not abort; structural invariants use an \
                    annotated expect with a stated reason",
    },
    Rule {
        id: "atomic-ordering",
        summary: "atomic RMW ops pass an explicit Ordering, and every Ordering use carries a \
                  nearby justification comment",
        scope: "all first-party sources",
        rationale: "memory orderings are load-bearing; the comment forces the author to state \
                    why the chosen ordering is sufficient",
    },
    Rule {
        id: "hotpath-no-hashmap",
        summary: "no HashMap::new / HashSet::new / BTreeMap::new / slice .contains(&…) in the \
                  edgecut hot path or the navigation-tree build",
        scope: "crates/core/src/edgecut/ and crates/core/src/navtree.rs",
        rationale: "the EXPAND tail-latency work routes per-call state through the epoch-stamped \
                    arenas in scratch.rs, and the cold-path rebuild keeps the tree build on flat \
                    sorted columns (hash iteration order is also nondeterministic, which would \
                    break the build's bit-determinism); ad-hoc maps and O(n) scans reintroduce \
                    the p99 regressions PRs 2 and 6 removed",
    },
    Rule {
        id: "lock-across-solve",
        summary: "no lock guard held across a partition/solve/expand call boundary",
        scope: "all first-party sources",
        rationale: "solver calls are the expensive part of EXPAND; holding a shared lock across \
                    one serializes the engine's workers (annotate deliberate cases, e.g. the \
                    per-session lock)",
    },
    Rule {
        id: "no-cross-shard-lock",
        summary: "no lock guard held across a member-Engine entry-point call in the sharded \
                  router",
        scope: "crates/core/src/shard.rs",
        rationale: "shard independence is the tier's scaling invariant (DESIGN.md §5h): every \
                    cross-shard structure is immutable after construction, so a router-level \
                    lock spanning an engine call would serialize the shards it exists to \
                    decouple — and a guard across two shards' calls is a lock-order deadlock \
                    waiting for a second caller",
    },
    Rule {
        id: "no-naked-instant",
        summary: "no Instant::now() / SystemTime::now() outside the trace module and telemetry.rs",
        scope: "all first-party sources except crates/core/src/trace/ and telemetry.rs",
        rationale: "serve-path timing must flow through trace::now_ns() (one monotone epoch) so \
                    spans, histograms, and exporters agree; ad-hoc clock reads drift from the \
                    trace plane and dodge the overhead budget",
    },
    Rule {
        id: "no-catch-unwind",
        summary: "no std::panic::catch_unwind outside crates/core/src/fault.rs",
        scope: "all first-party sources except crates/core/src/fault.rs",
        rationale: "panic isolation is a policy decision, not a local convenience: every unwind \
                    boundary must flow through fault::isolate so injected panics, quarantine \
                    accounting, and the session_panics counter stay in one place",
    },
    Rule {
        id: "forbid-unsafe",
        summary: "every crate root declares #![forbid(unsafe_code)]",
        scope: "crate roots: src/lib.rs, src/main.rs, src/bin/*.rs",
        rationale: "the workspace is 100% safe Rust; forbid makes that a compile-time guarantee \
                    instead of a review convention",
    },
];

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule's id.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Per-line allow state parsed from `// lint: allow(...)` annotations.
/// Shared with the `analyze` passes, which honor the same annotation
/// grammar for their own rule ids (`lock-order`, …).
pub struct Allows {
    /// Rules disabled for the whole file.
    file: Vec<String>,
    /// Rules disabled per line (an annotation covers its own line and the
    /// next code line, spanning intervening comment-only lines).
    line: Vec<Vec<String>>,
}

impl Allows {
    /// Whether `rule` is suppressed on the 0-based line `line_idx`.
    pub fn allowed(&self, line_idx: usize, rule: &str) -> bool {
        self.file.iter().any(|r| r == rule)
            || self
                .line
                .get(line_idx)
                .is_some_and(|rs| rs.iter().any(|r| r == rule))
    }
}

/// Parse one comment for an annotation. Returns `(rule, file_level)` when
/// present *and* carrying a non-empty reason; reasonless annotations are
/// ignored so the underlying violation still fires.
fn parse_allow(comment: &str) -> Option<(String, bool)> {
    let at = comment.find("lint: allow")?;
    let rest = &comment[at + "lint: allow".len()..];
    let (file_level, rest) = match rest.strip_prefix("-file") {
        Some(r) => (true, r),
        None => (false, rest),
    };
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.find(')')?;
    let rule = inner[..close].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    // Reason: anything after an em dash, hyphen, or colon separator.
    let tail = inner[close + 1..].trim_start();
    let reason = tail
        .strip_prefix('—')
        .or_else(|| tail.strip_prefix('-'))
        .or_else(|| tail.strip_prefix(':'))?
        .trim();
    if reason.is_empty() {
        return None;
    }
    Some((rule, file_level))
}

/// Collects every reasoned `// lint: allow(...)` annotation of a file into
/// a per-line lookup structure.
pub fn collect_allows(lines: &[Line]) -> Allows {
    let mut file = Vec::new();
    let mut line: Vec<Vec<String>> = vec![Vec::new(); lines.len()];
    for (i, l) in lines.iter().enumerate() {
        if let Some((rule, file_level)) = parse_allow(&l.comment) {
            if file_level {
                file.push(rule);
            } else {
                line[i].push(rule.clone());
                // Extend over comment-only / blank lines so a multi-line
                // reason still covers the next code line.
                let mut j = i + 1;
                while j < lines.len() && lines[j].code.trim().is_empty() {
                    line[j].push(rule.clone());
                    j += 1;
                }
                if j < lines.len() {
                    line[j].push(rule);
                }
            }
        }
    }
    Allows { file, line }
}

/// Does this line's code carry a `#[cfg(...)]` attribute that enables the
/// region only under `test`? (`not(test)` and `cfg_attr` do not count.)
fn is_test_cfg(code: &str) -> bool {
    if !code.contains("#[cfg(") {
        return false;
    }
    let mut search = 0usize;
    while let Some(pos) = code[search..].find("test") {
        let abs = search + pos;
        let before = &code[..abs];
        let prefixed_not = before.ends_with("not(");
        let boundary_ok = before.ends_with('(') || before.ends_with(',') || before.ends_with(' ');
        let after = &code[abs + 4..];
        let suffix_ok = after.starts_with(')') || after.starts_with(',');
        if boundary_ok && suffix_ok && !prefixed_not {
            return true;
        }
        search = abs + 4;
    }
    false
}

/// Mark every line inside a `#[cfg(test)] mod … { … }` region (by brace
/// depth) and return the per-line flags.
pub fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth = 0usize;
    let mut pending = false;
    let mut region: Option<usize> = None;
    for (i, l) in lines.iter().enumerate() {
        if is_test_cfg(&l.code) {
            pending = true;
        }
        let mut opened_region = false;
        for c in l.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending && region.is_none() {
                        region = Some(depth);
                        pending = false;
                        opened_region = true;
                    }
                }
                '}' => {
                    if region == Some(depth) {
                        region = None;
                        // The closing line itself still belongs to the region.
                        opened_region = true;
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
        // A braceless item (e.g. a cfg'd `use`) consumes the attribute.
        if pending && l.code.contains(';') && !l.code.contains('{') {
            pending = false;
            in_test[i] = true;
            continue;
        }
        in_test[i] = region.is_some() || opened_region;
    }
    in_test
}

const UNWRAP_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap() in library code"),
    (".expect(", "expect() in library code"),
    ("panic!(", "panic!() in library code"),
];

const RMW_PATTERNS: &[&str] = &[
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_or(",
    ".fetch_and(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
    ".fetch_update(",
];

const ORDERING_VARIANTS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

const HOTPATH_PATTERNS: &[(&str, &str)] = &[
    (
        "HashMap::new(",
        "HashMap::new() in a latency-budgeted hot path",
    ),
    (
        "HashSet::new(",
        "HashSet::new() in a latency-budgeted hot path",
    ),
    (
        "BTreeMap::new(",
        "BTreeMap::new() in a latency-budgeted hot path",
    ),
    (
        ".contains(&",
        "O(n) .contains(&…) scan in a latency-budgeted hot path",
    ),
];

const CLOCK_PATTERNS: &[(&str, &str)] = &[
    ("Instant::now(", "naked Instant::now() read"),
    ("SystemTime::now(", "naked SystemTime::now() read"),
];

/// Member-[`Engine`] entry points as seen from the sharded router: a lock
/// guard live across any of these serializes (or deadlocks) the tier.
const ENGINE_ENTRY_PATTERNS: &[&str] = &[
    ".open_session(",
    ".restore_session(",
    ".expand(",
    ".with_session(",
    ".close_session(",
    ".run_script(",
    ".replay(",
    ".stats(",
];

const SOLVE_PATTERNS: &[&str] = &[
    "partition_until",
    "plan_component",
    "solve_full",
    "best_cut",
    "expand_cached",
    "heuristic_reduced_opt",
    ".solve(",
];

/// A live lock guard being tracked for the `lock-across-solve` rule.
struct Guard {
    name: String,
    /// Brace depth at the end of the declaring line; the guard dies when
    /// depth drops below this.
    depth: usize,
    decl_line: usize,
    allowed: bool,
}

fn guard_name(code: &str) -> Option<String> {
    let let_pos = code.find("let ")?;
    let rest = &code[let_pos + 4..];
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || (path.contains("/src/bin/") && path.ends_with(".rs"))
}

fn is_bin(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("main.rs")
}

/// Lint one source file. `path` is workspace-relative and drives scoping
/// (bin exemption, hot-path regions, crate-root detection) — fixture tests
/// pass virtual paths.
pub fn scan_source(path: &str, src: &str) -> Vec<Finding> {
    let lines = lexer::split(src);
    let allows = collect_allows(&lines);
    let in_test = test_regions(&lines);
    let mut findings = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            path: path.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };

    // forbid-unsafe: crate roots must carry the attribute.
    if is_crate_root(path)
        && !lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"))
    {
        push(
            0,
            "forbid-unsafe",
            "crate root lacks #![forbid(unsafe_code)]".to_string(),
        );
    }

    let bin = is_bin(path);
    // The two latency-budgeted regions: the EXPAND hot path (edgecut) and
    // the cold-open tree build (navtree), which is additionally required to
    // be bit-deterministic — hash iteration order would break that too.
    let hotpath = path.contains("/edgecut/") || path.ends_with("core/src/navtree.rs");
    // The trace module and the latency histograms are the two places that
    // legitimately read the raw clock; everything else goes through
    // trace::now_ns() so all timing shares one monotone epoch.
    let clock_exempt =
        path.contains("/trace/") || path.ends_with("trace.rs") || path.ends_with("telemetry.rs");
    // fault::isolate is the single sanctioned unwind boundary; everywhere
    // else panic isolation must be delegated so the quarantine accounting
    // cannot be bypassed.
    let unwind_exempt = path.ends_with("core/src/fault.rs");
    // The sharded router: the one file where a lock guard spanning an
    // Engine entry point breaks the shard-independence invariant.
    let shard_scope = path.ends_with("core/src/shard.rs");
    let mut guards: Vec<Guard> = Vec::new();
    let mut shard_guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;

    for (i, l) in lines.iter().enumerate() {
        let code = &l.code;
        let depth_after = {
            let mut d = depth;
            for c in code.chars() {
                match c {
                    '{' => d += 1,
                    '}' => d = d.saturating_sub(1),
                    _ => {}
                }
            }
            d
        };
        if in_test[i] {
            // Guards cannot outlive a test region boundary meaningfully for
            // this rule; just retire the ones whose scope closed.
            guards.retain(|g| depth_after >= g.depth);
            shard_guards.retain(|g| depth_after >= g.depth);
            depth = depth_after;
            continue;
        }

        // no-unwrap -------------------------------------------------------
        if !bin {
            for (pat, what) in UNWRAP_PATTERNS {
                if code.contains(pat) && !allows.allowed(i, "no-unwrap") {
                    push(
                        i,
                        "no-unwrap",
                        format!("{what}; return a typed error or annotate the invariant"),
                    );
                }
            }
        }

        // atomic-ordering --------------------------------------------------
        for pat in RMW_PATTERNS {
            if code.contains(pat) && !allows.allowed(i, "atomic-ordering") {
                let explicit =
                    (i..lines.len().min(i + 3)).any(|j| lines[j].code.contains("Ordering::"));
                if !explicit {
                    push(
                        i,
                        "atomic-ordering",
                        format!(
                            "atomic op {} without an explicit Ordering argument",
                            pat.trim_matches(['.', '('])
                        ),
                    );
                }
            }
        }
        if ORDERING_VARIANTS.iter().any(|v| code.contains(v))
            && !allows.allowed(i, "atomic-ordering")
        {
            let commented = (i.saturating_sub(3)..=i).any(|j| !lines[j].comment.trim().is_empty());
            if !commented {
                push(
                    i,
                    "atomic-ordering",
                    "Ordering use lacks a justification comment (same line or the 3 above)"
                        .to_string(),
                );
            }
        }

        // hotpath-no-hashmap ----------------------------------------------
        if hotpath {
            for (pat, what) in HOTPATH_PATTERNS {
                if code.contains(pat) && !allows.allowed(i, "hotpath-no-hashmap") {
                    push(
                        i,
                        "hotpath-no-hashmap",
                        format!(
                            "{what}; route through the scratch.rs arenas or flat sorted columns"
                        ),
                    );
                }
            }
        }

        // no-catch-unwind --------------------------------------------------
        if !unwind_exempt && code.contains("catch_unwind") && !allows.allowed(i, "no-catch-unwind")
        {
            push(
                i,
                "no-catch-unwind",
                "catch_unwind outside fault.rs; route panic isolation through fault::isolate"
                    .to_string(),
            );
        }

        // no-naked-instant -------------------------------------------------
        if !clock_exempt {
            for (pat, what) in CLOCK_PATTERNS {
                if code.contains(pat) && !allows.allowed(i, "no-naked-instant") {
                    push(
                        i,
                        "no-naked-instant",
                        format!("{what}; use bionav_core::trace::now_ns() or a trace span"),
                    );
                }
            }
        }

        // lock-across-solve ------------------------------------------------
        let solve_hit = SOLVE_PATTERNS.iter().find(|p| code.contains(**p));
        if let Some(pat) = solve_hit {
            // Live guard from an earlier line?
            if let Some(g) = guards.iter().find(|g| !g.allowed) {
                if !allows.allowed(i, "lock-across-solve") {
                    push(
                        i,
                        "lock-across-solve",
                        format!(
                            "solver call `{pat}` while lock guard `{}` (line {}) is held; \
                             drop the guard first or annotate the design",
                            g.name,
                            g.decl_line + 1
                        ),
                    );
                }
            } else if let Some(lock_pos) = code.find(".lock()") {
                // Same-line temporary guard: m.lock().solve_something(…).
                if code[lock_pos..].contains(pat) && !allows.allowed(i, "lock-across-solve") {
                    push(
                        i,
                        "lock-across-solve",
                        format!("solver call `{pat}` on a temporary lock guard held for the call"),
                    );
                }
            }
        }
        // no-cross-shard-lock ----------------------------------------------
        if shard_scope {
            let entry_hit = ENGINE_ENTRY_PATTERNS.iter().find(|p| code.contains(**p));
            if let Some(pat) = entry_hit {
                if let Some(g) = shard_guards.iter().find(|g| !g.allowed) {
                    if !allows.allowed(i, "no-cross-shard-lock") {
                        push(
                            i,
                            "no-cross-shard-lock",
                            format!(
                                "engine entry point `{pat}` while lock guard `{}` (line {}) is \
                                 held; shards must stay lock-independent — drop the guard first \
                                 or annotate the design",
                                g.name,
                                g.decl_line + 1
                            ),
                        );
                    }
                } else if let Some(lock_pos) = code.find(".lock()") {
                    // Same-line temporary guard: table.lock().with_session(…).
                    if code[lock_pos..].contains(pat) && !allows.allowed(i, "no-cross-shard-lock") {
                        push(
                            i,
                            "no-cross-shard-lock",
                            format!(
                                "engine entry point `{pat}` on a temporary lock guard held for \
                                 the call"
                            ),
                        );
                    }
                }
            }
        }
        // Guard bookkeeping, after violation checks so a let-line cannot
        // flag itself twice.
        if code.contains(".lock()") && code.contains("let ") {
            if let Some(name) = guard_name(code) {
                guards.push(Guard {
                    allowed: allows.allowed(i, "lock-across-solve"),
                    name: name.clone(),
                    depth: depth_after,
                    decl_line: i,
                });
                if shard_scope {
                    shard_guards.push(Guard {
                        allowed: allows.allowed(i, "no-cross-shard-lock"),
                        name,
                        depth: depth_after,
                        decl_line: i,
                    });
                }
            }
        }
        guards.retain(|g| depth_after >= g.depth && !code.contains(&format!("drop({})", g.name)));
        shard_guards
            .retain(|g| depth_after >= g.depth && !code.contains(&format!("drop({})", g.name)));
        depth = depth_after;
    }
    findings
}
