//! The workspace symbol model: an item-level view of the sources built
//! from the [`crate::tokens`] stream (no rustc, no syn — consistent with
//! the vendored-stub policy).
//!
//! The model records exactly what the `analyze` passes consume:
//!
//! * **enums with variants** — coverage families (`FailSite`, `Stage`,
//!   `EngineError`) and the protocol messages (`Request`, `Reply`);
//! * **fn items** with their impl context and body token ranges — the
//!   call-graph nodes;
//! * **impl blocks** with trait names — so a `Display` match arm is not
//!   mistaken for a construction site;
//! * **lock acquisition sites** (`.lock()`, `.read()`, `.write()`,
//!   `.get_or_init(…)`) with guard liveness — the lock-order graph input;
//! * **direct calls** — the call-graph edges;
//! * **path references** (`Qual::Name`) — variant match/construction/test
//!   mentions.
//!
//! Everything is an *approximation over tokens*, not a compiled crate:
//! guard liveness is block-scoped (a guard moved out of its block is
//! considered released), call resolution is by bare name, and lock
//! identity is `ImplType::receiver_field`. The analyses that consume the
//! model are designed so over-approximation surfaces as an annotatable
//! finding, never a silent pass.

use crate::lexer::{self, Line};
use crate::rules;
use crate::tokens::{self, TokKind, TokenFile};

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "loop", "let", "fn", "impl", "enum", "struct",
    "trait", "mod", "use", "pub", "where", "move", "else", "in", "as", "dyn", "ref", "mut",
    "break", "continue", "crate", "super",
];

/// The lock-acquisition method names the model recognizes. `Mutex`/
/// `RwLock`/`parking_lot` guards plus `OnceLock::get_or_init` (whose
/// closure runs under the cell's internal lock) — `FlightSlot` is an
/// `Arc<Mutex<…>>`, so its acquisitions are `.lock()` like any other.
const LOCK_METHODS: &[&str] = &["lock", "read", "write", "get_or_init"];

/// One tokenized, line-split source file of the model.
pub struct SourceFile {
    /// Workspace-relative path (virtual for fixtures).
    pub path: String,
    /// The lexer's per-line code/comment channels.
    pub lines: Vec<Line>,
    /// The token stream + delimiter index.
    pub tf: TokenFile,
    /// Per-line `#[cfg(test)]`-region flags (whole file for `tests/`).
    pub in_test: Vec<bool>,
    /// `// lint: allow(...)` annotations (shared grammar with the lints).
    pub allows: rules::Allows,
}

impl SourceFile {
    fn tok_in_test(&self, tok: usize) -> bool {
        let line = self.tf.toks[tok].line;
        self.in_test.get(line).copied().unwrap_or(false)
    }
}

/// An `enum` item and its variants.
pub struct EnumDef {
    /// Index into [`Model::files`].
    pub file: usize,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// The enum's name.
    pub name: String,
    /// `(variant name, 1-based line)` in declaration order.
    pub variants: Vec<(String, usize)>,
    /// Token range of the `{ … }` body (used to exclude the definition
    /// itself from reference counts).
    pub body: (usize, usize),
    /// Whether the definition sits in test code.
    pub in_test: bool,
}

/// A `fn` item.
pub struct FnDef {
    /// Index into [`Model::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` type name, if any.
    pub qual: Option<String>,
    /// Token indices of the body braces; `None` for bodyless decls.
    pub body: Option<(usize, usize)>,
    /// In test code: a `#[cfg(test)]` region, a `tests/` file, or an
    /// attribute mentioning `test`.
    pub in_test: bool,
}

/// An `impl` block (inherent or trait).
pub struct ImplDef {
    /// Index into [`Model::files`].
    pub file: usize,
    /// The implemented trait's name for `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// The `Self` type's name.
    pub type_name: String,
    /// Token indices of the body braces.
    pub body: (usize, usize),
}

/// One `Qual::Name` path pair.
pub struct PathRef {
    /// Index into [`Model::files`].
    pub file: usize,
    /// 1-based line.
    pub line: usize,
    /// Token index of the qualifier.
    pub tok: usize,
    /// The qualifier (`Request` of `Request::Open`).
    pub qual: String,
    /// The referred name (`Open` of `Request::Open`).
    pub name: String,
    /// Whether the reference sits in test code.
    pub in_test: bool,
}

/// One lock acquisition.
pub struct LockSite {
    /// Index into [`Model::files`].
    pub file: usize,
    /// 1-based line.
    pub line: usize,
    /// Token index of the receiver's head.
    pub tok: usize,
    /// Lock identity: `ImplType::receiver_field` (or `file-stem::field`
    /// outside any impl).
    pub lock: String,
    /// Index into [`Model::fns`] of the owning function, if any.
    pub fn_idx: Option<usize>,
    /// Guard liveness: the token index past which the guard is dead. For
    /// a temporary (no `let` binding) this equals `tok` — the guard lives
    /// for the statement only.
    pub held_until: usize,
    /// `// lint: allow(lock-order) — reason` on the acquisition line:
    /// the site is excluded from the lock-order graph.
    pub allowed: bool,
    /// Whether the site sits in test code.
    pub in_test: bool,
}

/// One direct call `callee(…)` / `.callee(…)` / `Type::callee(…)`.
pub struct CallSite {
    /// Index into [`Model::files`].
    pub file: usize,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// The callee's bare name.
    pub callee: String,
    /// Index into [`Model::fns`] of the calling function, if any.
    pub fn_idx: Option<usize>,
}

/// The assembled workspace model.
pub struct Model {
    /// Every tokenized source file.
    pub files: Vec<SourceFile>,
    /// Every `enum` item.
    pub enums: Vec<EnumDef>,
    /// Every `fn` item.
    pub fns: Vec<FnDef>,
    /// Every `impl` block.
    pub impls: Vec<ImplDef>,
    /// Every `Qual::Name` pair.
    pub path_refs: Vec<PathRef>,
    /// Every lock acquisition.
    pub locks: Vec<LockSite>,
    /// Every direct call.
    pub calls: Vec<CallSite>,
}

impl Model {
    /// Builds the model from `(path, source)` pairs. Paths drive test
    /// classification (`/tests/` files are wholly test code) and lock
    /// identity fallbacks; fixtures pass virtual paths.
    pub fn build(files: &[(String, String)]) -> Model {
        let mut model = Model {
            files: Vec::new(),
            enums: Vec::new(),
            fns: Vec::new(),
            impls: Vec::new(),
            path_refs: Vec::new(),
            locks: Vec::new(),
            calls: Vec::new(),
        };
        for (path, src) in files {
            let lines = lexer::split(src);
            let tf = tokens::tokenize(&lines);
            let all_test = path.contains("/tests/") || path.starts_with("tests/");
            let in_test = if all_test {
                vec![true; lines.len()]
            } else {
                rules::test_regions(&lines)
            };
            let allows = rules::collect_allows(&lines);
            model.files.push(SourceFile {
                path: path.clone(),
                lines,
                tf,
                in_test,
                allows,
            });
            let fi = model.files.len() - 1;
            model.scan_file(fi);
        }
        model
    }

    /// The enum named `name` defined in a file whose path contains
    /// `path_hint` (first match).
    pub fn enum_def(&self, name: &str, path_hint: &str) -> Option<&EnumDef> {
        self.enums
            .iter()
            .find(|e| e.name == name && self.files[e.file].path.contains(path_hint))
    }

    /// Every non-test function with this bare name.
    pub fn fns_named<'a>(&'a self, name: &str) -> impl Iterator<Item = (usize, &'a FnDef)> + 'a {
        let name = name.to_string();
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.name == name && !f.in_test)
    }

    /// References `Qual::Name` matching the filters. `path_hint` filters
    /// by file-path substring (empty = all files).
    pub fn refs<'a>(
        &'a self,
        qual: &str,
        name: &str,
        path_hint: &str,
    ) -> impl Iterator<Item = &'a PathRef> + 'a {
        let qual = qual.to_string();
        let name = name.to_string();
        let hint = path_hint.to_string();
        self.path_refs.iter().filter(move |r| {
            r.qual == qual && r.name == name && self.files[r.file].path.contains(&hint)
        })
    }

    /// The impl block whose body contains token `tok` of file `file`.
    pub fn impl_at(&self, file: usize, tok: usize) -> Option<&ImplDef> {
        self.impls
            .iter()
            .filter(|i| i.file == file && i.body.0 < tok && tok < i.body.1)
            .max_by_key(|i| i.body.0)
    }

    /// The fn whose body contains token `tok` of file `file`.
    pub fn fn_at(&self, file: usize, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.body.is_some_and(|(b, e)| b < tok && tok < e))
            .max_by_key(|(_, f)| f.body.map(|(b, _)| b))
            .map(|(i, _)| i)
    }

    // -- construction -------------------------------------------------------

    fn scan_file(&mut self, fi: usize) {
        self.scan_impls_enums_fns(fi);
        self.scan_paths(fi);
        self.scan_locks_and_calls(fi);
    }

    /// Skip a generic parameter list starting at `<`; returns the index
    /// past the matching `>`. `->` is one token, so angle depth is exact
    /// for well-formed items.
    fn skip_angles(tf: &TokenFile, mut i: usize) -> usize {
        let mut depth = 0usize;
        while i < tf.toks.len() {
            match tf.toks[i].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    fn scan_impls_enums_fns(&mut self, fi: usize) {
        let file = &self.files[fi];
        let tf = &file.tf;
        let n = tf.toks.len();
        let mut enums = Vec::new();
        let mut impls = Vec::new();
        let mut fns = Vec::new();
        for i in 0..n {
            let t = &tf.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "impl" => {
                    if let Some(d) = Self::parse_impl(tf, i, fi) {
                        impls.push(d);
                    }
                }
                "enum" => {
                    if let Some(d) = Self::parse_enum(file, i, fi) {
                        enums.push(d);
                    }
                }
                "fn" => {
                    if let Some(d) = Self::parse_fn(file, i, fi) {
                        fns.push(d);
                    }
                }
                _ => {}
            }
        }
        // Attach impl context to fns (impls were collected in the same
        // pass, order-independent thanks to token ranges).
        for f in &mut fns {
            if let Some((b, _)) = f.body {
                f.qual = impls
                    .iter()
                    .filter(|i| i.body.0 < b && b < i.body.1)
                    .max_by_key(|i| i.body.0)
                    .map(|i| i.type_name.clone());
            }
        }
        self.enums.extend(enums);
        self.impls.extend(impls);
        self.fns.extend(fns);
    }

    fn parse_impl(tf: &TokenFile, at: usize, fi: usize) -> Option<ImplDef> {
        // impl[<…>] Trait for Type { … }   |   impl[<…>] Type[<…>] { … }
        let mut i = at + 1;
        if tf.toks.get(i)?.is_punct("<") {
            i = Self::skip_angles(tf, i);
        }
        // Last path segment before `for` is the trait; last segment of the
        // type head after `for` (or of the whole header for inherent
        // impls) is the Self type. Idents after `where` are bounds, not
        // names.
        let mut pre_for: Option<String> = None;
        let mut post_for: Option<String> = None;
        let mut saw_for = false;
        let mut in_where = false;
        while i < tf.toks.len() {
            let t = &tf.toks[i];
            if t.is_punct("{") {
                let close = tf.match_of(i)?;
                let type_name = if saw_for { post_for? } else { pre_for.clone()? };
                return Some(ImplDef {
                    file: fi,
                    trait_name: if saw_for { pre_for } else { None },
                    type_name,
                    body: (i, close),
                });
            }
            if t.is_punct(";") {
                return None;
            }
            if t.is_ident("for") {
                saw_for = true;
            } else if t.is_ident("where") {
                in_where = true;
            } else if t.kind == TokKind::Ident && !t.is_ident("dyn") && !in_where {
                if saw_for {
                    post_for = Some(t.text.clone());
                } else {
                    pre_for = Some(t.text.clone());
                }
            }
            if t.is_punct("<") {
                i = Self::skip_angles(tf, i);
                continue;
            }
            i += 1;
        }
        None
    }

    fn parse_enum(file: &SourceFile, at: usize, fi: usize) -> Option<EnumDef> {
        let tf = &file.tf;
        let name_tok = tf.toks.get(at + 1)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        // Find the body brace (skip generics / where clause).
        let mut i = at + 2;
        while i < tf.toks.len() && !tf.toks[i].is_punct("{") {
            if tf.toks[i].is_punct(";") {
                return None;
            }
            if tf.toks[i].is_punct("<") {
                i = Self::skip_angles(tf, i);
                continue;
            }
            i += 1;
        }
        let open = i;
        let close = tf.match_of(open)?;
        let mut variants = Vec::new();
        let mut j = open + 1;
        while j < close {
            let t = &tf.toks[j];
            // Skip attributes on the variant.
            if t.is_punct("#") {
                if tf.toks.get(j + 1).is_some_and(|n| n.is_punct("[")) {
                    j = tf.match_of(j + 1).map(|c| c + 1).unwrap_or(j + 2);
                    continue;
                }
                j += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                variants.push((t.text.clone(), t.line + 1));
                // Skip to the variant's trailing comma at body depth:
                // jump over payload groups and discriminant expressions.
                while j < close && !tf.toks[j].is_punct(",") {
                    if matches!(tf.toks[j].text.as_str(), "(" | "[" | "{")
                        && tf.toks[j].kind == TokKind::Punct
                    {
                        j = tf.match_of(j).unwrap_or(j);
                    }
                    j += 1;
                }
            }
            j += 1;
        }
        Some(EnumDef {
            file: fi,
            line: tf.toks[at].line + 1,
            name: name_tok.text.clone(),
            variants,
            body: (open, close),
            in_test: file.in_test.get(tf.toks[at].line).copied().unwrap_or(false),
        })
    }

    fn parse_fn(file: &SourceFile, at: usize, fi: usize) -> Option<FnDef> {
        let tf = &file.tf;
        let name_tok = tf.toks.get(at + 1)?;
        if name_tok.kind != TokKind::Ident {
            return None;
        }
        let mut i = at + 2;
        if tf.toks.get(i).is_some_and(|t| t.is_punct("<")) {
            i = Self::skip_angles(tf, i);
        }
        if !tf.toks.get(i).is_some_and(|t| t.is_punct("(")) {
            return None;
        }
        let args_close = tf.match_of(i)?;
        // Scan to the body `{` or a bodyless `;`, jumping over parenthesized
        // return types and skipping generics in where clauses.
        let mut j = args_close + 1;
        let body = loop {
            let t = tf.toks.get(j)?;
            if t.is_punct("{") {
                break Some((j, tf.match_of(j)?));
            }
            if t.is_punct(";") {
                break None;
            }
            if t.is_punct("(") || t.is_punct("[") {
                j = tf.match_of(j)? + 1;
                continue;
            }
            if t.is_punct("<") {
                j = Self::skip_angles(tf, j);
                continue;
            }
            j += 1;
        };
        let line_idx = tf.toks[at].line;
        let in_region = file.in_test.get(line_idx).copied().unwrap_or(false);
        Some(FnDef {
            file: fi,
            line: line_idx + 1,
            name: name_tok.text.clone(),
            qual: None,
            body,
            in_test: in_region || Self::has_test_attr(file, at),
        })
    }

    /// Whether the item at token `at` carries an attribute mentioning
    /// `test` (`#[test]`, `#[cfg(test)]`, …) — `not(test)` excluded.
    fn has_test_attr(file: &SourceFile, at: usize) -> bool {
        let tf = &file.tf;
        let mut j = at;
        // Walk back over visibility/safety qualifiers to the attributes.
        while j > 0 {
            let prev = &tf.toks[j - 1];
            if prev.kind == TokKind::Ident
                && matches!(prev.text.as_str(), "pub" | "unsafe" | "async" | "const")
            {
                j -= 1;
                continue;
            }
            if prev.is_punct(")") {
                // pub(crate)
                if let Some(open) = tf.match_of(j - 1) {
                    j = open;
                    continue;
                }
            }
            if prev.is_punct("]") {
                let Some(open) = tf.match_of(j - 1) else {
                    return false;
                };
                if open > 0 && tf.toks[open - 1].is_punct("#") {
                    let mut saw_not = false;
                    for k in open + 1..j - 1 {
                        let t = &tf.toks[k];
                        if t.is_ident("not") {
                            saw_not = true;
                        }
                        if t.is_ident("test") && !saw_not {
                            return true;
                        }
                    }
                    j = open - 1;
                    continue;
                }
                return false;
            }
            return false;
        }
        false
    }

    fn scan_paths(&mut self, fi: usize) {
        let file = &self.files[fi];
        let tf = &file.tf;
        let mut refs = Vec::new();
        for i in 0..tf.toks.len().saturating_sub(2) {
            if tf.toks[i].kind == TokKind::Ident
                && tf.toks[i + 1].is_punct("::")
                && tf.toks[i + 2].kind == TokKind::Ident
            {
                refs.push(PathRef {
                    file: fi,
                    line: tf.toks[i].line + 1,
                    tok: i,
                    qual: tf.toks[i].text.clone(),
                    name: tf.toks[i + 2].text.clone(),
                    in_test: file.tok_in_test(i),
                });
            }
        }
        self.path_refs.extend(refs);
    }

    fn scan_locks_and_calls(&mut self, fi: usize) {
        let file = &self.files[fi];
        let tf = &file.tf;
        let n = tf.toks.len();
        let mut locks = Vec::new();
        let mut calls = Vec::new();
        for i in 0..n {
            let t = &tf.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let followed_by_paren = tf.toks.get(i + 1).is_some_and(|x| x.is_punct("("));
            if !followed_by_paren {
                continue;
            }
            let is_def = i > 0 && tf.toks[i - 1].is_ident("fn");
            let is_method = i > 0 && tf.toks[i - 1].is_punct(".");
            if is_def || CALL_KEYWORDS.contains(&t.text.as_str()) {
                continue;
            }
            if is_method && LOCK_METHODS.contains(&t.text.as_str()) {
                if let Some(site) = Self::lock_site(file, fi, i) {
                    locks.push(site);
                }
                continue;
            }
            calls.push(CallSite {
                file: fi,
                tok: i,
                callee: t.text.clone(),
                fn_idx: None,
            });
        }
        self.locks.extend(locks);
        self.calls.extend(calls);
        // Resolve owners now that fns for this file exist.
        for idx in 0..self.locks.len() {
            if self.locks[idx].file == fi && self.locks[idx].fn_idx.is_none() {
                self.locks[idx].fn_idx = self.fn_at(fi, self.locks[idx].tok);
            }
        }
        for idx in 0..self.calls.len() {
            if self.calls[idx].file == fi && self.calls[idx].fn_idx.is_none() {
                self.calls[idx].fn_idx = self.fn_at(fi, self.calls[idx].tok);
            }
        }
    }

    /// Builds a [`LockSite`] for the lock method at token `at` (the
    /// method-name token; `at-1` is the `.`).
    fn lock_site(file: &SourceFile, fi: usize, at: usize) -> Option<LockSite> {
        let tf = &file.tf;
        // Receiver field: nearest ident before the `.`, jumping over index
        // / call groups (`self.tops[k].sets` → `sets`).
        let mut r = at - 1; // the `.`
        let field = loop {
            if r == 0 {
                return None;
            }
            r -= 1;
            let t = &tf.toks[r];
            if t.kind == TokKind::Ident {
                break t.text.clone();
            }
            if t.is_punct(")") || t.is_punct("]") {
                r = tf.match_of(r)?;
                continue;
            }
            if t.is_punct(".") || t.is_punct("::") {
                continue;
            }
            return None;
        };
        let line_idx = tf.toks[at].line;
        let held_until = Self::guard_extent(tf, r, at);
        Some(LockSite {
            file: fi,
            line: line_idx + 1,
            tok: at,
            lock: field,
            fn_idx: None,
            held_until,
            allowed: file.allows.allowed(line_idx, "lock-order"),
            in_test: file.tok_in_test(at),
        })
    }

    /// Guard liveness: if the acquisition is `let`-bound (directly, or as
    /// the tail expression of a `let x = { …; recv.lock() };` block —
    /// repeatedly, for nested block values), the guard lives to the end of
    /// the block holding the `let` — or to a `drop(name)` before that.
    /// Otherwise it is a temporary, dead at the end of its own statement
    /// (`held_until == acquisition token`).
    fn guard_extent(tf: &TokenFile, recv_head: usize, at: usize) -> usize {
        let mut probe = recv_head;
        // End of the acquisition expression: the lock call's close paren.
        let mut expr_end = at;
        if tf.toks.get(at + 1).is_some_and(|t| t.is_punct("(")) {
            if let Some(close) = tf.match_of(at + 1) {
                expr_end = close;
            }
        }
        loop {
            if let Some(let_idx) = Self::stmt_let(tf, probe) {
                let end = tf.block_end(let_idx).unwrap_or(tf.toks.len());
                // `drop(name)` inside the scope releases early.
                if let Some(name) = Self::binding_name(tf, let_idx) {
                    for k in at..end {
                        if tf.toks[k].is_ident("drop")
                            && tf.toks.get(k + 1).is_some_and(|t| t.is_punct("("))
                            && tf.toks.get(k + 2).is_some_and(|t| t.is_ident(&name))
                        {
                            return k;
                        }
                    }
                }
                return end;
            }
            // Not directly bound. If the expression is a block's tail
            // (`{ …; recv.lock() }`), the value — and the guard — flows
            // one block out; look for a binding there.
            let close = expr_end + 1;
            if !tf.toks.get(close).is_some_and(|t| t.is_punct("}")) {
                return at;
            }
            let Some(open) = tf.match_of(close) else {
                return at;
            };
            if open == 0 || !tf.toks[open - 1].is_punct("=") {
                return at;
            }
            probe = open - 1;
            expr_end = close;
        }
    }

    /// Scans backwards from `from` for the statement's `let`, stopping at
    /// statement/block boundaries.
    fn stmt_let(tf: &TokenFile, from: usize) -> Option<usize> {
        let mut j = from;
        loop {
            let t = &tf.toks[j];
            if t.is_ident("let") {
                return Some(j);
            }
            if t.is_punct(";") || t.is_punct("}") || t.is_punct("{") {
                return None;
            }
            if t.is_punct(")") || t.is_punct("]") {
                if let Some(open) = tf.match_of(j) {
                    j = open;
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
    }

    fn binding_name(tf: &TokenFile, let_idx: usize) -> Option<String> {
        let mut j = let_idx + 1;
        while j < tf.toks.len() {
            let t = &tf.toks[j];
            if t.is_ident("mut") {
                j += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                return Some(t.text.clone());
            }
            return None;
        }
        None
    }
}

/// Qualifies a lock's receiver field by its impl context: the node name
/// used in the lock-order graph.
pub fn lock_node(model: &Model, site: &LockSite) -> String {
    let qual = model
        .impl_at(site.file, site.tok)
        .map(|i| i.type_name.clone())
        .unwrap_or_else(|| {
            let path = &model.files[site.file].path;
            path.rsplit('/')
                .next()
                .unwrap_or(path)
                .trim_end_matches(".rs")
                .to_string()
        });
    format!("{qual}::{}", site.lock)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> Model {
        Model::build(&[("crates/core/src/x.rs".to_string(), src.to_string())])
    }

    #[test]
    fn enums_and_variants_parse() {
        let m = model(
            "pub enum Request {\n\
                 Open { query: String },\n\
                 #[allow(dead_code)]\n\
                 Expand(u64, u32),\n\
                 Stats,\n\
             }\n",
        );
        let e = &m.enums[0];
        assert_eq!(e.name, "Request");
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Open", "Expand", "Stats"]);
    }

    #[test]
    fn fns_get_impl_context_and_test_flags() {
        let m = model(
            "impl Engine {\n\
                 fn probe(&self) -> u32 { 1 }\n\
             }\n\
             impl std::fmt::Display for EngineError {\n\
                 fn fmt(&self, f: &mut F) -> R { write(f) }\n\
             }\n\
             #[test]\n\
             fn check_probe() { assert!(true); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
             }\n",
        );
        let probe = m.fns.iter().find(|f| f.name == "probe").unwrap();
        assert_eq!(probe.qual.as_deref(), Some("Engine"));
        assert!(!probe.in_test);
        let fmt = m.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(fmt.qual.as_deref(), Some("EngineError"));
        let imp = m.impl_at(fmt.file, fmt.body.unwrap().0 + 1).unwrap();
        assert_eq!(imp.trait_name.as_deref(), Some("Display"));
        assert!(
            m.fns
                .iter()
                .find(|f| f.name == "check_probe")
                .unwrap()
                .in_test
        );
        assert!(m.fns.iter().find(|f| f.name == "helper").unwrap().in_test);
    }

    #[test]
    fn lock_sites_track_guard_liveness() {
        let m = model(
            "impl Engine {\n\
                 fn a(&self) {\n\
                     let g = self.cache.lock();\n\
                     self.flights.lock().clear();\n\
                     drop(g);\n\
                     self.sessions.lock().len();\n\
                 }\n\
                 fn b(&self) {\n\
                     let t = {\n\
                         let _sp = span();\n\
                         self.sessions.lock()\n\
                     };\n\
                     t.len();\n\
                 }\n\
             }\n",
        );
        let cache = m.locks.iter().find(|l| l.lock == "cache").unwrap();
        let flights = m.locks.iter().find(|l| l.lock == "flights").unwrap();
        // cache is let-bound: held past the flights acquisition, released
        // at drop(g) before the sessions acquisition.
        assert!(cache.held_until > flights.tok);
        let sess_a = m
            .locks
            .iter()
            .filter(|l| l.lock == "sessions")
            .find(|l| m.fns[l.fn_idx.unwrap()].name == "a")
            .unwrap();
        assert!(cache.held_until < sess_a.tok, "drop(g) releases the guard");
        // flights is a temporary: dead at its own statement.
        assert_eq!(flights.held_until, flights.tok);
        // b: the block-value binding holds the guard past the block.
        let sess_b = m
            .locks
            .iter()
            .filter(|l| l.lock == "sessions")
            .find(|l| m.fns[l.fn_idx.unwrap()].name == "b")
            .unwrap();
        assert!(
            sess_b.held_until > sess_b.tok + 4,
            "held into the outer block"
        );
    }

    #[test]
    fn calls_and_paths_are_collected() {
        let m = model(
            "fn outer() {\n\
                 helper(1);\n\
                 self.method(2);\n\
                 let x = EngineError::UnknownSession(id);\n\
                 mac!(ignored);\n\
             }\n",
        );
        let callees: Vec<&str> = m.calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(callees.contains(&"helper"));
        assert!(callees.contains(&"method"));
        assert!(!callees.contains(&"mac"));
        assert!(m
            .path_refs
            .iter()
            .any(|r| r.qual == "EngineError" && r.name == "UnknownSession"));
    }
}
