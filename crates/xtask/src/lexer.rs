//! A line-oriented lexical splitter for Rust source.
//!
//! [`split`] separates every physical line into its *code* text and its
//! *comment* text, so rule patterns never match inside comments, string
//! literals, char literals, or raw strings (their contents are blanked from
//! the code channel while the delimiting quotes are kept). Handles nested
//! block comments, multi-line strings, `r#".."#` raw strings, byte strings,
//! and the lifetime-vs-char-literal ambiguity of `'`.

/// One physical source line split into code and comment channels.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// The line's code with literal contents blanked.
    pub code: String,
    /// The line's comment text (line, block, and doc comments merged),
    /// without the comment markers.
    pub comment: String,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

enum St {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
}

/// Split `src` into per-line code/comment channels. The number of returned
/// lines equals the number of physical lines in `src`.
pub fn split(src: &str) -> Vec<Line> {
    let cs: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut st = St::Code;
    let mut prev = '\0'; // last code char emitted on this line
    let mut i = 0usize;
    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            if matches!(st, St::LineComment) {
                st = St::Code;
            }
            lines.push(std::mem::take(&mut cur));
            prev = '\0';
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == '/' && cs.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    i += 2;
                    // Skip doc-comment markers so `///` text parses cleanly.
                    while cs.get(i) == Some(&'/') || cs.get(i) == Some(&'!') {
                        i += 1;
                    }
                } else if c == '/' && cs.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    prev = '"';
                    st = St::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !is_ident(prev) {
                    // Possible raw / byte string head: r", r#", b", br#", …
                    let mut j = i + 1;
                    if c == 'b' && cs.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while cs.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    let is_raw = (c == 'r' || cs.get(i + 1) == Some(&'r')) && hashes > 0
                        || (c == 'r' && cs.get(j) == Some(&'"'))
                        || (c == 'b' && cs.get(i + 1) == Some(&'r') && cs.get(j) == Some(&'"'));
                    if is_raw && cs.get(j) == Some(&'"') {
                        cur.code.push('"');
                        prev = '"';
                        st = St::RawStr(hashes);
                        i = j + 1;
                    } else if c == 'b' && cs.get(i + 1) == Some(&'"') {
                        cur.code.push('"');
                        prev = '"';
                        st = St::Str;
                        i += 2;
                    } else {
                        cur.code.push(c);
                        prev = c;
                        i += 1;
                    }
                } else if c == '\'' {
                    // Lifetime (`'a`) or char literal (`'x'`, `'\n'`)?
                    let n1 = cs.get(i + 1).copied().unwrap_or('\0');
                    let n2 = cs.get(i + 2).copied().unwrap_or('\0');
                    if n1 == '\\' || (!is_ident(n1) && n1 != '\0') || (is_ident(n1) && n2 == '\'') {
                        // Char literal: blank the contents, keep the quotes.
                        cur.code.push('\'');
                        i += 1;
                        while i < cs.len() && cs[i] != '\'' && cs[i] != '\n' {
                            if cs[i] == '\\' {
                                i += 1; // skip escaped char
                            }
                            i += 1;
                        }
                        if cs.get(i) == Some(&'\'') {
                            cur.code.push('\'');
                            i += 1;
                        }
                        prev = '\'';
                    } else {
                        // Lifetime: emit the tick, let the ident follow.
                        cur.code.push('\'');
                        prev = '\'';
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    prev = c;
                    i += 1;
                }
            }
            St::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && cs.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        st = St::Code;
                    } else {
                        st = St::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && cs.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (may be a quote)
                } else if c == '"' {
                    cur.code.push('"');
                    prev = '"';
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1; // blank string contents
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let closes = (1..=hashes).all(|k| cs.get(i + k) == Some(&'#')) || hashes == 0;
                    if closes {
                        cur.code.push('"');
                        prev = '"';
                        st = St::Code;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1; // blank raw-string contents
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated() {
        let src =
            "let x = \"a.unwrap() inside\"; // trailing note\nlet y = 1; /* block */ let z = 2;\n";
        let lines = split(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("trailing note"));
        assert!(lines[1].code.contains("let z = 2"));
        assert!(lines[1].comment.contains("block"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let p = r#\"panic!(\"boom\")\"#;\nlet q = r\"x.unwrap()\";\n";
        let lines = split(src);
        assert!(!lines[0].code.contains("panic"));
        assert!(!lines[1].code.contains("unwrap"));
    }

    #[test]
    fn lifetimes_survive_and_char_literals_blank() {
        let src = "fn f<'a>(s: &'a str) -> char { '\\'' }\nlet c = 'x'; let d = '\"';\n";
        let lines = split(src);
        assert!(lines[0].code.contains("fn f<'a>(s: &'a str)"));
        // The doubled quote of '"' must not open a string state.
        assert!(lines[1].code.contains("let d ="));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let real = 1;\n";
        let lines = split(src);
        assert!(lines[0].code.contains("let real = 1"));
        assert!(lines[0].comment.contains("inner"));
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let src = "let s = \"line one\nline .unwrap() two\";\nlet t = 3;\n";
        let lines = split(src);
        assert_eq!(lines.len(), 3);
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[2].code.contains("let t = 3"));
    }

    #[test]
    fn doc_comment_markers_are_stripped() {
        let src = "/// uses x.unwrap() for brevity\n//! module doc\nlet a = 1;\n";
        let lines = split(src);
        assert!(lines[0].code.is_empty());
        assert!(lines[0].comment.contains("unwrap"));
        assert!(lines[1].comment.contains("module doc"));
        assert!(lines[2].code.contains("let a = 1"));
    }
}
