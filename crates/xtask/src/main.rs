//! `cargo xtask` — the BioNav analysis toolchain CLI.
//!
//! Subcommands:
//!
//! * `lint [--json]` — run the custom lint pass over the workspace and exit
//!   non-zero on any finding.
//! * `rules [--json]` — print the machine-readable rule table.
//! * `analyze [--json]` — run the three workspace graph analyses
//!   (lock-order, proto-drift, coverage) and exit non-zero on any finding;
//!   `--json` emits `{findings, matrix}` for the CI artifact.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::analyze::{analyze_files, ANALYSES};
use xtask::{analysis_files, json_escape, scan_workspace, RULES};

fn usage() -> &'static str {
    "usage: cargo xtask <lint|rules|analyze> [--json]\n\
     \n\
     lint    [--json]   scan workspace sources against the project rule table\n\
     rules   [--json]   print the rule table (markdown by default)\n\
     analyze [--json]   run the workspace graph analyses (lock-order,\n\
                        proto-drift, coverage) and emit the coverage matrix"
}

/// The workspace root: this file lives at `crates/xtask/src/main.rs`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn cmd_lint(json: bool) -> ExitCode {
    let root = workspace_root();
    let mut findings = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    if json {
        let mut out = String::from("[");
        for (i, f) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.path),
                f.line,
                json_escape(f.rule),
                json_escape(&f.message)
            ));
        }
        out.push(']');
        println!("{out}");
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            println!("xtask lint: clean ({} rules)", RULES.len());
        } else {
            eprintln!("xtask lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_rules(json: bool) {
    if json {
        let mut out = String::from("[");
        for (i, r) in RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":\"{}\",\"summary\":\"{}\",\"scope\":\"{}\",\"rationale\":\"{}\"}}",
                json_escape(r.id),
                json_escape(r.summary),
                json_escape(r.scope),
                json_escape(r.rationale)
            ));
        }
        out.push(']');
        println!("{out}");
    } else {
        println!("| rule | scope | summary |");
        println!("|------|-------|---------|");
        for r in RULES.iter() {
            println!("| `{}` | {} | {} |", r.id, r.scope, r.summary);
        }
        println!();
        for r in RULES.iter() {
            println!("### `{}`\n\n{}\n", r.id, r.rationale);
        }
    }
}

fn cmd_analyze(json: bool) -> ExitCode {
    let root = workspace_root();
    let files = match analysis_files(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask analyze: failed to read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let report = analyze_files(&files);
    if json {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in report.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.path),
                f.line,
                json_escape(f.rule),
                json_escape(&f.message)
            ));
        }
        out.push_str("],\"matrix\":");
        out.push_str(&report.matrix.to_json());
        out.push('}');
        println!("{out}");
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        if report.findings.is_empty() {
            let variants: usize = report
                .matrix
                .families
                .iter()
                .map(|fam| fam.rows.len())
                .sum();
            println!(
                "xtask analyze: clean ({} analyses, {} files, {variants} variants covered)",
                ANALYSES.len(),
                files.len()
            );
        } else {
            eprintln!("xtask analyze: {} finding(s)", report.findings.len());
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(json),
        Some("analyze") => cmd_analyze(json),
        Some("rules") => {
            cmd_rules(json);
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}
