//! The ten Table I query specifications.
//!
//! Numbers marked *(reconstructed)* in `EXPERIMENTS.md` were unreadable in
//! the source scan and are plausible values within the reported ranges; the
//! anchors the paper states explicitly — `prothymosin` returns 313
//! citations over a 3,940-node navigation tree with 30,895 attached
//! citations counting duplicates, `vardenafil` returns 486, the
//! `ice nucleation` target has `|L(n)| = 2` — are honored exactly.

use serde::{Deserialize, Serialize};

/// The navigation target of one workload query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetSpec {
    /// The MeSH concept label the oracle user navigates to.
    pub label: String,
    /// Depth of the target in the hierarchy (Table I "MeSH level").
    pub level: u16,
    /// `|L(n)|`: query-result citations attached directly to the target.
    pub attached: u32,
    /// `|LT(n)|`: the concept's citation count in all of MEDLINE.
    pub global_count: u64,
}

/// One workload query: keywords, calibration targets, topical shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Short identifier (used by the bench harness CLI).
    pub name: String,
    /// The keyword query as typed into PubMed.
    pub keywords: String,
    /// Number of citations the query returns.
    pub citations: u32,
    /// How many topical clusters the literature concentrates on
    /// (`prothymosin` spans cancer, proliferation, apoptosis, chromatin,
    /// transcription and immunity; `vardenafil` is mostly one topic).
    pub clusters: u16,
    /// Mean concepts indexed per citation (PubMed-style wide indexing; the
    /// paper reports ~90 on average — topical breadth scales it per query).
    pub mean_indexed: u16,
    /// The designated navigation target.
    pub target: TargetSpec,
}

/// The ten queries of Table I.
pub fn paper_queries() -> Vec<QuerySpec> {
    #[allow(clippy::too_many_arguments)] // ten parallel Table I columns
    fn q(
        name: &str,
        keywords: &str,
        citations: u32,
        clusters: u16,
        mean_indexed: u16,
        target_label: &str,
        level: u16,
        attached: u32,
        global_count: u64,
    ) -> QuerySpec {
        QuerySpec {
            name: name.to_string(),
            keywords: keywords.to_string(),
            citations,
            clusters,
            mean_indexed,
            target: TargetSpec {
                label: target_label.to_string(),
                level,
                attached,
                global_count,
            },
        }
    }

    vec![
        q(
            "lbetat2",
            "LbetaT2",
            33,
            3,
            60,
            "Mice, Transgenic",
            3,
            12,
            98_000,
        ),
        q(
            "melibiose-permease",
            "melibiose permease",
            67,
            3,
            55,
            "Substrate Specificity",
            3,
            25,
            134_000,
        ),
        q(
            "varenicline",
            "varenicline",
            131,
            3,
            50,
            "Nicotinic Agonists",
            4,
            44,
            12_400,
        ),
        q(
            "nai-symporter",
            "Na+/I- symporter",
            162,
            4,
            55,
            "Perchloric Acid",
            5,
            18,
            3_100,
        ),
        q(
            "prothymosin",
            "prothymosin",
            313,
            6,
            90,
            "Histones",
            4,
            48,
            21_500,
        ),
        q(
            "ice-nucleation",
            "ice nucleation",
            252,
            4,
            60,
            "Plants, Genetically Modified",
            2,
            2,
            8_600,
        ),
        q(
            "vardenafil",
            "vardenafil",
            486,
            2,
            65,
            "Phosphodiesterase Inhibitors",
            4,
            92,
            17_800,
        ),
        q(
            "dyslexia-genetics",
            "dyslexia genetics",
            452,
            4,
            70,
            "Polymorphism, Single Nucleotide",
            5,
            61,
            54_000,
        ),
        q(
            "syntaxin-1a",
            "syntaxin 1A",
            82,
            3,
            55,
            "GABA Plasma Membrane Transport Proteins",
            6,
            9,
            1_400,
        ),
        q(
            "follistatin",
            "follistatin",
            1126,
            4,
            70,
            "Follicle Stimulating Hormone",
            4,
            152,
            38_500,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_ten_queries_with_unique_names() {
        let qs = paper_queries();
        assert_eq!(qs.len(), 10);
        let mut names: Vec<&str> = qs.iter().map(|q| q.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn paper_anchor_values_hold() {
        let qs = paper_queries();
        let by = |n: &str| qs.iter().find(|q| q.name == n).unwrap();
        assert_eq!(by("prothymosin").citations, 313);
        assert_eq!(by("vardenafil").citations, 486);
        assert_eq!(by("ice-nucleation").target.attached, 2);
        assert_eq!(by("ice-nucleation").target.level, 2);
        assert!(by("follistatin").citations > 1_000);
        assert_eq!(by("lbetat2").citations, 33);
    }

    #[test]
    fn targets_are_plausible() {
        for q in paper_queries() {
            assert!(q.target.level >= 2 && q.target.level <= 8, "{}", q.name);
            assert!(q.target.attached <= q.citations, "{}", q.name);
            assert!(
                q.target.global_count >= 1_000 || q.target.attached < 20,
                "{}",
                q.name
            );
            assert!(q.clusters >= 1);
            assert!(q.mean_indexed >= 20);
        }
    }

    #[test]
    fn serde_round_trip() {
        let qs = paper_queries();
        let json = serde_json::to_string(&qs).unwrap();
        let back: Vec<QuerySpec> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, qs);
    }
}
