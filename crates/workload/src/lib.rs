//! # bionav-workload — the ICDE 2009 evaluation workload
//!
//! The paper evaluates BioNav on ten real PubMed queries (Table I), chosen
//! with biomedical collaborators to span broad exploratory searches
//! (`prothymosin`, spread over many research fields) and narrowly targeted
//! ones (`vardenafil`), with a designated *target concept* per query that an
//! oracle user navigates to.
//!
//! MEDLINE and the Entrez utilities are not available offline, so this
//! crate synthesizes, deterministically, a corpus whose *statistical
//! surface* matches Table I: per-query result sizes, topical clustering
//! (citations concentrate on a few hot research areas plus a long tail),
//! wide PubMed-style concept indexing (~tens of concepts per citation,
//! ancestors included — the source of the paper's duplicate counts), pinned
//! target concepts at the right MeSH levels with the right attached/global
//! citation counts.
//!
//! * [`spec`] — the ten query specifications, with the calibration targets
//!   taken (or, where the scan is garbled, plausibly reconstructed — see
//!   `EXPERIMENTS.md`) from Table I;
//! * [`build`] — turns specifications into a hierarchy + citation store +
//!   keyword index ([`Workload`]), at full or reduced scale;
//! * [`eval`] — runs the §VIII evaluation: static vs BioNav navigation
//!   cost (Figs 8–9), expansion timings (Figs 10–11), Table I statistics;
//! * [`openloop`] — Poisson/Zipf/Markov open-loop arrival schedules for
//!   the serving-tier overload experiments (coordinated-omission-safe).
//!
//! ```
//! use bionav_workload::{Workload, WorkloadConfig};
//!
//! // A reduced-scale realization of all ten Table I queries.
//! let workload = Workload::build(&WorkloadConfig::test_size());
//! let run = workload.run_query("prothymosin");
//! assert!(run.result_size > 0);
//! assert_eq!(run.nav.label(run.target), "Histones"); // the pinned target
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
pub mod eval;
pub mod openloop;
pub mod spec;

pub use build::{PreparedQuery, QueryRun, Workload, WorkloadConfig};
pub use eval::{evaluate, evaluate_query, QueryEval, Table1Row};
pub use openloop::{
    served_p99_us, shed_fraction, OpenLoopConfig, SessionOp, SessionOutcome, SessionPlan,
    SessionStep,
};
pub use spec::{paper_queries, QuerySpec, TargetSpec};
