//! Workload construction: turns [`QuerySpec`]s into a concrete hierarchy,
//! citation store and keyword index whose statistical surface matches
//! Table I.
//!
//! lint: allow-file(no-unwrap) — offline fixture builder: every expect()
//! asserts a property the generator itself just established; failing fast
//! with the message is the desired behavior for a corrupt workload.
//!
//! For every query the generator:
//!
//! 1. pins the *target concept*: a hierarchy descriptor at the specified
//!    MeSH level is renamed to the paper's target label;
//! 2. picks *topical clusters* — subtree regions the query's literature
//!    concentrates on (the first cluster contains the target);
//! 3. synthesizes the citations: each draws a focus concept from a
//!    Zipf-weighted cluster, is indexed with the focus, most of its
//!    ancestors (general concepts like *Proteins* accumulate near-total
//!    attachment counts, exactly as in the paper's Fig 1), occasionally a
//!    second cluster (creating the cross-branch duplicates the cost model
//!    feeds on) and a long tail of scattered concepts from a per-query
//!    pool sized to hit the Table I navigation-tree sizes;
//! 4. force-attaches the target to exactly `|L(n)|` citations and installs
//!    the MEDLINE-scale global counts `|LT(n)|` used by the EXPLORE
//!    probability.
//!
//! Everything is deterministic in [`WorkloadConfig::seed`].

use std::collections::HashSet;

use bionav_core::{NavNodeId, NavigationTree};
use bionav_medline::{tokenize, Citation, CitationId, CitationStore, InvertedIndex};
use bionav_mesh::synth::{generate_descriptors, SynthConfig};
use bionav_mesh::{ConceptHierarchy, DescriptorId, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::spec::{paper_queries, QuerySpec};

/// Scale and seeding knobs for workload construction.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Master seed; everything is deterministic in it.
    pub seed: u64,
    /// Approximate hierarchy size (MeSH 2009: ~48,000).
    pub hierarchy_size: usize,
    /// Maximum hierarchy depth.
    pub max_depth: u32,
    /// Citation-count multiplier applied to every spec (1.0 = paper scale).
    pub scale: f64,
    /// Derive the citation↔concept associations through the §VII crawl
    /// (phrase-query every concept label, denormalize) instead of using
    /// the generator's ground truth — the deployed system's data path.
    /// Target `|LT(n)|` values are re-installed afterwards so Table I
    /// still holds.
    pub crawl_associations: bool,
    /// The queries to realize.
    pub queries: Vec<QuerySpec>,
}

impl WorkloadConfig {
    /// Paper-scale configuration: 48k-node hierarchy, full result sizes.
    pub fn full() -> Self {
        WorkloadConfig {
            seed: 2014,
            hierarchy_size: 48_000,
            max_depth: 11,
            scale: 1.0,
            crawl_associations: false,
            queries: paper_queries(),
        }
    }

    /// Reduced-scale configuration for quick runs: hierarchy and citation
    /// counts shrink together, keeping the shape of every statistic.
    pub fn scaled(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        WorkloadConfig {
            seed: 2014,
            hierarchy_size: ((48_000f64 * scale) as usize).max(800),
            max_depth: 9,
            scale,
            crawl_associations: false,
            queries: paper_queries(),
        }
    }

    /// Tiny configuration for unit tests (sub-second build).
    pub fn test_size() -> Self {
        WorkloadConfig {
            seed: 7,
            hierarchy_size: 2_500,
            max_depth: 8,
            scale: 0.12,
            crawl_associations: false,
            queries: paper_queries(),
        }
    }
}

/// A query realized inside a [`Workload`].
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// The originating specification.
    pub spec: QuerySpec,
    /// The descriptor pinned as the navigation target.
    pub target_descriptor: DescriptorId,
    /// The hierarchy position of the target (single-position descriptors
    /// are chosen as targets).
    pub target_node: NodeId,
    /// Citations generated for this query (ground truth; the keyword index
    /// must return exactly this set).
    pub citation_ids: Vec<CitationId>,
}

/// A fully materialized workload: hierarchy + store + index + queries.
pub struct Workload {
    /// The (synthetic) MeSH hierarchy with pinned target labels.
    pub hierarchy: ConceptHierarchy,
    /// The citation store with per-concept global counts installed.
    pub store: CitationStore,
    /// The keyword index (ESearch stand-in).
    pub index: InvertedIndex,
    /// One entry per realized query.
    pub queries: Vec<PreparedQuery>,
}

/// One executed query: its navigation tree and target node.
pub struct QueryRun {
    /// Query name (spec identifier).
    pub name: String,
    /// The navigation tree of the query result.
    pub nav: NavigationTree,
    /// The target concept inside the navigation tree.
    pub target: NavNodeId,
    /// Distinct citations the keyword query returned.
    pub result_size: usize,
}

impl Workload {
    /// Builds the workload. Deterministic in `cfg`.
    pub fn build(cfg: &WorkloadConfig) -> Workload {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut descriptors = generate_descriptors(&SynthConfig {
            seed: cfg.seed ^ 0x5EED,
            approx_size: cfg.hierarchy_size,
            top_categories: 16.min(cfg.hierarchy_size / 64).max(4),
            max_depth: cfg.max_depth,
            extra_position_rate: 0.12,
        });
        let provisional = ConceptHierarchy::from_descriptors(&descriptors)
            .expect("synthetic descriptors always build");

        // ---- Pin targets and choose clusters against the provisional tree.
        let mut used_descriptors: HashSet<DescriptorId> = HashSet::new();
        let mut plans: Vec<QueryPlan> = Vec::new();
        for spec in &cfg.queries {
            let plan = plan_query(&provisional, spec, &mut rng, &mut used_descriptors);
            plans.push(plan);
        }
        // Rename the chosen target descriptors.
        for (spec, plan) in cfg.queries.iter().zip(&plans) {
            let d = descriptors
                .iter_mut()
                .find(|d| d.id == plan.target_descriptor)
                .expect("the plan chose an existing descriptor");
            d.label = spec.target.label.clone();
        }
        let hierarchy = ConceptHierarchy::from_descriptors(&descriptors)
            .expect("renaming labels cannot break the tree");

        // ---- Global counts: shallow concepts are common, deep ones rare.
        let mut store = CitationStore::new();
        for node in hierarchy.iter_preorder().skip(1) {
            let h = hierarchy.node(node);
            if let Some(d) = h.descriptor() {
                let depth = f64::from(h.depth());
                let base = 3_000_000.0 * (0.32f64).powf(depth - 1.0);
                let jitter = rng.gen_range(0.4..2.5);
                store.set_global_count(d, (base * jitter).max(50.0) as u64);
            }
        }

        // ---- Citations.
        let mut next_pmid = 1u32;
        let mut prepared = Vec::new();
        for (spec, plan) in cfg.queries.iter().zip(&plans) {
            let ids =
                synthesize_query_citations(&hierarchy, spec, plan, cfg, &mut store, &mut next_pmid);
            // The paper-specified global count for the target.
            store.set_global_count(plan.target_descriptor, spec.target.global_count);
            prepared.push(PreparedQuery {
                spec: spec.clone(),
                target_descriptor: plan.target_descriptor,
                target_node: plan.target_node,
                citation_ids: ids,
            });
        }

        let mut index = InvertedIndex::build(&store);
        if cfg.crawl_associations {
            // The deployed data path (§VII): infer every association by
            // phrase-querying concept labels, then denormalize. Phrase
            // terms make the reconstruction exact, so only the *provenance*
            // of the associations changes.
            let result = bionav_medline::etl::Crawl::new(
                &hierarchy,
                &index,
                bionav_medline::etl::CrawlConfig::default(),
            )
            .run_to_end();
            store = result
                .into_store(&store)
                .expect("citation ids are unique by construction");
            // Crawled |LT(n)| counts are corpus-sized; the Table I targets
            // specify MEDLINE-scale values, so re-install those.
            for (spec, plan) in cfg.queries.iter().zip(&plans) {
                store.set_global_count(plan.target_descriptor, spec.target.global_count);
            }
            index = InvertedIndex::build(&store);
        }
        // Warm the hierarchy's columnar view here, at construction time:
        // the first navigation-tree build would otherwise pay for it inside
        // a latency-measured serving window.
        let _ = hierarchy.columns();
        Workload {
            hierarchy,
            store,
            index,
            queries: prepared,
        }
    }

    /// Looks up a prepared query by name.
    pub fn query(&self, name: &str) -> Option<&PreparedQuery> {
        self.queries.iter().find(|q| q.spec.name == name)
    }

    /// Executes a query end-to-end: keyword search through the index, then
    /// navigation-tree construction — the paper's on-line pipeline.
    ///
    /// # Panics
    /// Panics if `name` is unknown or the target fell out of the tree
    /// (cannot happen for generated workloads: targets carry citations).
    pub fn run_query(&self, name: &str) -> QueryRun {
        let prepared = self
            .query(name)
            .unwrap_or_else(|| panic!("unknown query {name:?}"));
        let outcome = self.index.query(&prepared.spec.keywords);
        let nav = NavigationTree::build(&self.hierarchy, &self.store, &outcome.citations);
        let target = nav
            .iter_preorder()
            .find(|&n| nav.hierarchy_node(n) == prepared.target_node)
            .expect("targets always carry attached citations");
        QueryRun {
            name: name.to_string(),
            nav,
            target,
            result_size: outcome.citations.len(),
        }
    }
}

/// Where a query's citations will live in the hierarchy.
#[derive(Debug, Clone)]
struct QueryPlan {
    target_descriptor: DescriptorId,
    target_node: NodeId,
    /// Cluster subtree node pools; `clusters[0]` contains the target.
    clusters: Vec<Vec<NodeId>>,
    /// Per-cluster satellite *regions*: the methods/chemicals/organism
    /// subtree regions a topic's citations share. Each citation draws its
    /// scattered concepts from 2–3 of its own cluster's regions — this
    /// topical locality is what lets EdgeCuts fragment the result set (a
    /// navigation subtree holds *its* topic's citations, not everyone's).
    satellites: Vec<Vec<Vec<NodeId>>>,
    /// Small cross-topic pool (background concepts shared by all clusters).
    shared_pool: Vec<NodeId>,
}

/// Chooses the target and clusters for one query.
fn plan_query(
    hierarchy: &ConceptHierarchy,
    spec: &QuerySpec,
    rng: &mut StdRng,
    used: &mut HashSet<DescriptorId>,
) -> QueryPlan {
    // Target: a single-position descriptor at (or as close as possible to)
    // the specified depth, with a fallback that relaxes the depth match.
    let mut candidates: Vec<NodeId> = hierarchy
        .iter_preorder()
        .skip(1)
        .filter(|&n| {
            let node = hierarchy.node(n);
            match node.descriptor() {
                Some(d) => !used.contains(&d) && hierarchy.nodes_of(d).len() == 1,
                None => false,
            }
        })
        .collect();
    candidates.shuffle(rng);
    let target_node = candidates
        .iter()
        .copied()
        .min_by_key(|&n| {
            let depth = hierarchy.node(n).depth();
            (i64::from(depth) - i64::from(spec.target.level)).unsigned_abs()
        })
        .expect("hierarchies always have candidate targets");
    let target_descriptor = hierarchy
        .node(target_node)
        .descriptor()
        .expect("candidates have descriptors");
    used.insert(target_descriptor);

    // The target's cluster: the subtree around its ancestor at depth 2 (or
    // the target itself when it is that shallow).
    let path = hierarchy.path_from_root(target_node);
    let anchor = path
        .get(2.min(path.len() - 1))
        .copied()
        .unwrap_or(target_node);
    let target_cluster = cluster_nodes(hierarchy, anchor);

    // Remaining clusters: depth-2 regions elsewhere.
    let mut region_roots: Vec<NodeId> = hierarchy
        .iter_preorder()
        .filter(|&n| hierarchy.node(n).depth() == 2 && n != anchor)
        .collect();
    region_roots.shuffle(rng);
    let others = region_roots
        .into_iter()
        .take(spec.clusters.saturating_sub(1) as usize)
        .map(|root| cluster_nodes(hierarchy, root));

    // Cluster order doubles as the Zipf popularity ranking. A target that
    // carries a healthy share of the result is a *hot* research line (the
    // paper's prothymosin targets) and fronts the ranking; a target with a
    // negligible |L(n)| — ice nucleation's "Plants, Genetically Modified",
    // 2 of 252 — is incidental to the literature, so its region goes last
    // (coldest). That coldness is what made ice nucleation the paper's
    // worst case: the EXPLORE probability keeps steering cuts elsewhere.
    let hot_target = u64::from(spec.target.attached) * 20 >= u64::from(spec.citations);
    let mut clusters: Vec<Vec<NodeId>> = Vec::with_capacity(spec.clusters as usize);
    if hot_target {
        clusters.push(target_cluster);
        clusters.extend(others);
    } else {
        clusters.extend(others);
        clusters.push(target_cluster);
    }

    // Satellite pools, sized so the navigation tree lands near the Table I
    // size (~12 distinct concepts materialize per citation). Locality is
    // *subtree-based*: each cluster claims a few dedicated hierarchy
    // regions (depth-3 subtrees), so a navigation subtree holds its own
    // topic's citations — without this, every partition would contain the
    // whole result set and no EdgeCut could fragment anything.
    let pool_target = (spec.citations as usize)
        .saturating_mul(12)
        .min(hierarchy.len() - 1);
    let per_cluster = (pool_target / clusters.len().max(1)).max(16);
    let per_region_cap = 40usize;
    let mut region_roots: Vec<NodeId> = hierarchy
        .iter_preorder()
        .filter(|&n| {
            let d = hierarchy.node(n).depth();
            d == 3 && n != anchor && !hierarchy.is_ancestor(anchor, n)
        })
        .collect();
    region_roots.shuffle(rng);
    let mut region_iter = region_roots.into_iter();
    let mut satellites: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(clusters.len());
    for _ in 0..clusters.len() {
        // Claim regions until the cluster's satellite pool is big enough;
        // synthetic depth-3 subtrees average ~15 nodes, so a cluster ends
        // up with a few dozen regions — each citation later samples 2–3 of
        // them, which keeps topical locality while different citations of
        // the same topic spread over the whole pool (tree-size realism).
        let mut regions: Vec<Vec<NodeId>> = Vec::new();
        let mut pooled = 0usize;
        while pooled < per_cluster {
            let Some(root) = region_iter.next() else {
                break;
            };
            let nodes: Vec<NodeId> = hierarchy.iter_subtree(root).take(per_region_cap).collect();
            pooled += nodes.len();
            if !nodes.is_empty() {
                regions.push(nodes);
            }
        }
        if regions.is_empty() {
            regions.push(vec![target_node]); // degenerate tiny hierarchies
        }
        satellites.push(regions);
    }
    // Background concepts every topic occasionally attaches (the paper's
    // near-universal shallow headings like "Proteins (307/313)").
    let mut shared_pool: Vec<NodeId> = hierarchy
        .iter_preorder()
        .skip(1)
        .filter(|&n| hierarchy.node(n).depth() <= 2)
        .collect();
    shared_pool.shuffle(rng);
    shared_pool.truncate(40);

    QueryPlan {
        target_descriptor,
        target_node,
        clusters,
        satellites,
        shared_pool,
    }
}

/// All nodes of the cluster subtree, capped to keep sampling cheap.
fn cluster_nodes(hierarchy: &ConceptHierarchy, root: NodeId) -> Vec<NodeId> {
    hierarchy.iter_subtree(root).take(4_000).collect()
}

/// Generates the citations of one query and inserts them into the store.
fn synthesize_query_citations(
    hierarchy: &ConceptHierarchy,
    spec: &QuerySpec,
    plan: &QueryPlan,
    cfg: &WorkloadConfig,
    store: &mut CitationStore,
    next_pmid: &mut u32,
) -> Vec<CitationId> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ stable_hash(&spec.name));
    let n = ((f64::from(spec.citations) * cfg.scale).round() as usize).max(5);
    let attach_target =
        ((f64::from(spec.target.attached) * cfg.scale).round() as u32).clamp(1, n as u32);
    let tokens = tokenize(&spec.keywords);

    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let pmid = CitationId(*next_pmid);
        *next_pmid += 1;

        let mut indexed: Vec<DescriptorId> = Vec::new();
        let add_node = |indexed: &mut Vec<DescriptorId>, node: NodeId| {
            if node == plan.target_node {
                return; // the target is force-attached below, exactly |L(n)| times
            }
            if let Some(d) = hierarchy.node(node).descriptor() {
                indexed.push(d);
            }
        };

        // Zipf-pick a cluster, then a focus inside it.
        let cluster_idx = zipf_index(&mut rng, plan.clusters.len());
        let cluster = &plan.clusters[cluster_idx];
        let focus = cluster[rng.gen_range(0..cluster.len())];
        add_node(&mut indexed, focus);
        // Ancestors: general concepts accumulate near-total counts.
        for &anc in hierarchy.path_from_root(focus).iter().rev().skip(1) {
            if anc == NodeId::ROOT {
                break;
            }
            if rng.gen_bool(0.85) {
                add_node(&mut indexed, anc);
            }
        }
        // Cross-topic secondary cluster: the duplicate factory.
        if plan.clusters.len() > 1 && rng.gen_bool(0.35) {
            let other = &plan.clusters[rng.gen_range(0..plan.clusters.len())];
            let f2 = other[rng.gen_range(0..other.len())];
            add_node(&mut indexed, f2);
            for &anc in hierarchy.path_from_root(f2).iter().rev().skip(1) {
                if anc == NodeId::ROOT {
                    break;
                }
                if rng.gen_bool(0.6) {
                    add_node(&mut indexed, anc);
                }
            }
        }
        // Scattered long tail up to the per-citation indexing budget:
        // 2–3 of this topic's satellite regions (a real citation's
        // chemicals/organisms/methods headings cluster in a handful of
        // subtrees), plus the shared shallow background concepts.
        let budget = jitter(&mut rng, spec.mean_indexed as usize);
        let regions = &plan.satellites[cluster_idx];
        let picks = 2 + usize::from(rng.gen_bool(0.5)) + usize::from(rng.gen_bool(0.25));
        let mut my_regions: Vec<&Vec<NodeId>> = Vec::with_capacity(picks);
        for _ in 0..picks.min(regions.len()) {
            my_regions.push(&regions[rng.gen_range(0..regions.len())]);
        }
        while indexed.len() < budget {
            let s = if plan.shared_pool.is_empty() || rng.gen_bool(0.8) {
                let r = my_regions[rng.gen_range(0..my_regions.len())];
                r[rng.gen_range(0..r.len())]
            } else {
                plan.shared_pool[rng.gen_range(0..plan.shared_pool.len())]
            };
            add_node(&mut indexed, s);
        }

        // Force-attach the target to the first |L(n)| citations.
        let mut annotations: Vec<DescriptorId> = Vec::new();
        if (i as u32) < attach_target {
            annotations.push(plan.target_descriptor);
        }

        // Searchable terms: the query keywords plus the full label phrase
        // of every associated concept — what PubMed's phrase matching
        // sees, and what lets the §VII crawl reconstruct associations.
        let mut terms = tokens.clone();
        for &d in annotations.iter().chain(&indexed) {
            if let Some(&node) = hierarchy.nodes_of(d).first() {
                terms.push(bionav_medline::normalize_phrase(
                    hierarchy.node(node).label(),
                ));
            }
        }

        let title = format!("{} study {}", spec.keywords, i + 1);
        store
            .insert(Citation::new(pmid, title, terms, annotations, indexed))
            .expect("pmids are globally sequential");
        ids.push(pmid);
    }
    ids
}

/// Zipf(1)-weighted index in `0..n`.
fn zipf_index(rng: &mut StdRng, n: usize) -> usize {
    debug_assert!(n >= 1);
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    n - 1
}

fn jitter(rng: &mut StdRng, mean: usize) -> usize {
    let lo = (mean as f64 * 0.6).floor().max(3.0) as usize;
    let hi = (mean as f64 * 1.4).ceil() as usize + 1;
    rng.gen_range(lo..hi)
}

/// Deterministic string hash (FNV-1a) so query seeds are stable across
/// platforms and runs.
fn stable_hash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workload {
        Workload::build(&WorkloadConfig {
            queries: paper_queries().into_iter().take(3).collect(),
            ..WorkloadConfig::test_size()
        })
    }

    #[test]
    #[should_panic]
    fn zero_scale_is_rejected() {
        WorkloadConfig::scaled(0.0);
    }

    #[test]
    #[should_panic]
    fn oversized_scale_is_rejected() {
        WorkloadConfig::scaled(1.5);
    }

    #[test]
    fn build_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.hierarchy.len(), b.hierarchy.len());
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.citation_ids, qb.citation_ids);
            assert_eq!(qa.target_descriptor, qb.target_descriptor);
        }
    }

    #[test]
    fn keyword_queries_return_exactly_the_generated_sets() {
        let w = tiny();
        for q in &w.queries {
            let got = w.index.query(&q.spec.keywords).citations;
            assert_eq!(got, q.citation_ids, "query {}", q.spec.name);
        }
    }

    #[test]
    fn targets_are_pinned_with_right_labels() {
        let w = tiny();
        for q in &w.queries {
            let node = w.hierarchy.node(q.target_node);
            assert_eq!(node.label(), q.spec.target.label);
            assert_eq!(node.descriptor(), Some(q.target_descriptor));
            assert_eq!(
                w.store.global_count(q.target_descriptor),
                q.spec.target.global_count
            );
        }
    }

    #[test]
    fn run_query_builds_tree_containing_target() {
        let w = tiny();
        for q in &w.queries {
            let run = w.run_query(&q.spec.name);
            assert!(run.nav.len() > 10, "{}: tree too small", q.spec.name);
            assert_eq!(run.nav.label(run.target), q.spec.target.label);
            // The forced |L(n)| attachments survive scaling.
            let expected = ((f64::from(q.spec.target.attached) * 0.12).round() as u32).max(1);
            assert_eq!(
                run.nav.results_count(run.target),
                expected,
                "{}",
                q.spec.name
            );
        }
    }

    #[test]
    fn result_sizes_scale_with_config() {
        let w = tiny();
        for q in &w.queries {
            let expected = ((f64::from(q.spec.citations) * 0.12).round() as usize).max(5);
            assert_eq!(q.citation_ids.len(), expected, "{}", q.spec.name);
        }
    }

    #[test]
    fn navigation_trees_have_duplicates() {
        let w = tiny();
        let run = w.run_query("varenicline");
        let stats = bionav_core::stats::NavTreeStats::compute(&run.nav);
        assert!(
            stats.citations_with_duplicates as usize > stats.citations,
            "wide indexing must create duplicates: {stats:?}"
        );
        assert!(
            stats.tree_size > stats.citations,
            "many concepts per citation"
        );
    }

    #[test]
    #[should_panic(expected = "unknown query")]
    fn unknown_query_panics() {
        tiny().run_query("nope");
    }

    #[test]
    fn different_seeds_give_different_workloads() {
        let base = WorkloadConfig {
            queries: paper_queries().into_iter().take(2).collect(),
            ..WorkloadConfig::test_size()
        };
        let a = Workload::build(&base);
        let b = Workload::build(&WorkloadConfig {
            seed: base.seed + 1,
            ..base.clone()
        });
        let ta = a.queries[0].target_node;
        let tb = b.queries[0].target_node;
        let differs = ta != tb
            || a.queries[0].citation_ids.len() != b.queries[0].citation_ids.len()
            || a.hierarchy.len() != b.hierarchy.len();
        assert!(differs, "reseeding should move something");
    }

    #[test]
    fn targets_land_near_their_requested_depth() {
        let w = tiny();
        for q in &w.queries {
            let depth = w.hierarchy.node(q.target_node).depth();
            let want = q.spec.target.level;
            assert!(
                (i64::from(depth) - i64::from(want)).abs() <= 2,
                "{}: target at depth {depth}, wanted {want} (test-size hierarchy is shallow)",
                q.spec.name
            );
        }
    }

    #[test]
    fn queries_do_not_share_target_descriptors() {
        let w = Workload::build(&WorkloadConfig::test_size());
        let mut seen = std::collections::HashSet::new();
        for q in &w.queries {
            assert!(
                seen.insert(q.target_descriptor),
                "{} reuses a target",
                q.spec.name
            );
        }
    }

    #[test]
    fn citation_ids_are_globally_unique_and_sorted() {
        let w = tiny();
        let mut all: Vec<_> = w
            .queries
            .iter()
            .flat_map(|q| q.citation_ids.clone())
            .collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before, "pmids must never collide across queries");
    }

    #[test]
    fn crawled_associations_reconstruct_ground_truth() {
        let base = WorkloadConfig {
            queries: paper_queries().into_iter().take(3).collect(),
            ..WorkloadConfig::test_size()
        };
        let truth = Workload::build(&base);
        let crawled = Workload::build(&WorkloadConfig {
            crawl_associations: true,
            ..base
        });
        assert_eq!(truth.store.len(), crawled.store.len());
        // Phrase matching recovers the associations exactly (phrase terms
        // are stored per associated concept; label collisions are the only
        // possible source of extras and the synthetic labels are unique).
        let mut exact = 0usize;
        for c in truth.store.iter() {
            let got = crawled.store.associations(c.id);
            if got == c.indexed.as_slice() {
                exact += 1;
            } else {
                // Any surplus must still be a superset (phrase collisions
                // can only add, never drop).
                for d in &c.indexed {
                    if !got.contains(d) {
                        let node = truth.hierarchy.nodes_of(*d).first().copied();
                        let label = node.map(|n| truth.hierarchy.node(n).label().to_string());
                        let phrase = label.as_deref().map(bionav_medline::normalize_phrase);
                        let has_term = phrase.as_deref().map(|ph| c.terms.iter().any(|t| t == ph));
                        panic!(
                            "crawl dropped {d:?} (label {label:?}, phrase {phrase:?}, term present: {has_term:?}) from {:?}",
                            c.id
                        );
                    }
                }
            }
        }
        assert!(
            exact * 10 >= truth.store.len() * 9,
            "≥90% of citations reconstruct exactly (got {exact}/{})",
            truth.store.len()
        );
        // Targets keep their Table I |LT(n)| values.
        for q in &crawled.queries {
            assert_eq!(
                crawled.store.global_count(q.target_descriptor),
                q.spec.target.global_count
            );
        }
        // The evaluation pipeline runs end to end on the crawled store.
        let run = crawled.run_query(&crawled.queries[0].spec.name);
        assert!(run.nav.len() > 10);
    }

    /// Beyond-paper scale: double citations over a 100k-node hierarchy;
    /// expansions must stay interactive. Run explicitly with `-- --ignored`.
    #[test]
    #[ignore = "builds a 100k-node hierarchy with 2× citations (~10s release)"]
    fn double_scale_stays_interactive() {
        let cfg = WorkloadConfig {
            seed: 2014,
            hierarchy_size: 100_000,
            max_depth: 11,
            scale: 1.0,
            crawl_associations: false,
            queries: paper_queries(),
        };
        let w = Workload::build(&cfg);
        let run = w.run_query("follistatin");
        let started = std::time::Instant::now();
        let sim = bionav_core::sim::simulate_bionav(
            &run.nav,
            &bionav_core::CostParams::default(),
            &[run.target],
        );
        assert!(sim.outcome.expands >= 1);
        let per_expand = started.elapsed() / sim.outcome.expands.max(1) as u32;
        assert!(
            per_expand < std::time::Duration::from_secs(2),
            "expansions degraded to {per_expand:?}"
        );
    }

    /// Paper-scale smoke test; slow-ish, run explicitly with
    /// `cargo test -p bionav-workload -- --ignored`.
    #[test]
    #[ignore = "builds the full 48k-node workload (~2s release, ~20s debug)"]
    fn full_scale_workload_builds_and_answers() {
        let w = Workload::build(&WorkloadConfig::full());
        assert!(w.hierarchy.len() > 40_000);
        let run = w.run_query("prothymosin");
        assert_eq!(run.result_size, 313);
        assert!(run.nav.len() > 2_000);
    }
}
