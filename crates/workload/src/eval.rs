//! The §VIII evaluation: runs every workload query through the static
//! baseline and BioNav's Heuristic-ReducedOpt navigation, collecting the
//! Table I statistics and the Fig 8–11 measurements.

use bionav_core::baseline::{simulate_static, simulate_static_paged};
use bionav_core::sim::{simulate_bionav, BioNavRun, NavOutcome};
use bionav_core::stats::{NavTreeStats, TargetStats};
use bionav_core::CostParams;

use crate::build::Workload;

/// One row of Table I, as measured on the realized workload.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The keyword query.
    pub keywords: String,
    /// Navigation-tree shape statistics.
    pub tree: NavTreeStats,
    /// Target-concept statistics.
    pub target: TargetStats,
    /// The target's concept label.
    pub target_label: String,
}

/// Everything the evaluation measures for one query.
#[derive(Debug, Clone)]
pub struct QueryEval {
    /// Query name (spec identifier).
    pub name: String,
    /// Measured Table I row.
    pub table1: Table1Row,
    /// Static navigation cost (all children revealed per expand) — Fig 8/9.
    pub static_outcome: NavOutcome,
    /// Paged GoPubMed-style static cost (top-10 + `more`) — footnote 2.
    pub paged_outcome: NavOutcome,
    /// BioNav navigation: cost plus per-EXPAND telemetry — Figs 8–11.
    pub bionav: BioNavRun,
}

impl QueryEval {
    /// Fig 8's improvement: `1 − bionav/static` on interaction cost.
    pub fn improvement(&self) -> f64 {
        let stat = self.static_outcome.interaction_cost() as f64;
        if stat == 0.0 {
            return 0.0;
        }
        1.0 - self.bionav.outcome.interaction_cost() as f64 / stat
    }

    /// Mean Heuristic-ReducedOpt time per EXPAND (Fig 10).
    pub fn mean_expand_time(&self) -> std::time::Duration {
        if self.bionav.trace.is_empty() {
            return std::time::Duration::ZERO;
        }
        let total: std::time::Duration = self.bionav.trace.iter().map(|t| t.elapsed).sum();
        total / self.bionav.trace.len() as u32
    }
}

/// Evaluates a single query by name.
///
/// # Panics
/// Panics on unknown names (workload construction guarantees the rest).
pub fn evaluate_query(workload: &Workload, name: &str, params: &CostParams) -> QueryEval {
    let prepared = workload
        .query(name)
        // lint: allow(no-unwrap) — documented panic contract of this fn (see
        // `# Panics` above); callers iterate the workload's own query names
        .unwrap_or_else(|| panic!("unknown query {name:?}"));
    let run = workload.run_query(name);
    let table1 = Table1Row {
        keywords: prepared.spec.keywords.clone(),
        tree: NavTreeStats::compute(&run.nav),
        target: TargetStats::compute(
            &run.nav,
            run.target,
            workload.store.global_count(prepared.target_descriptor),
        ),
        target_label: prepared.spec.target.label.clone(),
    };
    let static_outcome = simulate_static(&run.nav, &[run.target]);
    let paged_outcome = simulate_static_paged(&run.nav, &[run.target], 10);
    let bionav = simulate_bionav(&run.nav, params, &[run.target]);
    QueryEval {
        name: name.to_string(),
        table1,
        static_outcome,
        paged_outcome,
        bionav,
    }
}

/// Evaluates every query of the workload, in specification order.
pub fn evaluate(workload: &Workload, params: &CostParams) -> Vec<QueryEval> {
    workload
        .queries
        .iter()
        .map(|q| evaluate_query(workload, &q.spec.name, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::WorkloadConfig;
    use crate::spec::paper_queries;

    fn eval_tiny() -> Vec<QueryEval> {
        let w = Workload::build(&WorkloadConfig {
            queries: paper_queries().into_iter().take(4).collect(),
            ..WorkloadConfig::test_size()
        });
        evaluate(&w, &CostParams::default())
    }

    #[test]
    fn evaluation_covers_every_query() {
        let evals = eval_tiny();
        assert_eq!(evals.len(), 4);
        for e in &evals {
            assert!(e.static_outcome.expands >= 1, "{}", e.name);
            assert!(e.table1.tree.tree_size > 0);
        }
    }

    #[test]
    fn bionav_wins_on_average() {
        // The paper's average improvement is 85%; at test scale the trees
        // are much smaller and less bushy, so just require a positive mean
        // improvement — the full-scale shape test lives in EXPERIMENTS.md /
        // the reproduce harness.
        let evals = eval_tiny();
        let mean: f64 = evals.iter().map(QueryEval::improvement).sum::<f64>() / evals.len() as f64;
        assert!(mean > 0.0, "mean improvement {mean} should be positive");
    }

    #[test]
    fn trace_lengths_match_expand_counts() {
        for e in eval_tiny() {
            assert_eq!(e.bionav.trace.len(), e.bionav.outcome.expands);
            for t in &e.bionav.trace {
                assert!(t.reduced_size <= CostParams::default().max_partitions);
            }
        }
    }

    #[test]
    fn mean_expand_time_of_an_empty_trace_is_zero() {
        let mut evals = eval_tiny();
        let mut e = evals.remove(0);
        e.bionav.trace.clear();
        assert_eq!(e.mean_expand_time(), std::time::Duration::ZERO);
    }

    #[test]
    fn paged_static_is_bounded_by_plain_static() {
        // Footnote 2 argues paging does not change the *relative* picture:
        // `more` clicks are paid actions. Paging can only help when the
        // oracle path ranks inside the first page at every level, and it
        // can never beat one label per expand.
        for e in eval_tiny() {
            let plain = e.static_outcome.interaction_cost();
            let paged = e.paged_outcome.interaction_cost();
            assert!(paged <= plain, "{}: paged {paged} vs plain {plain}", e.name);
            assert!(
                paged >= 2 * e.static_outcome.expands,
                "{}: paged floor",
                e.name
            );
        }
    }
}
