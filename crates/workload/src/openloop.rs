//! Open-loop load plans for the serving tier.
//!
//! A *closed-loop* driver (issue a request, wait, issue the next) lets a
//! slow server throttle its own load generator, hiding overload behind
//! coordinated omission: the latencies it records are only for the requests
//! it got around to sending. This module generates the schedule *up front*
//! — Poisson arrivals at a fixed rate, Zipf popularity over the ten Table I
//! queries, Markov EXPLORE/EXPAND sessions with think-time pauses — so the
//! bench harness can replay it open-loop and measure every session's
//! latency from its **intended** arrival instant, whether or not the server
//! was ready for it.
//!
//! Everything is deterministic in [`OpenLoopConfig::seed`].

use crate::spec::paper_queries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for one open-loop arrival schedule.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Master seed; the whole plan is deterministic in it.
    pub seed: u64,
    /// Mean session arrival rate (Poisson) in sessions per second.
    pub arrival_rate_per_sec: f64,
    /// Length of the arrival window; sessions whose intended start falls
    /// past it are not generated (in-flight ones still run to completion).
    pub duration_ns: u64,
    /// Zipf skew over the ten paper queries: popularity of the rank-`k`
    /// query is proportional to `1 / (k+1)^zipf_s`. Zero is uniform.
    pub zipf_s: f64,
    /// Probability a session takes another step after the current one
    /// (geometric session length; the paper's oracle user averages a
    /// handful of EXPANDs per query).
    pub expand_continue: f64,
    /// Probability a follow-up step is an EXPLORE (show results) rather
    /// than another EXPAND.
    pub explore_bias: f64,
    /// Mean think-time pause before each follow-up step (exponential).
    pub think_mean_ns: u64,
}

impl OpenLoopConfig {
    /// A small, fast default for tests and CI-scale sweeps.
    pub fn test_size(seed: u64) -> Self {
        OpenLoopConfig {
            seed,
            arrival_rate_per_sec: 200.0,
            duration_ns: 500_000_000,
            zipf_s: 1.0,
            expand_continue: 0.6,
            explore_bias: 0.3,
            think_mean_ns: 2_000_000,
        }
    }
}

/// One step of a generated session, after the opening query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOp {
    /// EXPAND the frontier node the driver is currently looking at.
    Expand,
    /// EXPLORE: show the results attached to the current node.
    Explore,
}

/// One scheduled step: a think-time pause, then the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStep {
    /// Pause before issuing this step, relative to the previous reply.
    pub think_ns: u64,
    /// What the step does.
    pub op: SessionOp,
}

/// One scheduled session: when it was *supposed* to start, which query it
/// opens, and the Markov chain of steps it walks afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionPlan {
    /// Intended arrival instant, relative to the start of the run.
    /// Latency must be measured from here, not from the actual send.
    pub intended_start_ns: u64,
    /// Name of the Table I query this session opens (see
    /// [`paper_queries`]).
    pub query: String,
    /// Steps after the open; always contains at least one EXPAND.
    pub steps: Vec<SessionStep>,
}

/// The outcome of replaying one session, for coordinated-omission-safe
/// percentile math: latency is `done_ns - intended_ns`, which charges queue
/// time the server never saw to the server anyway.
#[derive(Debug, Clone, Copy)]
pub struct SessionOutcome {
    /// The plan's intended arrival instant.
    pub intended_ns: u64,
    /// When the session's final reply landed (same clock as `intended_ns`).
    pub done_ns: u64,
    /// Whether the server shed the session (admission, deadline, breaker)
    /// instead of serving it.
    pub shed: bool,
}

impl SessionOutcome {
    /// Coordinated-omission-safe latency in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.done_ns.saturating_sub(self.intended_ns)
    }
}

/// p99 latency, in microseconds, over the *served* (non-shed) outcomes.
/// Returns `None` when nothing was served.
pub fn served_p99_us(outcomes: &[SessionOutcome]) -> Option<u64> {
    let mut served: Vec<u64> = outcomes
        .iter()
        .filter(|o| !o.shed)
        .map(|o| o.latency_ns())
        .collect();
    if served.is_empty() {
        return None;
    }
    served.sort_unstable();
    // Nearest-rank p99: the smallest sample with ≥99% of mass at or below.
    let rank = (served.len() * 99).div_ceil(100).max(1);
    Some(served[rank - 1] / 1_000)
}

/// Fraction of outcomes the server shed, in [0, 1].
pub fn shed_fraction(outcomes: &[SessionOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|o| o.shed).count() as f64 / outcomes.len() as f64
}

/// Generate the full open-loop schedule: Poisson arrivals over the window,
/// each opening a Zipf-popular query and walking a geometric Markov chain
/// of EXPAND/EXPLORE steps. Plans come back sorted by intended start.
pub fn generate(cfg: &OpenLoopConfig) -> Vec<SessionPlan> {
    assert!(
        cfg.arrival_rate_per_sec > 0.0,
        "open-loop rate must be positive"
    );
    let queries = paper_queries();
    // Cumulative Zipf weights over the query list, in listed order.
    let weights: Vec<f64> = (0..queries.len())
        .map(|k| 1.0 / ((k + 1) as f64).powf(cfg.zipf_s))
        .collect();
    let total_weight: f64 = weights.iter().sum();

    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0907_1009); // ICDE'09
    let mean_gap_ns = 1e9 / cfg.arrival_rate_per_sec;
    let mut plans = Vec::new();
    let mut clock_ns = 0.0f64;
    loop {
        clock_ns += exp_sample(&mut rng, mean_gap_ns);
        if clock_ns >= cfg.duration_ns as f64 {
            break;
        }
        let query = queries[zipf_pick(&mut rng, &weights, total_weight)]
            .name
            .clone();
        plans.push(SessionPlan {
            intended_start_ns: clock_ns as u64,
            query,
            steps: markov_steps(&mut rng, cfg),
        });
    }
    plans
}

/// Exponential sample with the given mean (inverse-CDF of −ln(U)·mean).
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    // gen::<f64>() is in [0, 1); flip to (0, 1] so ln() never sees zero.
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() * mean
}

/// Pick an index by cumulative Zipf weight.
fn zipf_pick(rng: &mut StdRng, weights: &[f64], total: f64) -> usize {
    let mut roll = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        roll -= w;
        if roll <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Walk the EXPLORE/EXPAND Markov chain: the session always EXPANDs once
/// (that is the operation under SLO), then keeps going with probability
/// `expand_continue`, mixing in EXPLOREs per `explore_bias`, pausing an
/// exponential think time before each follow-up.
fn markov_steps(rng: &mut StdRng, cfg: &OpenLoopConfig) -> Vec<SessionStep> {
    let mut steps = vec![SessionStep {
        think_ns: 0,
        op: SessionOp::Expand,
    }];
    while rng.gen::<f64>() < cfg.expand_continue {
        let op = if rng.gen::<f64>() < cfg.explore_bias {
            SessionOp::Explore
        } else {
            SessionOp::Expand
        };
        steps.push(SessionStep {
            think_ns: exp_sample(rng, cfg.think_mean_ns as f64) as u64,
            op,
        });
        if steps.len() >= 32 {
            break; // geometric tail guard; real sessions are short
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let cfg = OpenLoopConfig::test_size(11);
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = OpenLoopConfig::test_size(12);
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn arrivals_match_the_requested_rate() {
        let cfg = OpenLoopConfig {
            arrival_rate_per_sec: 1_000.0,
            duration_ns: 2_000_000_000,
            ..OpenLoopConfig::test_size(7)
        };
        let plans = generate(&cfg);
        // Expect ~2000 arrivals; Poisson sd is ~45, allow 5 sigma.
        let n = plans.len() as i64;
        assert!((n - 2_000).abs() < 250, "got {n} arrivals");
        // Sorted by construction, inside the window.
        for w in plans.windows(2) {
            assert!(w[0].intended_start_ns <= w[1].intended_start_ns);
        }
        assert!(plans.last().unwrap().intended_start_ns < cfg.duration_ns);
    }

    #[test]
    fn popularity_is_zipf_skewed_toward_the_head_query() {
        let cfg = OpenLoopConfig {
            arrival_rate_per_sec: 2_000.0,
            duration_ns: 2_000_000_000,
            zipf_s: 1.0,
            ..OpenLoopConfig::test_size(3)
        };
        let plans = generate(&cfg);
        let head = paper_queries()[0].name.clone();
        let tail = paper_queries()[9].name.clone();
        let count = |q: &str| plans.iter().filter(|p| p.query == q).count();
        assert!(
            count(&head) > 3 * count(&tail),
            "head {} vs tail {}",
            count(&head),
            count(&tail)
        );
        // Every generated query is one of the ten.
        let names: Vec<String> = paper_queries().into_iter().map(|q| q.name).collect();
        assert!(plans.iter().all(|p| names.contains(&p.query)));
    }

    #[test]
    fn sessions_always_open_with_an_expand_and_stay_short() {
        for plan in generate(&OpenLoopConfig::test_size(5)) {
            assert_eq!(plan.steps[0].op, SessionOp::Expand);
            assert_eq!(plan.steps[0].think_ns, 0);
            assert!(plan.steps.len() <= 32);
        }
        // With expand_continue > 0 some sessions must be multi-step, and
        // some follow-ups must be EXPLOREs.
        let plans = generate(&OpenLoopConfig::test_size(5));
        assert!(plans.iter().any(|p| p.steps.len() > 1));
        assert!(plans
            .iter()
            .flat_map(|p| &p.steps)
            .any(|s| s.op == SessionOp::Explore));
    }

    #[test]
    fn p99_is_measured_from_intended_arrival() {
        // A server that "only" takes 1ms per request but queues 100ms
        // behind schedule: coordinated-omission-safe latency sees the
        // queue, not just the service time.
        let outcomes: Vec<SessionOutcome> = (0..100)
            .map(|i| SessionOutcome {
                intended_ns: i * 1_000_000,
                done_ns: i * 1_000_000 + if i >= 98 { 100_000_000 } else { 1_000_000 },
                shed: false,
            })
            .collect();
        assert_eq!(served_p99_us(&outcomes), Some(100_000));
        assert_eq!(shed_fraction(&outcomes), 0.0);
    }

    #[test]
    fn shed_sessions_are_excluded_from_served_p99() {
        let outcomes = vec![
            SessionOutcome {
                intended_ns: 0,
                done_ns: 1_000,
                shed: false,
            },
            SessionOutcome {
                intended_ns: 0,
                done_ns: 900_000_000,
                shed: true,
            },
        ];
        assert_eq!(served_p99_us(&outcomes), Some(1));
        assert!((shed_fraction(&outcomes) - 0.5).abs() < 1e-9);
        assert_eq!(served_p99_us(&[]), None);
    }
}
