use std::fmt;

/// Errors produced while constructing or parsing concept hierarchies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// A tree number string did not conform to the dotted MeSH syntax.
    InvalidTreeNumber {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A tree number referenced a parent position that does not exist in the
    /// hierarchy being built.
    MissingParent {
        /// The tree number whose parent is missing.
        tree_number: String,
    },
    /// Two records claimed the same tree position.
    DuplicateTreeNumber {
        /// The duplicated position.
        tree_number: String,
    },
    /// A record in the MeSH ASCII format was malformed.
    MalformedRecord {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The hierarchy has no nodes besides the root where some were required.
    EmptyHierarchy,
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::InvalidTreeNumber { input, reason } => {
                write!(f, "invalid tree number {input:?}: {reason}")
            }
            MeshError::MissingParent { tree_number } => {
                write!(
                    f,
                    "tree number {tree_number} has no parent position in the hierarchy"
                )
            }
            MeshError::DuplicateTreeNumber { tree_number } => {
                write!(
                    f,
                    "tree position {tree_number} is claimed by more than one record"
                )
            }
            MeshError::MalformedRecord { line, reason } => {
                write!(f, "malformed MeSH record at line {line}: {reason}")
            }
            MeshError::EmptyHierarchy => write!(f, "hierarchy contains no concept nodes"),
        }
    }
}

impl std::error::Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_are_actionable() {
        let cases: Vec<(MeshError, &str)> = vec![
            (
                MeshError::InvalidTreeNumber {
                    input: "A..1".into(),
                    reason: "bad",
                },
                "invalid tree number",
            ),
            (
                MeshError::MissingParent {
                    tree_number: "A01.1".into(),
                },
                "no parent",
            ),
            (
                MeshError::DuplicateTreeNumber {
                    tree_number: "A01".into(),
                },
                "more than one record",
            ),
            (
                MeshError::MalformedRecord {
                    line: 7,
                    reason: "x".into(),
                },
                "line 7",
            ),
            (MeshError::EmptyHierarchy, "no concept nodes"),
        ];
        for (err, needle) in cases {
            let s = err.to_string();
            assert!(s.contains(needle), "{s:?} should mention {needle:?}");
            // And they are real std errors.
            let _: &dyn std::error::Error = &err;
        }
    }
}
