use std::collections::HashMap;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::{Descriptor, DescriptorId, MeshError, TreeNumber};

/// Index of a node within a [`ConceptHierarchy`] arena.
///
/// Node ids are dense (`0..hierarchy.len()`); id `0` is always the synthetic
/// `MeSH` root. They are only meaningful relative to the hierarchy that
/// produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The synthetic root node present in every hierarchy.
    pub const ROOT: NodeId = NodeId(0);

    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    label: String,
    /// `None` for the synthetic root and auto-created placeholders.
    descriptor: Option<DescriptorId>,
    /// `None` for the synthetic root and for synthesized arenas built via
    /// [`ConceptHierarchy::from_arena_parts`] (e.g. `synth::deep_chain`),
    /// whose shapes are impractical to express as dotted positions.
    tree_number: Option<TreeNumber>,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Depth from the root (root = 0). Cached because the cost model and the
    /// evaluation (Table I "MeSH level of target") query it constantly.
    /// `u32`: synthetic deep-chain hierarchies exceed 65k levels.
    depth: u32,
}

/// The MeSH concept hierarchy (Definition 1 of the paper): a labeled tree of
/// concept nodes rooted at a synthetic `MeSH` node.
///
/// Internally an arena: nodes live in one `Vec` and refer to each other by
/// [`NodeId`]. A descriptor occupying several tree positions yields several
/// nodes sharing the same [`DescriptorId`]; [`ConceptHierarchy::nodes_of`]
/// recovers all positions of a descriptor, which is how query results get
/// attached to every relevant position (and where the duplicate citations
/// central to the paper's NP-completeness argument come from).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConceptHierarchy {
    nodes: Vec<Node>,
    /// DescriptorId → all positions it occupies.
    positions: HashMap<DescriptorId, Vec<NodeId>>,
    /// Columnar view of the arena, built on first use (see
    /// [`ConceptHierarchy::columns`]). Derived data — skipped on the wire
    /// and rebuilt lazily after deserialization.
    #[serde(skip)]
    columns: OnceLock<HierarchyColumns>,
}

/// Struct-of-arrays view of a hierarchy arena: per-node scalars in parallel
/// columns, children in CSR form, labels concatenated into one arena
/// string. Whole-arena passes (the navigation-tree build walks tens of
/// thousands of nodes per query) read these contiguous columns instead of
/// pointer-chasing heap-allocated [`Node`] structs.
#[derive(Debug, Clone)]
pub struct HierarchyColumns {
    parent: Vec<u32>,
    depth: Vec<u32>,
    descriptor: Vec<u32>,
    child_off: Vec<u32>,
    child_idx: Vec<NodeId>,
    label_off: Vec<u32>,
    labels: String,
    /// Descriptor-indexed positions CSR: raw descriptor id `d` occupies
    /// `pos_idx[pos_off[d]..pos_off[d + 1]]`, in arena order. The hash-free
    /// analogue of the `positions` map (descriptor ids are near-dense, so
    /// the offsets column stays small).
    pos_off: Vec<u32>,
    pos_idx: Vec<NodeId>,
}

impl HierarchyColumns {
    /// Sentinel in [`parent`](Self::parent) for the root.
    pub const NO_PARENT: u32 = u32::MAX;
    /// Sentinel in [`descriptor`](Self::descriptor) for descriptor-less
    /// nodes (the root and auto-created placeholders).
    pub const NO_DESCRIPTOR: u32 = u32::MAX;

    fn build(nodes: &[Node]) -> HierarchyColumns {
        let n = nodes.len();
        let mut parent = Vec::with_capacity(n);
        let mut depth = Vec::with_capacity(n);
        let mut descriptor = Vec::with_capacity(n);
        let mut child_off = Vec::with_capacity(n + 1);
        let mut child_idx = Vec::with_capacity(n.saturating_sub(1));
        let mut label_off = Vec::with_capacity(n + 1);
        let mut labels = String::new();
        child_off.push(0);
        label_off.push(0);
        for node in nodes {
            parent.push(node.parent.map_or(Self::NO_PARENT, |p| p.0));
            depth.push(node.depth);
            descriptor.push(node.descriptor.map_or(Self::NO_DESCRIPTOR, |d| d.0));
            child_idx.extend_from_slice(&node.children);
            child_off.push(child_idx.len() as u32);
            labels.push_str(&node.label);
            label_off.push(labels.len() as u32);
        }
        // Positions CSR: counting sort of node ids by raw descriptor id.
        // Scattering in ascending node order reproduces exactly the lists
        // the `positions` hash map holds (each is filled in arena order).
        let domain = descriptor
            .iter()
            .filter(|&&d| d != Self::NO_DESCRIPTOR)
            .map(|&d| d as usize + 1)
            .max()
            .unwrap_or(0);
        let mut pos_off = vec![0u32; domain + 1];
        for &d in &descriptor {
            if d != Self::NO_DESCRIPTOR {
                pos_off[d as usize + 1] += 1;
            }
        }
        for i in 0..domain {
            pos_off[i + 1] += pos_off[i];
        }
        let mut pos_idx = vec![NodeId(0); pos_off[domain] as usize];
        let mut cursor = pos_off.clone();
        for (i, &d) in descriptor.iter().enumerate() {
            if d != Self::NO_DESCRIPTOR {
                pos_idx[cursor[d as usize] as usize] = NodeId(i as u32);
                cursor[d as usize] += 1;
            }
        }
        HierarchyColumns {
            parent,
            depth,
            descriptor,
            child_off,
            child_idx,
            label_off,
            labels,
            pos_off,
            pos_idx,
        }
    }

    /// Parent ids per node ([`NO_PARENT`](Self::NO_PARENT) for the root).
    pub fn parent(&self) -> &[u32] {
        &self.parent
    }

    /// Depth from the root per node (root = 0).
    pub fn depth(&self) -> &[u32] {
        &self.depth
    }

    /// Raw descriptor id per node
    /// ([`NO_DESCRIPTOR`](Self::NO_DESCRIPTOR) when absent).
    pub fn descriptor(&self) -> &[u32] {
        &self.descriptor
    }

    /// Children of node `i`, in tree-number order.
    pub fn children(&self, i: usize) -> &[NodeId] {
        &self.child_idx[self.child_off[i] as usize..self.child_off[i + 1] as usize]
    }

    /// Label of node `i`.
    pub fn label(&self, i: usize) -> &str {
        &self.labels[self.label_off[i] as usize..self.label_off[i + 1] as usize]
    }

    /// All positions of raw descriptor id `d`, in arena order — the
    /// hash-free analogue of [`ConceptHierarchy::nodes_of`]. Unknown ids
    /// yield an empty slice.
    pub fn positions_of(&self, d: u32) -> &[NodeId] {
        match self.pos_off.get(d as usize..d as usize + 2) {
            Some(w) => &self.pos_idx[w[0] as usize..w[1] as usize],
            None => &[],
        }
    }
}

impl ConceptHierarchy {
    /// Builds a hierarchy from descriptor records (e.g. a parsed MeSH file).
    ///
    /// Every tree number's parent position must itself be present; use
    /// [`HierarchyBuilder`] with
    /// [`auto_intermediates`](HierarchyBuilder::auto_intermediates) to relax
    /// this.
    pub fn from_descriptors(descriptors: &[Descriptor]) -> Result<Self, MeshError> {
        HierarchyBuilder::new().build(descriptors)
    }

    /// Builds a hierarchy directly from pre-resolved arena parts, bypassing
    /// tree numbers entirely. Crate-internal: the synthetic generators use
    /// it for shapes that are impractical to express as tree numbers (a
    /// 100k-level chain's dotted position strings alone would be quadratic
    /// in the depth). Synthesized nodes carry no [`TreeNumber`].
    ///
    /// # Panics
    /// Entry 0 must be the root (`parents[0] == None`, and only entry 0 may
    /// be parentless); every other parent index must refer to an *earlier*
    /// entry, preserving the arena's parent-before-child order that depth
    /// computation and bottom-up passes rely on. All three slices must have
    /// equal length.
    pub(crate) fn from_arena_parts(
        labels: Vec<String>,
        descriptors: Vec<Option<DescriptorId>>,
        parents: Vec<Option<u32>>,
    ) -> ConceptHierarchy {
        assert_eq!(labels.len(), parents.len(), "labels/parents length");
        assert_eq!(
            descriptors.len(),
            parents.len(),
            "descriptors/parents length"
        );
        assert!(
            parents.first().is_some_and(Option::is_none),
            "entry 0 must be the parentless root"
        );
        let mut nodes: Vec<Node> = Vec::with_capacity(labels.len());
        let mut positions: HashMap<DescriptorId, Vec<NodeId>> = HashMap::new();
        for (i, (label, descriptor)) in labels.into_iter().zip(descriptors).enumerate() {
            let id = NodeId(i as u32);
            let (parent, depth) = match parents[i] {
                None => {
                    assert!(i == 0, "only entry 0 may be parentless");
                    (None, 0)
                }
                Some(p) => {
                    assert!((p as usize) < i, "parents must precede children");
                    nodes[p as usize].children.push(id);
                    (Some(NodeId(p)), nodes[p as usize].depth + 1)
                }
            };
            if let Some(d) = descriptor {
                positions.entry(d).or_default().push(id);
            }
            nodes.push(Node {
                label,
                descriptor,
                tree_number: None,
                parent,
                children: Vec::new(),
                depth,
            });
        }
        ConceptHierarchy {
            nodes,
            positions,
            columns: OnceLock::new(),
        }
    }

    /// Total number of nodes, including the synthetic root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the hierarchy holds only the synthetic root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The synthetic root node.
    pub fn root(&self) -> NodeRef<'_> {
        self.node(NodeId::ROOT)
    }

    /// Borrow a node by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range (ids are only valid for the hierarchy
    /// that produced them).
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        assert!(
            id.index() < self.nodes.len(),
            "NodeId {} out of range for hierarchy of {} nodes",
            id.0,
            self.nodes.len()
        );
        NodeRef {
            hierarchy: self,
            id,
        }
    }

    /// The columnar (SoA) view of the arena, built on first use and cached
    /// for the hierarchy's lifetime. Cheap to call afterwards.
    pub fn columns(&self) -> &HierarchyColumns {
        self.columns
            .get_or_init(|| HierarchyColumns::build(&self.nodes))
    }

    /// All positions of a descriptor, or an empty slice if unknown.
    pub fn nodes_of(&self, descriptor: DescriptorId) -> &[NodeId] {
        self.positions
            .get(&descriptor)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct descriptors.
    pub fn descriptor_count(&self) -> usize {
        self.positions.len()
    }

    /// Iterates over all node ids in pre-order (root first).
    pub fn iter_preorder(&self) -> PreorderIter<'_> {
        PreorderIter {
            hierarchy: self,
            stack: vec![NodeId::ROOT],
        }
    }

    /// Iterates over the subtree rooted at `id` in pre-order (including `id`).
    pub fn iter_subtree(&self, id: NodeId) -> PreorderIter<'_> {
        self.node(id); // bounds check
        PreorderIter {
            hierarchy: self,
            stack: vec![id],
        }
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.iter_subtree(id).count()
    }

    /// Whether `ancestor` lies on the root path of `node` (proper ancestry).
    pub fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        let mut cur = self.node(node).parent();
        while let Some(p) = cur {
            if p == ancestor {
                return true;
            }
            cur = self.node(p).parent();
        }
        false
    }

    /// The node ids on the path from the root to `id`, inclusive at both ends.
    pub fn path_from_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = vec![id];
        let mut cur = self.node(id).parent();
        while let Some(p) = cur {
            path.push(p);
            cur = self.node(p).parent();
        }
        path.reverse();
        path
    }

    /// Looks up a node by exact label (linear scan; intended for tests,
    /// examples and workload calibration, not hot paths).
    pub fn find_by_label(&self, label: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.label == label)
            .map(|i| NodeId(i as u32))
    }

    /// Maximum depth of any node (root = 0).
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }
}

/// A borrowed view of one hierarchy node, with navigation helpers.
#[derive(Debug, Clone, Copy)]
pub struct NodeRef<'h> {
    hierarchy: &'h ConceptHierarchy,
    id: NodeId,
}

impl<'h> NodeRef<'h> {
    fn raw(&self) -> &'h Node {
        &self.hierarchy.nodes[self.id.index()]
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The concept label (`"MeSH"` for the root).
    pub fn label(&self) -> &'h str {
        &self.raw().label
    }

    /// The descriptor occupying this position (`None` for the root).
    pub fn descriptor(&self) -> Option<DescriptorId> {
        self.raw().descriptor
    }

    /// The positional tree number (`None` for the root).
    pub fn tree_number(&self) -> Option<&'h TreeNumber> {
        self.raw().tree_number.as_ref()
    }

    /// Parent node id (`None` for the root).
    pub fn parent(&self) -> Option<NodeId> {
        self.raw().parent
    }

    /// Child node ids, in tree-number order.
    pub fn children(&self) -> &'h [NodeId] {
        &self.raw().children
    }

    /// Depth from the root (root = 0; top-level categories = 1).
    pub fn depth(&self) -> u32 {
        self.raw().depth
    }

    /// Whether this node has no children.
    pub fn is_leaf(&self) -> bool {
        self.raw().children.is_empty()
    }
}

/// Pre-order node iterator over a hierarchy or subtree.
pub struct PreorderIter<'h> {
    hierarchy: &'h ConceptHierarchy,
    stack: Vec<NodeId>,
}

impl Iterator for PreorderIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = &self.hierarchy.nodes[id.index()].children;
        // Push in reverse so the leftmost child is visited first.
        self.stack.extend(children.iter().rev().copied());
        Some(id)
    }
}

/// Builder assembling a [`ConceptHierarchy`] from descriptor records.
#[derive(Debug, Clone, Default)]
pub struct HierarchyBuilder {
    auto_intermediates: bool,
    root_label: Option<String>,
}

impl HierarchyBuilder {
    /// A builder with strict parent checking and the default `MeSH` root
    /// label.
    pub fn new() -> Self {
        HierarchyBuilder::default()
    }

    /// When enabled, tree positions whose parent position has no descriptor
    /// get a synthetic placeholder node instead of failing. Real MeSH files
    /// always contain every intermediate position, so this is off by default.
    pub fn auto_intermediates(mut self, yes: bool) -> Self {
        self.auto_intermediates = yes;
        self
    }

    /// Overrides the root label (default `"MeSH"`).
    pub fn root_label(mut self, label: impl Into<String>) -> Self {
        self.root_label = Some(label.into());
        self
    }

    /// Builds the hierarchy.
    pub fn build(&self, descriptors: &[Descriptor]) -> Result<ConceptHierarchy, MeshError> {
        // One entry per (position, descriptor); sorted so parents precede
        // children (a parent's dotted string is a strict prefix, and '.' is
        // smaller than any alphanumeric byte, so plain string order works).
        let mut entries: Vec<(&TreeNumber, &Descriptor)> = descriptors
            .iter()
            .flat_map(|d| d.tree_numbers.iter().map(move |tn| (tn, d)))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));

        let root = Node {
            label: self
                .root_label
                .clone()
                .unwrap_or_else(|| "MeSH".to_string()),
            descriptor: None,
            tree_number: None,
            parent: None,
            children: Vec::new(),
            depth: 0,
        };
        let mut nodes = vec![root];
        let mut by_tree_number: HashMap<String, NodeId> = HashMap::with_capacity(entries.len());
        let mut positions: HashMap<DescriptorId, Vec<NodeId>> = HashMap::new();

        // Appends a node and registers its position; returns the new id.
        fn push_node(
            nodes: &mut Vec<Node>,
            by_tree_number: &mut HashMap<String, NodeId>,
            parent: NodeId,
            label: String,
            descriptor: Option<DescriptorId>,
            tree_number: TreeNumber,
        ) -> NodeId {
            let id = NodeId(nodes.len() as u32);
            let depth = nodes[parent.index()].depth + 1;
            by_tree_number.insert(tree_number.to_string(), id);
            nodes.push(Node {
                label,
                descriptor,
                tree_number: Some(tree_number),
                parent: Some(parent),
                children: Vec::new(),
                depth,
            });
            nodes[parent.index()].children.push(id);
            id
        }

        for (tn, desc) in entries {
            if by_tree_number.contains_key(tn.as_str()) {
                return Err(MeshError::DuplicateTreeNumber {
                    tree_number: tn.to_string(),
                });
            }
            let parent_id = match tn.parent() {
                None => NodeId::ROOT,
                Some(parent_tn) => match by_tree_number.get(parent_tn.as_str()) {
                    Some(&id) => id,
                    None if self.auto_intermediates => {
                        // Create the whole missing chain top-down.
                        let mut missing = vec![parent_tn.clone()];
                        while let Some(next) = missing.last().and_then(TreeNumber::parent) {
                            if by_tree_number.contains_key(next.as_str()) {
                                break;
                            }
                            missing.push(next);
                        }
                        let mut parent = missing
                            .last()
                            .and_then(TreeNumber::parent)
                            .map(|p| by_tree_number[p.as_str()])
                            .unwrap_or(NodeId::ROOT);
                        for m in missing.into_iter().rev() {
                            let label = format!("[{m}]");
                            parent =
                                push_node(&mut nodes, &mut by_tree_number, parent, label, None, m);
                        }
                        parent
                    }
                    None => {
                        return Err(MeshError::MissingParent {
                            tree_number: tn.to_string(),
                        });
                    }
                },
            };
            let id = push_node(
                &mut nodes,
                &mut by_tree_number,
                parent_id,
                desc.label.clone(),
                Some(desc.id),
                tn.clone(),
            );
            positions.entry(desc.id).or_default().push(id);
        }

        Ok(ConceptHierarchy {
            nodes,
            positions,
            columns: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tn(s: &str) -> TreeNumber {
        TreeNumber::parse(s).unwrap()
    }

    fn sample() -> Vec<Descriptor> {
        vec![
            Descriptor::new(DescriptorId(1), "Phenomena", vec![tn("G07")]),
            Descriptor::new(DescriptorId(2), "Cell Physiology", vec![tn("G07.100")]),
            Descriptor::new(DescriptorId(3), "Cell Death", vec![tn("G07.100.200")]),
            Descriptor::new(
                DescriptorId(4),
                "Apoptosis",
                vec![tn("G07.100.200.100"), tn("C23.550")],
            ),
            Descriptor::new(DescriptorId(5), "Pathologic Processes", vec![tn("C23")]),
        ]
    }

    #[test]
    fn builds_tree_with_correct_shape() {
        let h = ConceptHierarchy::from_descriptors(&sample()).unwrap();
        assert_eq!(h.len(), 7); // root + 6 positions
        let root = h.root();
        assert_eq!(root.label(), "MeSH");
        assert_eq!(root.children().len(), 2); // C23, G07
        let c23 = h.node(root.children()[0]);
        assert_eq!(c23.label(), "Pathologic Processes");
        assert_eq!(c23.depth(), 1);
    }

    #[test]
    fn multi_position_descriptor_yields_multiple_nodes() {
        let h = ConceptHierarchy::from_descriptors(&sample()).unwrap();
        let apoptosis = h.nodes_of(DescriptorId(4));
        assert_eq!(apoptosis.len(), 2);
        let depths: Vec<u32> = apoptosis.iter().map(|&id| h.node(id).depth()).collect();
        assert!(depths.contains(&2) && depths.contains(&4));
    }

    #[test]
    fn missing_parent_is_an_error_by_default() {
        let descs = vec![Descriptor::new(
            DescriptorId(1),
            "Orphan",
            vec![tn("A01.100")],
        )];
        let err = ConceptHierarchy::from_descriptors(&descs).unwrap_err();
        assert!(matches!(err, MeshError::MissingParent { .. }));
    }

    #[test]
    fn auto_intermediates_creates_placeholders() {
        let descs = vec![Descriptor::new(
            DescriptorId(1),
            "Deep",
            vec![tn("A01.100.200")],
        )];
        let h = HierarchyBuilder::new()
            .auto_intermediates(true)
            .build(&descs)
            .unwrap();
        assert_eq!(h.len(), 4); // root + A01 + A01.100 + A01.100.200
        let deep = h.find_by_label("Deep").unwrap();
        assert_eq!(h.node(deep).depth(), 3);
        let path = h.path_from_root(deep);
        assert_eq!(path.len(), 4);
        assert_eq!(path[0], NodeId::ROOT);
    }

    #[test]
    fn duplicate_position_is_rejected() {
        let descs = vec![
            Descriptor::new(DescriptorId(1), "One", vec![tn("A01")]),
            Descriptor::new(DescriptorId(2), "Two", vec![tn("A01")]),
        ];
        let err = ConceptHierarchy::from_descriptors(&descs).unwrap_err();
        assert!(matches!(err, MeshError::DuplicateTreeNumber { .. }));
    }

    #[test]
    fn preorder_visits_every_node_once() {
        let h = ConceptHierarchy::from_descriptors(&sample()).unwrap();
        let visited: Vec<NodeId> = h.iter_preorder().collect();
        assert_eq!(visited.len(), h.len());
        let mut sorted = visited.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), h.len());
        assert_eq!(visited[0], NodeId::ROOT);
    }

    #[test]
    fn subtree_iteration_and_size() {
        let h = ConceptHierarchy::from_descriptors(&sample()).unwrap();
        let g07 = h.find_by_label("Phenomena").unwrap();
        assert_eq!(h.subtree_size(g07), 4); // Phenomena, Cell Physiology, Cell Death, Apoptosis
    }

    #[test]
    fn ancestry_queries() {
        let h = ConceptHierarchy::from_descriptors(&sample()).unwrap();
        let g07 = h.find_by_label("Phenomena").unwrap();
        let death = h.find_by_label("Cell Death").unwrap();
        assert!(h.is_ancestor(g07, death));
        assert!(h.is_ancestor(NodeId::ROOT, death));
        assert!(!h.is_ancestor(death, g07));
        assert!(!h.is_ancestor(death, death));
    }

    #[test]
    fn find_by_label_and_misses() {
        let h = ConceptHierarchy::from_descriptors(&sample()).unwrap();
        assert!(h.find_by_label("Apoptosis").is_some());
        assert!(h.find_by_label("apoptosis").is_none()); // exact match only
        assert!(h.find_by_label("Nope").is_none());
        assert_eq!(h.find_by_label("MeSH"), Some(NodeId::ROOT));
    }

    #[test]
    fn max_depth_and_descriptor_count() {
        let h = ConceptHierarchy::from_descriptors(&sample()).unwrap();
        assert_eq!(h.max_depth(), 4); // G07.100.200.100
        assert_eq!(h.descriptor_count(), 5);
    }

    #[test]
    fn subtree_of_a_leaf_is_itself() {
        let h = ConceptHierarchy::from_descriptors(&sample()).unwrap();
        let leaf = h
            .iter_preorder()
            .find(|&n| h.node(n).is_leaf())
            .expect("some leaf exists");
        assert_eq!(h.iter_subtree(leaf).collect::<Vec<_>>(), vec![leaf]);
        assert_eq!(h.subtree_size(leaf), 1);
    }

    #[test]
    fn empty_descriptor_list_builds_root_only() {
        let h = ConceptHierarchy::from_descriptors(&[]).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.len(), 1);
        assert_eq!(h.root().label(), "MeSH");
        assert!(h.nodes_of(DescriptorId(1)).is_empty());
    }

    #[test]
    fn custom_root_label() {
        let h = HierarchyBuilder::new()
            .root_label("GO")
            .build(&sample())
            .unwrap();
        assert_eq!(h.root().label(), "GO");
    }

    #[test]
    fn arena_parts_constructor_builds_consistent_hierarchy() {
        let h = ConceptHierarchy::from_arena_parts(
            vec!["MeSH".into(), "a".into(), "b".into(), "c".into()],
            vec![
                None,
                Some(DescriptorId(1)),
                Some(DescriptorId(2)),
                Some(DescriptorId(1)),
            ],
            vec![None, Some(0), Some(1), Some(0)],
        );
        assert_eq!(h.len(), 4);
        assert_eq!(h.node(NodeId(2)).depth(), 2);
        assert_eq!(h.max_depth(), 2);
        assert_eq!(h.nodes_of(DescriptorId(1)), &[NodeId(1), NodeId(3)]);
        assert!(h.is_ancestor(NodeId::ROOT, NodeId(2)));
        assert!(h.node(NodeId(1)).tree_number().is_none());
        assert_eq!(h.root().children(), &[NodeId(1), NodeId(3)]);
    }

    #[test]
    fn serde_round_trip() {
        let h = ConceptHierarchy::from_descriptors(&sample()).unwrap();
        let json = serde_json::to_string(&h).unwrap();
        let back: ConceptHierarchy = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), h.len());
        assert_eq!(back.root().children().len(), h.root().children().len());
        assert_eq!(back.nodes_of(DescriptorId(4)).len(), 2);
    }
}
