//! Parser for the MeSH ASCII descriptor format (the `d20XX.bin` files NLM
//! distributes alongside the XML release).
//!
//! The format is line-oriented: records are introduced by a line consisting
//! of `*NEWRECORD`, followed by `KEY = value` element lines. The elements
//! BioNav needs are:
//!
//! * `MH`  — the main heading (concept label),
//! * `MN`  — a tree number; repeated once per position the descriptor
//!   occupies,
//! * `UI`  — the NLM unique identifier, `D` followed by digits.
//!
//! All other elements (`AN`, `MS`, `ENTRY`, …) are skipped. Records with no
//! `MN` element (check tags and some pharmacological-action descriptors) are
//! skipped too: they occupy no tree position and can never appear in a
//! navigation tree.
//!
//! ```
//! use bionav_mesh::parser::parse_ascii;
//!
//! let src = "\
//! *NEWRECORD
//! RECTYPE = D
//! MH = Body Regions
//! MN = A01
//! UI = D001829
//!
//! *NEWRECORD
//! MH = Abdomen
//! MN = A01.047
//! UI = D000005
//! ";
//! let descriptors = parse_ascii(src).unwrap();
//! assert_eq!(descriptors.len(), 2);
//! assert_eq!(descriptors[1].label, "Abdomen");
//! ```

use std::collections::HashMap;

use crate::{Descriptor, DescriptorId, MeshError, TreeNumber};

/// A raw record as it appears in the file, before descriptor-id resolution.
#[derive(Debug, Clone, Default)]
struct RawRecord {
    heading: Option<String>,
    tree_numbers: Vec<TreeNumber>,
    ui: Option<String>,
    first_line: usize,
}

/// Parses MeSH ASCII descriptor source into [`Descriptor`]s.
///
/// Descriptor ids are taken from the numeric part of the `UI` element when
/// present (e.g. `D001829` → id 1829); records without a `UI` get ids
/// allocated past the largest seen, so synthetic test fixtures can omit them.
pub fn parse_ascii(source: &str) -> Result<Vec<Descriptor>, MeshError> {
    let mut records: Vec<RawRecord> = Vec::new();
    let mut current: Option<RawRecord> = None;

    for (idx, line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if line == "*NEWRECORD" {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            current = Some(RawRecord {
                first_line: line_no,
                ..RawRecord::default()
            });
            continue;
        }
        let Some(rec) = current.as_mut() else {
            return Err(MeshError::MalformedRecord {
                line: line_no,
                reason: "element line before any *NEWRECORD".to_string(),
            });
        };
        let Some((key, value)) = line.split_once(" = ") else {
            return Err(MeshError::MalformedRecord {
                line: line_no,
                reason: format!("expected `KEY = value`, got {line:?}"),
            });
        };
        // Explicit arms rather than side-effectful match guards: the
        // replace() call must run exactly once per element line.
        #[allow(clippy::collapsible_match)]
        match key {
            "MH" => {
                if rec.heading.replace(value.to_string()).is_some() {
                    return Err(MeshError::MalformedRecord {
                        line: line_no,
                        reason: "duplicate MH element in record".to_string(),
                    });
                }
            }
            "MN" => rec.tree_numbers.push(TreeNumber::parse(value)?),
            "UI" => {
                if rec.ui.replace(value.to_string()).is_some() {
                    return Err(MeshError::MalformedRecord {
                        line: line_no,
                        reason: "duplicate UI element in record".to_string(),
                    });
                }
            }
            _ => {} // every other element type is irrelevant to navigation
        }
    }
    if let Some(rec) = current.take() {
        records.push(rec);
    }

    // Resolve descriptor ids: numeric UI when available, else allocate.
    let mut used: HashMap<u32, usize> = HashMap::new();
    let mut max_id = 0u32;
    let mut descriptors = Vec::with_capacity(records.len());
    let mut pending_without_ui = Vec::new();

    for rec in records {
        if rec.tree_numbers.is_empty() {
            continue; // positionless record (check tag etc.)
        }
        let heading = rec
            .heading
            .clone()
            .ok_or_else(|| MeshError::MalformedRecord {
                line: rec.first_line,
                reason: "record has MN but no MH element".to_string(),
            })?;
        match rec.ui.as_deref().and_then(parse_ui) {
            Some(id) => {
                if let Some(&other) = used.get(&id) {
                    return Err(MeshError::MalformedRecord {
                        line: rec.first_line,
                        reason: format!("UI D{id:06} already used by record at line {other}"),
                    });
                }
                used.insert(id, rec.first_line);
                max_id = max_id.max(id);
                descriptors.push(Descriptor::new(DescriptorId(id), heading, rec.tree_numbers));
            }
            None => pending_without_ui.push((heading, rec.tree_numbers)),
        }
    }
    for (heading, tree_numbers) in pending_without_ui {
        max_id += 1;
        descriptors.push(Descriptor::new(DescriptorId(max_id), heading, tree_numbers));
    }
    Ok(descriptors)
}

fn parse_ui(ui: &str) -> Option<u32> {
    ui.strip_prefix('D')?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConceptHierarchy;

    const FIXTURE: &str = "\
*NEWRECORD
RECTYPE = D
MH = Body Regions
AN = general or unspecified
MN = A01
UI = D001829

*NEWRECORD
MH = Abdomen
MN = A01.047
UI = D000005

*NEWRECORD
MH = Abdominal Cavity
MN = A01.047.025
UI = D034841

*NEWRECORD
MH = Female
MN = A01.047.100
MN = B01.050
UI = D005260

*NEWRECORD
MH = Organisms Check Tag
UI = D999999
";

    #[test]
    fn parses_fixture() {
        let descs = parse_ascii(FIXTURE).unwrap();
        // The check tag (no MN) is dropped.
        assert_eq!(descs.len(), 4);
        let female = descs.iter().find(|d| d.label == "Female").unwrap();
        assert_eq!(female.tree_numbers.len(), 2);
        assert_eq!(female.id, DescriptorId(5260));
    }

    #[test]
    fn parsed_records_build_a_hierarchy() {
        let mut descs = parse_ascii(FIXTURE).unwrap();
        // B01 parent for Female's second position.
        descs.push(Descriptor::new(
            DescriptorId(777),
            "Animals",
            vec![TreeNumber::parse("B01").unwrap()],
        ));
        let h = ConceptHierarchy::from_descriptors(&descs).unwrap();
        assert_eq!(h.len(), 7); // root + 6 positions
        assert_eq!(h.nodes_of(DescriptorId(5260)).len(), 2);
    }

    #[test]
    fn records_without_ui_get_fresh_ids() {
        let src = "*NEWRECORD\nMH = Thing\nMN = A01\n";
        let descs = parse_ascii(src).unwrap();
        assert_eq!(descs.len(), 1);
        assert_eq!(descs[0].id, DescriptorId(1));
    }

    #[test]
    fn element_before_record_is_an_error() {
        let err = parse_ascii("MH = Stray\n").unwrap_err();
        assert!(matches!(err, MeshError::MalformedRecord { line: 1, .. }));
    }

    #[test]
    fn missing_separator_is_an_error() {
        let err = parse_ascii("*NEWRECORD\nMH: Wrong\n").unwrap_err();
        assert!(matches!(err, MeshError::MalformedRecord { line: 2, .. }));
    }

    #[test]
    fn record_with_mn_but_no_mh_is_an_error() {
        let err = parse_ascii("*NEWRECORD\nMN = A01\n").unwrap_err();
        assert!(matches!(err, MeshError::MalformedRecord { .. }));
    }

    #[test]
    fn duplicate_ui_is_an_error() {
        let src = "\
*NEWRECORD
MH = One
MN = A01
UI = D000001

*NEWRECORD
MH = Two
MN = A02
UI = D000001
";
        let err = parse_ascii(src).unwrap_err();
        assert!(matches!(err, MeshError::MalformedRecord { .. }));
    }

    #[test]
    fn crlf_line_endings_parse() {
        let src = "*NEWRECORD\r\nMH = Windows Record\r\nMN = A01\r\nUI = D000001\r\n";
        let descs = parse_ascii(src).unwrap();
        assert_eq!(descs.len(), 1);
        assert_eq!(descs[0].label, "Windows Record");
    }

    #[test]
    fn empty_input_yields_no_descriptors() {
        assert!(parse_ascii("").unwrap().is_empty());
        assert!(parse_ascii("\n\n\n").unwrap().is_empty());
    }

    #[test]
    fn values_may_contain_equals_signs() {
        // Only the first " = " separates key from value.
        let src = "*NEWRECORD\nMH = Ratio A = B\nMN = A01\n";
        let descs = parse_ascii(src).unwrap();
        assert_eq!(descs[0].label, "Ratio A = B");
    }

    #[test]
    fn bad_tree_number_propagates() {
        let err = parse_ascii("*NEWRECORD\nMH = X\nMN = A0..1\n").unwrap_err();
        assert!(matches!(err, MeshError::InvalidTreeNumber { .. }));
    }
}
