use serde::{Deserialize, Serialize};

use crate::TreeNumber;

/// Identifier of a MeSH descriptor (main heading), e.g. `D009369` for
/// *Neoplasms*. One descriptor may occupy several positions in the tree; all
/// positions share the descriptor id, which is what citations are annotated
/// with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DescriptorId(pub u32);

impl DescriptorId {
    /// Renders the id in the `D%06d` style of NLM unique identifiers.
    pub fn as_ui(self) -> String {
        format!("D{:06}", self.0)
    }
}

/// A MeSH descriptor: a concept label plus the tree positions it occupies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor {
    /// Stable unique identifier.
    pub id: DescriptorId,
    /// Human-readable main heading, e.g. `"Cell Proliferation"`.
    pub label: String,
    /// Every tree position this descriptor occupies (non-empty, sorted).
    pub tree_numbers: Vec<TreeNumber>,
}

impl Descriptor {
    /// Creates a descriptor, normalizing tree numbers to sorted order.
    pub fn new(
        id: DescriptorId,
        label: impl Into<String>,
        mut tree_numbers: Vec<TreeNumber>,
    ) -> Self {
        tree_numbers.sort();
        tree_numbers.dedup();
        Descriptor {
            id,
            label: label.into(),
            tree_numbers,
        }
    }

    /// The shallowest depth at which this descriptor appears.
    pub fn min_depth(&self) -> Option<usize> {
        self.tree_numbers.iter().map(TreeNumber::depth).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ui_rendering_pads_to_six_digits() {
        assert_eq!(DescriptorId(42).as_ui(), "D000042");
        assert_eq!(DescriptorId(1_234_567).as_ui(), "D1234567");
    }

    #[test]
    fn descriptor_normalizes_tree_numbers() {
        let d = Descriptor::new(
            DescriptorId(1),
            "Apoptosis",
            vec![
                TreeNumber::parse("G04.335.122").unwrap(),
                TreeNumber::parse("C23.550.100").unwrap(),
                TreeNumber::parse("G04.335.122").unwrap(),
            ],
        );
        assert_eq!(d.tree_numbers.len(), 2);
        assert_eq!(d.tree_numbers[0].as_str(), "C23.550.100");
        assert_eq!(d.min_depth(), Some(3));
    }
}
