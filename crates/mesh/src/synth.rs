//! Deterministic synthetic MeSH-scale hierarchy generator.
//!
//! The BioNav experiments run against the 2009 MeSH release (48k+ concept
//! nodes, 16 top-level categories, depth up to ~11, very bushy upper
//! levels). That data file is licensed and not redistributable, so the
//! reproduction generates a hierarchy with the same *shape statistics*; the
//! navigation algorithms only ever observe tree structure, labels and
//! per-concept citation counts, all of which this module controls.
//!
//! Generation is fully deterministic for a given [`SynthConfig::seed`], so
//! every experiment in the repository is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use crate::{ConceptHierarchy, Descriptor, DescriptorId, MeshError, TreeNumber};

/// Workload-shrink multiplier for sanitizer runs.
///
/// Reads `BIONAV_SANITIZER_SCALE` — a float in `(0, 1]`, clamped to
/// `[0.01, 1.0]`, defaulting to `1.0` when unset or unparseable. Heavy test
/// fixtures multiply node/citation counts by this so instrumented runs
/// (Miri, ThreadSanitizer) finish in minutes instead of hours; functional
/// assertions are unchanged, only fixture sizes shrink.
pub fn sanitizer_scale() -> f64 {
    std::env::var("BIONAV_SANITIZER_SCALE")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .map_or(1.0, |s| s.clamp(0.01, 1.0))
}

/// `n` shrunk by [`sanitizer_scale`] but never below `floor` — fixtures
/// need a minimum amount of structure for their assertions to be
/// meaningful (multi-level hierarchies, multi-page components, …).
pub fn sanitizer_scaled(n: usize, floor: usize) -> usize {
    let scaled = (n as f64 * sanitizer_scale()).round() as usize;
    scaled.max(floor)
}

/// Tuning knobs for the synthetic hierarchy.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// RNG seed; equal seeds produce identical hierarchies.
    pub seed: u64,
    /// Approximate number of concept positions to generate (the real figure
    /// lands within a few percent of this).
    pub approx_size: usize,
    /// Number of top-level categories (MeSH 2009 has 16: A–N, V, Z).
    pub top_categories: usize,
    /// Maximum tree depth, root excluded (MeSH: ~11).
    pub max_depth: u32,
    /// Fraction of descriptors that receive a second tree position, grafted
    /// under an unrelated parent (MeSH descriptors are frequently
    /// poly-hierarchical; this is what creates duplicate citations across
    /// navigation-tree branches).
    pub extra_position_rate: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 0xB10_AA5,
            approx_size: 48_000,
            top_categories: 16,
            max_depth: 11,
            extra_position_rate: 0.12,
        }
    }
}

impl SynthConfig {
    /// A small hierarchy (~`size` nodes) for tests and examples.
    pub fn small(seed: u64, size: usize) -> Self {
        SynthConfig {
            seed,
            approx_size: size,
            top_categories: 4.min(size / 8).max(1),
            max_depth: 7,
            extra_position_rate: 0.12,
        }
    }
}

/// Generates the descriptor records for a synthetic hierarchy.
///
/// Exposed separately from [`generate`] so callers (the workload crate) can
/// rename descriptors — pinning paper-specific concept labels like
/// `"Cell Proliferation"` — before building the immutable hierarchy.
pub fn generate_descriptors(cfg: &SynthConfig) -> Vec<Descriptor> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut labels = LabelFactory::new();
    let mut descriptors: Vec<Descriptor> = Vec::with_capacity(cfg.approx_size + 16);
    let mut next_id = 1u32;

    let per_category = (cfg.approx_size.max(cfg.top_categories)) / cfg.top_categories;
    for cat in 0..cfg.top_categories {
        let letter = (b'A' + (cat % 26) as u8) as char;
        let root_tn = TreeNumber::parse(&format!("{letter}{:02}", cat / 26 + 1))
            // lint: allow(no-unwrap) — the format string always yields
            // `<letter><2 digits>`, the grammar's category form
            .expect("generated category numbers are valid");
        // ±25% jitter keeps categories from being eerily equal-sized.
        let jitter = rng.gen_range(0.75..1.25);
        let budget = ((per_category as f64) * jitter).round().max(1.0) as usize;
        grow_subtree(
            &mut rng,
            &mut labels,
            &mut descriptors,
            &mut next_id,
            root_tn,
            1,
            budget,
            cfg.max_depth,
        );
    }

    graft_extra_positions(&mut rng, &mut descriptors, cfg);
    descriptors
}

/// Generates a complete synthetic [`ConceptHierarchy`].
pub fn generate(cfg: &SynthConfig) -> Result<ConceptHierarchy, MeshError> {
    ConceptHierarchy::from_descriptors(&generate_descriptors(cfg))
}

/// A degenerate deep-narrow hierarchy: one chain of `levels` concept nodes
/// under the root, node `i` (1-based) labeled `chain-i` and carrying
/// `DescriptorId(i)`.
///
/// This is the adversarial shape for anything that recurses per hierarchy
/// level — at 100k+ levels it overflows the default thread stack, which is
/// why the navigation-tree embedding walks with an explicit work-stack
/// (see the deep-chain regression tests in `bionav-core`). Built through
/// the direct arena constructor: expressing a 100k-level chain as dotted
/// tree-number strings would cost quadratic memory, so the nodes carry no
/// tree number.
pub fn deep_chain(levels: usize) -> ConceptHierarchy {
    let mut labels = Vec::with_capacity(levels + 1);
    let mut descriptors = Vec::with_capacity(levels + 1);
    let mut parents = Vec::with_capacity(levels + 1);
    labels.push("MeSH".to_string());
    descriptors.push(None);
    parents.push(None);
    for i in 1..=levels {
        labels.push(format!("chain-{i}"));
        descriptors.push(Some(DescriptorId(i as u32)));
        parents.push(Some((i - 1) as u32));
    }
    ConceptHierarchy::from_arena_parts(labels, descriptors, parents)
}

/// Recursively grows the subtree at `tn`, consuming `budget` nodes total
/// (including the node at `tn` itself).
#[allow(clippy::too_many_arguments)]
fn grow_subtree(
    rng: &mut StdRng,
    labels: &mut LabelFactory,
    out: &mut Vec<Descriptor>,
    next_id: &mut u32,
    tn: TreeNumber,
    depth: u32,
    budget: usize,
    max_depth: u32,
) {
    debug_assert!(budget >= 1);
    let id = DescriptorId(*next_id);
    *next_id += 1;
    out.push(Descriptor::new(id, labels.fresh(rng), vec![tn.clone()]));

    let remaining = budget - 1;
    if remaining == 0 || depth >= max_depth {
        return;
    }

    // MeSH is bushy near the top and thins out with depth.
    let mean_children = match depth {
        1 => 24.0,
        2 => 8.0,
        3 => 5.0,
        4 => 4.0,
        _ => 3.0,
    };
    let spread = (mean_children * rng.gen_range(0.5..1.5f64)).round() as usize;
    let n_children = spread.clamp(1, remaining);

    // Split the remaining budget across children with random weights so
    // sibling subtrees differ in size (some deep chains, some shallow fans).
    let mut weights: Vec<f64> = (0..n_children)
        .map(|_| rng.gen_range(0.2..1.8f64))
        .collect();
    let total: f64 = weights.iter().sum();
    weights.iter_mut().for_each(|w| *w /= total);

    let mut allocated = 0usize;
    let mut shares: Vec<usize> = weights
        .iter()
        .map(|w| {
            let s = ((remaining as f64) * w).floor() as usize;
            allocated += s;
            s
        })
        .collect();
    // Distribute the rounding remainder, then guarantee every child ≥ 1.
    let mut leftover = remaining - allocated;
    for s in shares.iter_mut() {
        if leftover == 0 {
            break;
        }
        *s += 1;
        leftover -= 1;
    }
    shares.retain(|&s| s > 0);

    for (i, share) in shares.iter().enumerate() {
        // MeSH child segments are 3-digit, non-contiguous; spacing by 7
        // mimics the gaps left for future insertions.
        let segment = format!("{:03}", (i + 1) * 7);
        grow_subtree(
            rng,
            labels,
            out,
            next_id,
            tn.child(&segment),
            depth + 1,
            *share,
            max_depth,
        );
    }
}

/// Gives a random sample of descriptors a second tree position under an
/// unrelated parent, mirroring MeSH poly-hierarchy.
fn graft_extra_positions(rng: &mut StdRng, descriptors: &mut [Descriptor], cfg: &SynthConfig) {
    let n = descriptors.len();
    if n < 4 || cfg.extra_position_rate <= 0.0 {
        return;
    }
    // Segment sets per parent position, so grafted children never collide.
    let mut used: HashSet<String> = descriptors
        .iter()
        .flat_map(|d| d.tree_numbers.iter().map(|t| t.to_string()))
        .collect();
    let candidates: Vec<usize> = {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        let count = ((n as f64) * cfg.extra_position_rate).round() as usize;
        idx.truncate(count);
        idx
    };
    // Hosts: positions shallow enough to accept a child within max_depth.
    let hosts: Vec<TreeNumber> = descriptors
        .iter()
        .flat_map(|d| d.tree_numbers.iter())
        .filter(|t| (t.depth() as u32) < cfg.max_depth)
        .cloned()
        .collect();
    if hosts.is_empty() {
        return;
    }
    for di in candidates {
        let host = hosts[rng.gen_range(0..hosts.len())].clone();
        // Grafting under one's own position would create a cycle of meaning
        // (a concept as its own descendant); skip those hosts.
        if descriptors[di]
            .tree_numbers
            .iter()
            .any(|t| t.is_ancestor_or_self(&host))
        {
            continue;
        }
        // Find a free segment in the 500+ range (primary children use ≤ ~350).
        let mut seg = 500 + rng.gen_range(0..400u32);
        let tn = loop {
            let candidate = host.child(&format!("{seg:03}"));
            if !used.contains(candidate.as_str()) {
                break candidate;
            }
            seg = 500 + (seg + 1) % 500;
        };
        used.insert(tn.to_string());
        descriptors[di].tree_numbers.push(tn);
        descriptors[di].tree_numbers.sort();
    }
}

/// Produces unique, readable pseudo-biomedical concept labels.
struct LabelFactory {
    seen: HashSet<String>,
    counter: u64,
}

const HEADS: &[&str] = &[
    "Cell",
    "Gene",
    "Protein",
    "Membrane",
    "Nuclear",
    "Mitochondrial",
    "Hepatic",
    "Renal",
    "Cardiac",
    "Neural",
    "Vascular",
    "Epithelial",
    "Lymphoid",
    "Thymic",
    "Cortical",
    "Plasma",
    "Receptor",
    "Kinase",
    "Cytokine",
    "Hormone",
    "Antigen",
    "Antibody",
    "Lipid",
    "Peptide",
    "Glycan",
    "Chromatin",
    "Ribosomal",
    "Synaptic",
    "Dermal",
    "Ocular",
    "Pulmonary",
    "Gastric",
    "Osseous",
    "Muscular",
    "Endocrine",
    "Microbial",
    "Viral",
    "Fungal",
    "Parasitic",
    "Immune",
];

const STEMS: &[&str] = &[
    "Proliferation",
    "Apoptosis",
    "Differentiation",
    "Transport",
    "Signaling",
    "Adhesion",
    "Migration",
    "Transcription",
    "Translation",
    "Replication",
    "Repair",
    "Degradation",
    "Secretion",
    "Absorption",
    "Metabolism",
    "Synthesis",
    "Phosphorylation",
    "Methylation",
    "Oxidation",
    "Binding",
    "Activation",
    "Inhibition",
    "Expression",
    "Regulation",
    "Homeostasis",
    "Morphogenesis",
    "Angiogenesis",
    "Inflammation",
    "Necrosis",
    "Fibrosis",
    "Hypertrophy",
    "Atrophy",
    "Dysplasia",
    "Neoplasms",
    "Carcinoma",
    "Sarcoma",
    "Lymphoma",
    "Syndrome",
    "Deficiency",
    "Toxicity",
];

const TAILS: &[&str] = &[
    "Processes",
    "Phenomena",
    "Disorders",
    "Pathways",
    "Factors",
    "Proteins",
    "Genes",
    "Models",
    "Techniques",
    "Agents",
    "Inhibitors",
    "Agonists",
    "Antagonists",
    "Markers",
    "Variants",
    "Complexes",
];

impl LabelFactory {
    fn new() -> Self {
        LabelFactory {
            seen: HashSet::new(),
            counter: 0,
        }
    }

    fn fresh(&mut self, rng: &mut StdRng) -> String {
        for _ in 0..8 {
            let head = HEADS[rng.gen_range(0..HEADS.len())];
            let stem = STEMS[rng.gen_range(0..STEMS.len())];
            let label = if rng.gen_bool(0.3) {
                let tail = TAILS[rng.gen_range(0..TAILS.len())];
                format!("{head} {stem}, {tail}")
            } else {
                format!("{head} {stem}")
            };
            if self.seen.insert(label.clone()) {
                return label;
            }
        }
        // Extremely unlikely fallback, but label uniqueness must hold.
        self.counter += 1;
        let label = format!("Unclassified Concept {}", self.counter);
        self.seen.insert(label.clone());
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::small(7, 400);
        let a = generate_descriptors(&cfg);
        let b = generate_descriptors(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_descriptors(&SynthConfig::small(1, 400));
        let b = generate_descriptors(&SynthConfig::small(2, 400));
        assert_ne!(a, b);
    }

    #[test]
    fn size_is_approximately_honored() {
        let cfg = SynthConfig::small(42, 2_000);
        let h = generate(&cfg).unwrap();
        let n = h.len() - 1; // exclude root
        assert!(
            (1_200..=3_000).contains(&n),
            "expected roughly 2000 positions, got {n}"
        );
    }

    #[test]
    fn respects_max_depth() {
        let cfg = SynthConfig {
            max_depth: 5,
            ..SynthConfig::small(3, 1_000)
        };
        let h = generate(&cfg).unwrap();
        assert!(h.max_depth() <= 5);
    }

    #[test]
    fn some_descriptors_are_polyhierarchical() {
        let cfg = SynthConfig::small(11, 1_500);
        let descs = generate_descriptors(&cfg);
        let multi = descs.iter().filter(|d| d.tree_numbers.len() > 1).count();
        assert!(multi > 0, "extra_position_rate should yield poly-hierarchy");
        // And the result still builds strictly (all parents exist).
        ConceptHierarchy::from_descriptors(&descs).unwrap();
    }

    #[test]
    fn deep_chain_is_a_single_spine() {
        let h = deep_chain(1_000);
        assert_eq!(h.len(), 1_001);
        assert_eq!(h.max_depth(), 1_000);
        assert_eq!(h.root().children().len(), 1);
        let leaf = h.nodes_of(DescriptorId(1_000));
        assert_eq!(leaf.len(), 1);
        assert_eq!(h.node(leaf[0]).depth(), 1_000);
        assert!(h.node(leaf[0]).is_leaf());
        assert_eq!(h.node(leaf[0]).label(), "chain-1000");
    }

    #[test]
    fn labels_are_unique() {
        let descs = generate_descriptors(&SynthConfig::small(5, 3_000));
        let mut labels: Vec<&str> = descs.iter().map(|d| d.label.as_str()).collect();
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }

    #[test]
    fn upper_levels_are_bushier_than_lower() {
        let h = generate(&SynthConfig::small(9, 4_000)).unwrap();
        let mut by_depth: Vec<(u64, u64)> = vec![(0, 0); (h.max_depth() + 1) as usize];
        for id in h.iter_preorder() {
            let node = h.node(id);
            if !node.is_leaf() {
                let d = node.depth() as usize;
                by_depth[d].0 += node.children().len() as u64;
                by_depth[d].1 += 1;
            }
        }
        let mean = |d: usize| by_depth[d].0 as f64 / by_depth[d].1.max(1) as f64;
        assert!(
            mean(1) > mean(3),
            "depth-1 branching {} should exceed depth-3 branching {}",
            mean(1),
            mean(3)
        );
    }
}
