//! # bionav-mesh — MeSH-style concept hierarchy substrate
//!
//! BioNav (ICDE 2009) organizes PubMed query results along the MeSH concept
//! hierarchy, a labeled tree of ~48,000 concept nodes maintained by the US
//! National Library of Medicine. This crate implements everything BioNav
//! needs from MeSH, from scratch:
//!
//! * [`TreeNumber`] — the dotted positional identifiers MeSH uses to encode
//!   a concept's location in the tree (e.g. `C04.557.337`),
//! * [`Descriptor`] — a MeSH descriptor (main heading) which may occupy
//!   several tree positions,
//! * [`ConceptHierarchy`] — an arena-allocated labeled tree (Definition 1 of
//!   the paper) with parent/child navigation, depth queries and subtree
//!   iteration,
//! * [`parser`] — a parser for the MeSH ASCII (`.bin`) descriptor format,
//! * [`xml`] — a parser for the MeSH XML descriptor format (`desc20XX.xml`,
//!   NLM's primary distribution), built on a small from-scratch XML-subset
//!   tokenizer, so a genuine MeSH release can be loaded either way,
//! * [`synth`] — a deterministic synthetic generator producing MeSH-scale
//!   hierarchies with the same bushy-at-the-top shape, used by the
//!   reproduction experiments in place of the (licensed) NLM data files.
//!
//! The hierarchy is deliberately read-only after construction: BioNav's
//! navigation trees are built per query *on top of* an immutable hierarchy
//! shared across sessions.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod concept;
mod error;
mod hierarchy;
pub mod parser;
pub mod synth;
mod treenum;
pub mod xml;

pub use concept::{Descriptor, DescriptorId};
pub use error::MeshError;
pub use hierarchy::{ConceptHierarchy, HierarchyBuilder, HierarchyColumns, NodeId, NodeRef};
pub use treenum::TreeNumber;
