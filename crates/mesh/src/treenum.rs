use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::MeshError;

/// A MeSH tree number: a dotted path identifying one position in the concept
/// hierarchy, e.g. `C04.557.337` (Neoplasms → Cysts → ...).
///
/// The first segment names a top-level category (a letter followed by
/// digits, like `A01` or `C04`); every further segment is a numeric run.
/// A descriptor closer to the root has a tree number that is a proper
/// *prefix* (segment-wise) of all its descendants' tree numbers — this is
/// the property BioNav exploits to attach query results to the hierarchy in
/// one pass.
///
/// Tree numbers order lexicographically by segment, which matches the order
/// MeSH browsers display siblings in.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TreeNumber {
    raw: String,
}

impl TreeNumber {
    /// Parses a tree number, validating the MeSH dotted syntax.
    ///
    /// Accepted grammar: `SEG ("." SEG)*` where each `SEG` is a non-empty
    /// run of ASCII alphanumerics. MeSH itself uses `L\d\d` for the first
    /// segment and 3-digit runs afterwards, but the looser grammar also
    /// accepts synthetic hierarchies and future MeSH revisions.
    pub fn parse(input: &str) -> Result<Self, MeshError> {
        if input.is_empty() {
            return Err(MeshError::InvalidTreeNumber {
                input: input.to_string(),
                reason: "empty string",
            });
        }
        for segment in input.split('.') {
            if segment.is_empty() {
                return Err(MeshError::InvalidTreeNumber {
                    input: input.to_string(),
                    reason: "empty segment (consecutive or trailing dots)",
                });
            }
            if !segment.bytes().all(|b| b.is_ascii_alphanumeric()) {
                return Err(MeshError::InvalidTreeNumber {
                    input: input.to_string(),
                    reason: "segments must be ASCII alphanumeric",
                });
            }
        }
        Ok(TreeNumber {
            raw: input.to_string(),
        })
    }

    /// The raw dotted string.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// Iterates over the dot-separated segments.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.raw.split('.')
    }

    /// Number of segments; the root category `A01` has depth 1.
    pub fn depth(&self) -> usize {
        self.raw.as_bytes().iter().filter(|&&b| b == b'.').count() + 1
    }

    /// The tree number one level up, or `None` for a top-level category.
    pub fn parent(&self) -> Option<TreeNumber> {
        self.raw.rfind('.').map(|idx| TreeNumber {
            raw: self.raw[..idx].to_string(),
        })
    }

    /// Creates the child position obtained by appending `segment`.
    ///
    /// # Panics
    /// Panics if `segment` is empty or non-alphanumeric; callers construct
    /// segments programmatically so a malformed one is a logic error.
    pub fn child(&self, segment: &str) -> TreeNumber {
        assert!(
            !segment.is_empty() && segment.bytes().all(|b| b.is_ascii_alphanumeric()),
            "invalid tree-number segment {segment:?}"
        );
        TreeNumber {
            raw: format!("{}.{segment}", self.raw),
        }
    }

    /// Whether `self` is a *proper* ancestor position of `other`.
    pub fn is_ancestor_of(&self, other: &TreeNumber) -> bool {
        other.raw.len() > self.raw.len()
            && other.raw.starts_with(&self.raw)
            && other.raw.as_bytes()[self.raw.len()] == b'.'
    }

    /// Whether `self` equals `other` or is an ancestor position of it.
    pub fn is_ancestor_or_self(&self, other: &TreeNumber) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// The top-level category segment, e.g. `C04` for `C04.557.337`.
    pub fn category(&self) -> &str {
        self.raw
            .split('.')
            .next()
            // lint: allow(no-unwrap) — split() always yields at least one
            // piece, and parse() rejected empty raw strings
            .expect("tree numbers have at least one segment")
    }
}

impl fmt::Display for TreeNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl FromStr for TreeNumber {
    type Err = MeshError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TreeNumber::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_mesh_numbers() {
        for raw in ["A01", "C04.557.337", "G06.535.166.765", "D12.776.641"] {
            let tn = TreeNumber::parse(raw).unwrap();
            assert_eq!(tn.as_str(), raw);
        }
    }

    #[test]
    fn rejects_malformed_numbers() {
        for raw in ["", ".", "A01.", ".A01", "A01..557", "A01.5 57", "A01.5-7"] {
            assert!(
                TreeNumber::parse(raw).is_err(),
                "{raw:?} should be rejected"
            );
        }
    }

    #[test]
    fn depth_counts_segments() {
        assert_eq!(TreeNumber::parse("A01").unwrap().depth(), 1);
        assert_eq!(TreeNumber::parse("C04.557.337").unwrap().depth(), 3);
    }

    #[test]
    fn parent_strips_last_segment() {
        let tn = TreeNumber::parse("C04.557.337").unwrap();
        let parent = tn.parent().unwrap();
        assert_eq!(parent.as_str(), "C04.557");
        assert_eq!(parent.parent().unwrap().as_str(), "C04");
        assert_eq!(parent.parent().unwrap().parent(), None);
    }

    #[test]
    fn child_appends_segment() {
        let tn = TreeNumber::parse("C04").unwrap();
        assert_eq!(tn.child("557").as_str(), "C04.557");
    }

    #[test]
    #[should_panic(expected = "invalid tree-number segment")]
    fn child_rejects_bad_segment() {
        TreeNumber::parse("C04").unwrap().child("5.7");
    }

    #[test]
    fn ancestry_is_segment_wise_not_string_prefix() {
        let a = TreeNumber::parse("C04.55").unwrap();
        let b = TreeNumber::parse("C04.557").unwrap();
        // "C04.55" is a *string* prefix of "C04.557" but not an ancestor.
        assert!(!a.is_ancestor_of(&b));
        let c = TreeNumber::parse("C04.557.337").unwrap();
        assert!(b.is_ancestor_of(&c));
        assert!(!c.is_ancestor_of(&b));
        assert!(b.is_ancestor_or_self(&b));
    }

    #[test]
    fn ordering_matches_sibling_display_order() {
        let mut v: Vec<TreeNumber> = ["C04.557", "C04.100", "A01", "C04"]
            .iter()
            .map(|s| TreeNumber::parse(s).unwrap())
            .collect();
        v.sort();
        let raw: Vec<&str> = v.iter().map(|t| t.as_str()).collect();
        assert_eq!(raw, ["A01", "C04", "C04.100", "C04.557"]);
    }

    #[test]
    fn category_is_first_segment() {
        assert_eq!(TreeNumber::parse("C04.557.337").unwrap().category(), "C04");
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        let tn = TreeNumber::parse("C04.557").unwrap();
        let json = serde_json::to_string(&tn).unwrap();
        assert_eq!(json, "\"C04.557\"");
        let back: TreeNumber = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tn);
    }
}
