//! Parser for the MeSH XML descriptor format (`desc20XX.xml`), NLM's
//! primary distribution channel.
//!
//! Only a small, well-formed subset of XML is needed — the relevant
//! structure is
//!
//! ```xml
//! <DescriptorRecordSet LanguageCode="eng">
//!   <DescriptorRecord DescriptorClass="1">
//!     <DescriptorUI>D000001</DescriptorUI>
//!     <DescriptorName><String>Calcimycin</String></DescriptorName>
//!     <TreeNumberList>
//!       <TreeNumber>D03.633.100.221.173</TreeNumber>
//!     </TreeNumberList>
//!   </DescriptorRecord>
//! </DescriptorRecordSet>
//! ```
//!
//! — so this module ships its own ~150-line pull tokenizer instead of an
//! XML dependency (see DESIGN.md §5): start/end tags with attributes
//! (attributes are validated but ignored), character data with the five
//! predefined entities plus numeric references, CDATA sections, comments,
//! processing instructions and a DOCTYPE prolog. Anything outside that
//! subset is a [`MeshError::MalformedRecord`] with a line number.
//!
//! Elements other than the four listed above are skipped, so a genuine
//! MeSH release (with its `ConceptList`s, `AllowableQualifier`s, …) parses
//! directly. Records without tree numbers (check tags) are dropped, like
//! in the ASCII parser.

use crate::{Descriptor, DescriptorId, MeshError, TreeNumber};

/// Parses MeSH descriptor XML into [`Descriptor`]s.
pub fn parse_xml(source: &str) -> Result<Vec<Descriptor>, MeshError> {
    let mut tok = Tokenizer::new(source);
    let mut descriptors = Vec::new();

    // Records without a UI get ids allocated past the largest seen.
    let mut pending_without_ui: Vec<(String, Vec<TreeNumber>)> = Vec::new();
    let mut used = std::collections::HashMap::new();
    let mut max_id = 0u32;

    // Element path, to give text content a context.
    let mut path: Vec<String> = Vec::new();
    // Per-record accumulation.
    let mut ui: Option<String> = None;
    let mut name: Option<String> = None;
    let mut tree_numbers: Vec<TreeNumber> = Vec::new();
    let mut record_line = 0usize;

    while let Some(event) = tok.next_event()? {
        match event {
            Event::Start(tag) => {
                if tag == "DescriptorRecord" {
                    ui = None;
                    name = None;
                    tree_numbers = Vec::new();
                    record_line = tok.line;
                }
                path.push(tag);
            }
            Event::End(tag) => {
                match path.pop() {
                    Some(open) if open == tag => {}
                    Some(open) => {
                        return Err(MeshError::MalformedRecord {
                            line: tok.line,
                            reason: format!("mismatched tags: <{open}> closed by </{tag}>"),
                        });
                    }
                    None => {
                        return Err(MeshError::MalformedRecord {
                            line: tok.line,
                            reason: format!("unmatched closing tag </{tag}>"),
                        });
                    }
                }
                if tag == "DescriptorRecord" {
                    if tree_numbers.is_empty() {
                        continue; // positionless record (check tag etc.)
                    }
                    let label = name.take().ok_or_else(|| MeshError::MalformedRecord {
                        line: record_line,
                        reason: "DescriptorRecord lacks a DescriptorName".to_string(),
                    })?;
                    let numbers = std::mem::take(&mut tree_numbers);
                    match ui.take().as_deref().and_then(parse_ui) {
                        Some(id) => {
                            if let Some(other) = used.insert(id, record_line) {
                                return Err(MeshError::MalformedRecord {
                                    line: record_line,
                                    reason: format!(
                                        "DescriptorUI D{id:06} already used by the record at line {other}"
                                    ),
                                });
                            }
                            max_id = max_id.max(id);
                            descriptors.push(Descriptor::new(DescriptorId(id), label, numbers));
                        }
                        None => pending_without_ui.push((label, numbers)),
                    }
                }
            }
            Event::Text(text) => {
                let text = text.trim();
                if text.is_empty() {
                    continue;
                }
                let inside = |suffix: &[&str]| {
                    path.len() >= suffix.len()
                        && path[path.len() - suffix.len()..]
                            .iter()
                            .zip(suffix)
                            .all(|(a, b)| a == b)
                };
                if inside(&["DescriptorRecord", "DescriptorUI"]) {
                    ui = Some(text.to_string());
                } else if inside(&["DescriptorRecord", "DescriptorName", "String"]) {
                    name = Some(text.to_string());
                } else if inside(&["TreeNumberList", "TreeNumber"]) {
                    tree_numbers.push(TreeNumber::parse(text)?);
                }
            }
        }
    }
    if let Some(open) = path.pop() {
        return Err(MeshError::MalformedRecord {
            line: tok.line,
            reason: format!("unclosed element <{open}> at end of input"),
        });
    }
    for (label, numbers) in pending_without_ui {
        max_id += 1;
        descriptors.push(Descriptor::new(DescriptorId(max_id), label, numbers));
    }
    Ok(descriptors)
}

fn parse_ui(ui: &str) -> Option<u32> {
    ui.strip_prefix('D')?.parse().ok()
}

/// Serializes descriptors back into the MeSH XML subset this module parses
/// — useful for exporting synthetic hierarchies in NLM's format and for
/// round-trip testing. Labels are entity-escaped.
pub fn write_xml(descriptors: &[Descriptor]) -> String {
    let mut out =
        String::from("<?xml version=\"1.0\"?>\n<DescriptorRecordSet LanguageCode=\"eng\">\n");
    for d in descriptors {
        out.push_str("  <DescriptorRecord>\n");
        out.push_str(&format!(
            "    <DescriptorUI>{}</DescriptorUI>\n",
            d.id.as_ui()
        ));
        out.push_str(&format!(
            "    <DescriptorName><String>{}</String></DescriptorName>\n",
            escape(&d.label)
        ));
        out.push_str("    <TreeNumberList>\n");
        for tn in &d.tree_numbers {
            out.push_str(&format!("      <TreeNumber>{tn}</TreeNumber>\n"));
        }
        out.push_str("    </TreeNumberList>\n");
        out.push_str("  </DescriptorRecord>\n");
    }
    out.push_str("</DescriptorRecordSet>\n");
    out
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Tokenizer events — exactly what the descriptor walk needs.
enum Event {
    Start(String),
    End(String),
    Text(String),
}

/// A minimal pull tokenizer over the XML subset described in the module
/// docs. Tracks line numbers for diagnostics.
struct Tokenizer<'s> {
    rest: &'s str,
    line: usize,
}

impl<'s> Tokenizer<'s> {
    fn new(source: &'s str) -> Self {
        Tokenizer {
            rest: source,
            line: 1,
        }
    }

    fn bump(&mut self, bytes: usize) {
        let (eaten, rest) = self.rest.split_at(bytes);
        self.line += eaten.bytes().filter(|&b| b == b'\n').count();
        self.rest = rest;
    }

    fn error(&self, reason: impl Into<String>) -> MeshError {
        MeshError::MalformedRecord {
            line: self.line,
            reason: reason.into(),
        }
    }

    /// Next structural event, or `None` at end of input.
    fn next_event(&mut self) -> Result<Option<Event>, MeshError> {
        loop {
            if self.rest.is_empty() {
                return Ok(None);
            }
            if let Some(stripped) = self.rest.strip_prefix('<') {
                // Markup: dispatch on what follows '<'.
                if stripped.starts_with("!--") {
                    let end = self
                        .rest
                        .find("-->")
                        .ok_or_else(|| self.error("unterminated comment"))?;
                    self.bump(end + 3);
                    continue;
                }
                if stripped.starts_with("![CDATA[") {
                    let end = self
                        .rest
                        .find("]]>")
                        .ok_or_else(|| self.error("unterminated CDATA section"))?;
                    let text = self.rest["<![CDATA[".len()..end].to_string();
                    self.bump(end + 3);
                    return Ok(Some(Event::Text(text)));
                }
                if stripped.starts_with('!') || stripped.starts_with('?') {
                    // DOCTYPE (no internal subset support needed) or PI.
                    let end = self
                        .rest
                        .find('>')
                        .ok_or_else(|| self.error("unterminated prolog markup"))?;
                    self.bump(end + 1);
                    continue;
                }
                let end = self
                    .rest
                    .find('>')
                    .ok_or_else(|| self.error("unterminated tag"))?;
                let inner = &self.rest[1..end];
                let event = self.parse_tag(inner)?;
                self.bump(end + 1);
                return Ok(Some(event));
            }
            // Character data up to the next tag.
            let end = self.rest.find('<').unwrap_or(self.rest.len());
            let raw = &self.rest[..end];
            if raw.trim().is_empty() {
                self.bump(end);
                continue;
            }
            let decoded = decode_entities(raw).map_err(|reason| self.error(reason))?;
            self.bump(end);
            return Ok(Some(Event::Text(decoded)));
        }
    }

    /// Parses the inside of `<...>` (already stripped of the brackets).
    fn parse_tag(&self, inner: &str) -> Result<Event, MeshError> {
        if let Some(name) = inner.strip_prefix('/') {
            let name = name.trim();
            validate_name(name).map_err(|reason| self.error(reason))?;
            return Ok(Event::End(name.to_string()));
        }
        let self_closing = inner.ends_with('/');
        let inner = inner.strip_suffix('/').unwrap_or(inner).trim();
        let name_end = inner
            .find(|c: char| c.is_whitespace())
            .unwrap_or(inner.len());
        let name = &inner[..name_end];
        validate_name(name).map_err(|reason| self.error(reason))?;
        // Attributes are validated only loosely: quoted values, no '<'.
        let attrs = inner[name_end..].trim();
        if !attrs.is_empty()
            && !attrs.matches('"').count().is_multiple_of(2)
            && !attrs.matches('\'').count().is_multiple_of(2)
        {
            return Err(self.error(format!("malformed attributes on <{name}>")));
        }
        if self_closing {
            // Surface as start+end would complicate the event stream; the
            // descriptor schema never self-closes elements we care about,
            // so an empty element is simply skipped via a synthetic pair —
            // callers see Start here and the End on the next pull. Keep it
            // simple: treat it as text-free Start and immediately matching
            // End by returning Start and remembering nothing — instead,
            // reject: the MeSH schema does not use self-closing tags.
            return Err(self.error(format!("self-closing <{name}/> is outside the MeSH subset")));
        }
        Ok(Event::Start(name.to_string()))
    }
}

fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("empty tag name".to_string());
    }
    let ok = name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':');
    if ok {
        Ok(())
    } else {
        Err(format!("invalid tag name {name:?}"))
    }
}

/// Decodes the five predefined entities and numeric character references.
fn decode_entities(raw: &str) -> Result<String, String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest
            .find(';')
            .ok_or_else(|| "unterminated entity".to_string())?;
        let entity = &rest[1..end];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = if let Some(hex) = entity
                    .strip_prefix("#x")
                    .or_else(|| entity.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad character reference &{entity};"))?
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse::<u32>()
                        .map_err(|_| format!("bad character reference &{entity};"))?
                } else {
                    return Err(format!("unknown entity &{entity};"));
                };
                out.push(
                    char::from_u32(code).ok_or_else(|| format!("invalid code point &{entity};"))?,
                );
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConceptHierarchy;

    const FIXTURE: &str = r#"<?xml version="1.0"?>
<!DOCTYPE DescriptorRecordSet SYSTEM "desc2009.dtd">
<DescriptorRecordSet LanguageCode="eng">
  <!-- a comment to skip -->
  <DescriptorRecord DescriptorClass="1">
    <DescriptorUI>D001829</DescriptorUI>
    <DescriptorName><String>Body Regions</String></DescriptorName>
    <ConceptList><Concept PreferredConceptYN="Y"><ConceptName><String>ignored</String></ConceptName></Concept></ConceptList>
    <TreeNumberList>
      <TreeNumber>A01</TreeNumber>
    </TreeNumberList>
  </DescriptorRecord>
  <DescriptorRecord>
    <DescriptorUI>D005260</DescriptorUI>
    <DescriptorName><String>Collagen &amp; Friends</String></DescriptorName>
    <TreeNumberList>
      <TreeNumber>A01.047</TreeNumber>
      <TreeNumber>B01</TreeNumber>
    </TreeNumberList>
  </DescriptorRecord>
  <DescriptorRecord>
    <DescriptorUI>D999999</DescriptorUI>
    <DescriptorName><String>Check Tag Without Tree</String></DescriptorName>
  </DescriptorRecord>
</DescriptorRecordSet>
"#;

    #[test]
    fn parses_the_fixture() {
        let descs = parse_xml(FIXTURE).unwrap();
        assert_eq!(descs.len(), 2); // the check tag is dropped
        assert_eq!(descs[0].label, "Body Regions");
        assert_eq!(descs[0].id, DescriptorId(1829));
        assert_eq!(descs[1].label, "Collagen & Friends");
        assert_eq!(descs[1].tree_numbers.len(), 2);
    }

    #[test]
    fn xml_and_ascii_parsers_agree() {
        let from_xml = parse_xml(FIXTURE).unwrap();
        let ascii = "\
*NEWRECORD
MH = Body Regions
MN = A01
UI = D001829

*NEWRECORD
MH = Collagen & Friends
MN = A01.047
MN = B01
UI = D005260

*NEWRECORD
MH = Check Tag Without Tree
UI = D999999
";
        let from_ascii = crate::parser::parse_ascii(ascii).unwrap();
        assert_eq!(from_xml, from_ascii);
        // And both build the same hierarchy.
        let ha = ConceptHierarchy::from_descriptors(&from_xml).unwrap();
        let hb = ConceptHierarchy::from_descriptors(&from_ascii).unwrap();
        assert_eq!(ha.len(), hb.len());
    }

    #[test]
    fn entities_and_cdata_decode() {
        let src = r#"<DescriptorRecordSet>
  <DescriptorRecord>
    <DescriptorUI>D000001</DescriptorUI>
    <DescriptorName><String>A &lt;B&gt; &#67;&#x44;<![CDATA[ <raw> ]]></String></DescriptorName>
    <TreeNumberList><TreeNumber>A01</TreeNumber></TreeNumberList>
  </DescriptorRecord>
</DescriptorRecordSet>"#;
        let descs = parse_xml(src).unwrap();
        // Adjacent text events: the walk keeps the last non-empty one per
        // element... no — each Text event overwrites `name`; CDATA arrives
        // last, so the label is the CDATA payload.
        assert_eq!(descs[0].label, "<raw>");
    }

    #[test]
    fn mismatched_tags_are_rejected_with_line_numbers() {
        let src = "<A>\n<B>\n</A>\n";
        let err = parse_xml(src).unwrap_err();
        match err {
            MeshError::MalformedRecord { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains("mismatched"), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unclosed_elements_are_rejected() {
        let err = parse_xml("<A><B></B>").unwrap_err();
        assert!(matches!(err, MeshError::MalformedRecord { .. }));
    }

    #[test]
    fn stray_closing_tags_are_rejected() {
        let err = parse_xml("</A>").unwrap_err();
        assert!(matches!(err, MeshError::MalformedRecord { .. }));
    }

    #[test]
    fn unknown_entities_are_rejected() {
        let src = "<A>&nbsp;</A>";
        let err = parse_xml(src).unwrap_err();
        assert!(matches!(err, MeshError::MalformedRecord { .. }));
    }

    #[test]
    fn records_without_ui_get_fresh_ids() {
        let src = "<S><DescriptorRecord><DescriptorName><String>X</String></DescriptorName>\
                   <TreeNumberList><TreeNumber>A01</TreeNumber></TreeNumberList>\
                   </DescriptorRecord></S>";
        let descs = parse_xml(src).unwrap();
        assert_eq!(descs[0].id, DescriptorId(1));
    }

    #[test]
    fn duplicate_uis_are_rejected() {
        let rec = "<DescriptorRecord><DescriptorUI>D000001</DescriptorUI>\
                   <DescriptorName><String>X</String></DescriptorName>\
                   <TreeNumberList><TreeNumber>A01</TreeNumber></TreeNumberList></DescriptorRecord>";
        let rec2 = rec.replace("A01", "B01");
        let src = format!("<S>{rec}{rec2}</S>");
        let err = parse_xml(&src).unwrap_err();
        assert!(matches!(err, MeshError::MalformedRecord { .. }));
    }

    #[test]
    fn bad_tree_numbers_propagate() {
        let src = "<S><DescriptorRecord><DescriptorName><String>X</String></DescriptorName>\
                   <TreeNumberList><TreeNumber>A0..1</TreeNumber></TreeNumberList>\
                   </DescriptorRecord></S>";
        assert!(matches!(
            parse_xml(src),
            Err(MeshError::InvalidTreeNumber { .. })
        ));
    }

    #[test]
    fn write_parse_round_trip() {
        let descs = vec![
            Descriptor::new(
                DescriptorId(12),
                "A&B <weird> \"quoted\" 'label'",
                vec![
                    TreeNumber::parse("A01").unwrap(),
                    TreeNumber::parse("B01").unwrap(),
                ],
            ),
            Descriptor::new(
                DescriptorId(7),
                "Plain",
                vec![TreeNumber::parse("C01").unwrap()],
            ),
        ];
        let xml = write_xml(&descs);
        let back = parse_xml(&xml).unwrap();
        assert_eq!(back, descs);
    }

    #[test]
    fn synthetic_hierarchies_export_and_reload() {
        let descs = crate::synth::generate_descriptors(&crate::synth::SynthConfig::small(3, 150));
        let xml = write_xml(&descs);
        let back = parse_xml(&xml).unwrap();
        assert_eq!(back.len(), descs.len());
        let ha = ConceptHierarchy::from_descriptors(&descs).unwrap();
        let hb = ConceptHierarchy::from_descriptors(&back).unwrap();
        assert_eq!(ha.len(), hb.len());
        assert_eq!(ha.max_depth(), hb.max_depth());
    }

    #[test]
    fn noise_never_panics() {
        for src in [
            "",
            "<",
            ">",
            "<>",
            "<A",
            "&amp;",
            "<A></A",
            "<!-- unterminated",
            "<![CDATA[ unterminated",
            "<?pi",
            "<A b=\"c></A>",
            "text only",
            "<A/>",
        ] {
            let _ = parse_xml(src);
        }
    }
}
