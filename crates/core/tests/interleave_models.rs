//! Deterministic interleaving models for the riskiest concurrent
//! structures of the serving stack (DESIGN.md §5d/§5e):
//!
//! 1. [`bionav_core::telemetry::LatencyHistogram`] record / snapshot / reset,
//! 2. the cross-session [`CutCache`] insert / get / capacity protocol,
//! 3. the [`Engine`] park / resume session protocol (open → expand → close
//!    from concurrent workers), plus the quarantine transition (DESIGN.md
//!    §5f) racing a healthy neighbor's open / expand / close,
//! 4. the [`bionav_core::trace::SpanRing`] seqlock slot protocol
//!    (writers vs snapshot vs clear), plus a seeded torn-write meta-test,
//!    and the flight recorder's [`bionav_core::trace::flightrec::FlightRing`]
//!    (same seqlock protocol, wider multi-word payload) under the same
//!    writer/reader races (DESIGN.md §5j),
//! 5. the [`ShardedEngine`] tier (DESIGN.md §5h): concurrent open / route /
//!    close across two shards keeps every per-shard and merged gauge
//!    balanced, and a health-bias flip racing an in-flight cold open never
//!    deadlocks, strands, or misroutes a session,
//! 6. the overload plane (DESIGN.md §5k): the
//!    [`bionav_core::admission::AdmissionGate`] under racing
//!    admit / release / AIMD-adjust (books balance, limit stays in
//!    `[1, ceiling]`), and the [`bionav_core::breaker::Breaker`] under
//!    racing trip/admit verdicts and post-delay probe elections (one trip
//!    per CAS, no torn baselines, probes accumulate without lost updates).
//!
//! Compiled and run only under `RUSTFLAGS='--cfg interleave'`, which swaps
//! `bionav_core`'s sync shim onto the vendored `interleave` model checker:
//! every lock/atomic op inside the *production* code becomes a scheduler
//! yield point and the bounded-exhaustive DFS explores all interleavings up
//! to the preemption bound.
//!
//! ```text
//! RUSTFLAGS='--cfg interleave' CARGO_TARGET_DIR=target/interleave \
//!     cargo test -p bionav-core --test interleave_models -- --nocapture
//! ```
//!
//! The final test is the *meta-test* required by the analysis-toolchain
//! issue: a seeded, knowingly racy counter that the scheduler MUST flag,
//! proving the checker finds real races in this exact build configuration.

#![cfg(interleave)]
#![forbid(unsafe_code)]

use std::sync::Arc;

use bionav_core::session::CutCache;
use bionav_core::telemetry::LatencyHistogram;
use bionav_core::{
    CostParams, EdgeCut, Engine, EngineError, HealthPolicy, NavNodeId, NavigationTree,
    ShardedEngine, SharedTree,
};
use bionav_medline::{Citation, CitationId, CitationStore};
use bionav_mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};
use interleave::{check, Config};

/// Run a model to completion and insist the bounded schedule tree was
/// exhausted with zero findings (the issue's acceptance criterion).
fn explore(name: &str, cfg: Config, f: impl Fn() + Send + Sync + 'static) {
    let start = std::time::Instant::now();
    match check(cfg, f) {
        Ok(report) => {
            assert!(
                report.complete,
                "{name}: exploration truncated after {} executions",
                report.executions
            );
            println!(
                "{name}: {} schedules explored to completion in {:?}",
                report.executions,
                start.elapsed()
            );
        }
        Err(failure) => panic!("{name}: {failure}"),
    }
}

// ---------------------------------------------------------------------------
// 1. LatencyHistogram
// ---------------------------------------------------------------------------

/// A concurrent snapshot never observes more samples than were recorded and
/// never corrupts the final tallies (record is two relaxed increments; the
/// model proves no interleaving of them with a merge loses or invents
/// samples).
#[test]
fn histogram_record_vs_snapshot() {
    explore("histogram_record_vs_snapshot", Config::default(), || {
        let hist = Arc::new(LatencyHistogram::new());
        let recorder = {
            let hist = Arc::clone(&hist);
            interleave::thread::spawn(move || {
                hist.record(1);
                hist.record(2);
            })
        };
        let mid = hist.snapshot();
        assert!(
            mid.total() <= 2,
            "snapshot invented samples: {}",
            mid.total()
        );
        recorder.join().unwrap();
        let fin = hist.snapshot();
        assert_eq!(fin.total(), 2, "final snapshot lost a sample");
        assert_eq!(hist.count(), 2, "count diverged from snapshot");
    });
}

/// `reset` racing `record`: samples may land on either side of the reset
/// (the documented contract) but tallies stay bounded and the structure
/// stays sound — no interleaving may panic, deadlock, or overcount.
#[test]
fn histogram_record_vs_reset() {
    explore("histogram_record_vs_reset", Config::default(), || {
        let hist = Arc::new(LatencyHistogram::new());
        let recorder = {
            let hist = Arc::clone(&hist);
            interleave::thread::spawn(move || {
                hist.record(1);
                hist.record(2);
            })
        };
        hist.reset();
        recorder.join().unwrap();
        // Depending on where the reset fell, 0..=2 samples survive; the
        // count and bucket totals may transiently disagree (benign, see
        // LatencyHistogram::reset docs) but neither can exceed what was
        // recorded.
        assert!(hist.count() <= 2);
        assert!(hist.snapshot().total() <= 2);
    });
}

// ---------------------------------------------------------------------------
// 2. CutCache
// ---------------------------------------------------------------------------

/// Two sessions miss on the same component and both insert: the cache must
/// end with exactly one entry, serve the identical cut afterwards, and
/// account every lookup as a hit or a miss.
#[test]
fn cut_cache_concurrent_miss_and_insert() {
    explore(
        "cut_cache_concurrent_miss_and_insert",
        Config::default(),
        || {
            let cache = Arc::new(CutCache::new(4));
            let comp = [NavNodeId(1), NavNodeId(2), NavNodeId(3)];
            let cut = EdgeCut::new(vec![NavNodeId(2)]);
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let cut = cut.clone();
                    interleave::thread::spawn(move || {
                        let comp = [NavNodeId(1), NavNodeId(2), NavNodeId(3)];
                        if cache.model_get(&comp).is_none() {
                            cache.model_put(&comp, &cut);
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(cache.len(), 1, "duplicate insert must overwrite, not grow");
            assert_eq!(
                cache.hits() + cache.misses(),
                2,
                "every lookup is a hit or a miss"
            );
            let served = cache.model_get(&comp).expect("component is memoized");
            assert_eq!(served.lower_roots(), cut.lower_roots());
        },
    );
}

/// Capacity-1 cache under concurrent inserts of two distinct components:
/// the bound must hold in every interleaving (no transient over-capacity),
/// and whichever component won stays retrievable.
#[test]
fn cut_cache_capacity_bound_under_races() {
    explore(
        "cut_cache_capacity_bound_under_races",
        Config::default(),
        || {
            let cache = Arc::new(CutCache::new(1));
            let workers: Vec<_> = (0..2u64)
                .map(|t| {
                    let cache = Arc::clone(&cache);
                    interleave::thread::spawn(move || {
                        let comp = [NavNodeId(10 + t as u32), NavNodeId(20 + t as u32)];
                        let cut = EdgeCut::new(vec![NavNodeId(10 + t as u32)]);
                        if cache.model_get(&comp).is_none() {
                            cache.model_put(&comp, &cut);
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(cache.len(), 1, "capacity bound violated");
            assert_eq!(cache.misses(), 2, "both first lookups must miss");
        },
    );
}

// ---------------------------------------------------------------------------
// 3. Engine park/resume protocol
// ---------------------------------------------------------------------------

/// The paper's Fig 3 MeSH fragment as a hand-built navigation tree — tiny
/// and fully deterministic, so each explored schedule re-runs the real
/// open → expand → close pipeline in microseconds.
fn fig3_tree() -> NavigationTree {
    fn tn(s: &str) -> TreeNumber {
        TreeNumber::parse(s).expect("fixture tree number parses")
    }
    let descs = vec![
        Descriptor::new(DescriptorId(1), "BiologicalPhenomena", vec![tn("G07")]),
        Descriptor::new(DescriptorId(2), "CellPhysiology", vec![tn("G07.100")]),
        Descriptor::new(DescriptorId(3), "CellDeath", vec![tn("G07.100.100")]),
        Descriptor::new(DescriptorId(4), "Autophagy", vec![tn("G07.100.100.100")]),
        Descriptor::new(DescriptorId(5), "Apoptosis", vec![tn("G07.100.100.200")]),
        Descriptor::new(DescriptorId(6), "Necrosis", vec![tn("G07.100.100.300")]),
        Descriptor::new(DescriptorId(7), "CellGrowth", vec![tn("G07.200")]),
        Descriptor::new(
            DescriptorId(8),
            "CellProliferation",
            vec![tn("G07.200.100")],
        ),
        Descriptor::new(DescriptorId(9), "CellDivision", vec![tn("G07.200.100.100")]),
    ];
    let h = ConceptHierarchy::from_descriptors(&descs).expect("fixture hierarchy is valid");
    let mut store = CitationStore::new();
    for i in 1..=9u32 {
        store
            .insert(Citation::new(
                CitationId(i),
                format!("c{i}"),
                vec![],
                vec![DescriptorId(i)],
                vec![],
            ))
            .expect("fixture citation inserts");
    }
    let results: Vec<CitationId> = (1..=9).map(CitationId).collect();
    NavigationTree::build(&h, &store, &results)
}

/// Two workers concurrently open, EXPAND, and close sessions against one
/// engine: the park/resume protocol must be deadlock-free in every
/// schedule, both EXPANDs must succeed, and the gauges must balance
/// (opened == closed, zero live sessions) when the dust settles.
#[test]
fn engine_park_resume_protocol() {
    // Built once: the tree is plain immutable data (no modeled primitives),
    // so sharing it across executions is sound and keeps each schedule fast.
    let tree: SharedTree = Arc::new(fig3_tree());
    let cfg = Config {
        preemption_bound: 2,
        max_executions: 400_000,
        ..Config::default()
    };
    explore("engine_park_resume_protocol", cfg, move || {
        let tree = Arc::clone(&tree);
        let engine = Arc::new(Engine::new(
            move |_query: &str| Some(Arc::clone(&tree)),
            CostParams::default(),
            2,
        ));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                interleave::thread::spawn(move || {
                    let id = engine
                        .open_session("cell death")
                        .expect("fixture query has results");
                    let expanded = engine
                        .expand(id, NavNodeId::ROOT)
                        .expect("root EXPAND on a parked session must succeed");
                    assert!(
                        !expanded.revealed.is_empty(),
                        "root EXPAND must reveal concepts"
                    );
                    assert!(expanded.degraded.is_none(), "clean path never degrades");
                    engine.close_session(id).expect("session closes once");
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.sessions_opened, 2);
        assert_eq!(stats.sessions_closed, 2);
        assert_eq!(stats.sessions_active, 0, "gauge must balance");
    });
}

/// A session quarantined mid-flight (modeling a caught EXPAND panic,
/// driven through [`Engine::model_quarantine`] since injected faults are
/// compiled out under interleave) racing a healthy neighbor: no schedule
/// may deadlock, the poisoned session is refused with the typed
/// `Quarantined` error (or served, if its EXPAND ran before the quarantine
/// landed — both legal), `close_session` still drains it in every
/// schedule, and the quarantine gauge balances to zero after the drain.
#[test]
fn engine_quarantine_protocol() {
    let tree: SharedTree = Arc::new(fig3_tree());
    let cfg = Config {
        preemption_bound: 2,
        max_executions: 400_000,
        ..Config::default()
    };
    explore("engine_quarantine_protocol", cfg, move || {
        let tree = Arc::clone(&tree);
        let engine = Arc::new(Engine::new(
            move |_query: &str| Some(Arc::clone(&tree)),
            CostParams::default(),
            2,
        ));
        let doomed = engine
            .open_session("cell death")
            .expect("fixture query has results");
        let poisoner = {
            let engine = Arc::clone(&engine);
            interleave::thread::spawn(move || {
                engine.model_quarantine(doomed);
            })
        };
        let navigator = {
            let engine = Arc::clone(&engine);
            interleave::thread::spawn(move || {
                // A *different* session must keep serving regardless of
                // where the quarantine transition lands in the schedule.
                let healthy = engine
                    .open_session("cell death")
                    .expect("fixture query has results");
                let reply = engine
                    .expand(healthy, NavNodeId::ROOT)
                    .expect("healthy session serves");
                assert!(reply.degraded.is_none(), "clean path never degrades");
                engine.close_session(healthy).expect("healthy closes");
                // EXPAND on the doomed session: served if it beat the
                // quarantine, refused with the typed error otherwise —
                // never a panic, never a deadlock.
                match engine.expand(doomed, NavNodeId::ROOT) {
                    Ok(_) | Err(EngineError::Quarantined(_)) => {}
                    Err(other) => panic!("unexpected EXPAND refusal: {other}"),
                }
            })
        };
        poisoner.join().unwrap();
        navigator.join().unwrap();
        // The quarantined slot is visible in the gauge, still drains, and
        // the books balance afterwards.
        assert_eq!(engine.stats().sessions_quarantined, 1);
        engine
            .close_session(doomed)
            .expect("quarantined slot drains");
        let stats = engine.stats();
        assert_eq!(stats.sessions_quarantined, 0, "drain releases the gauge");
        assert_eq!(stats.sessions_active, 0, "gauge must balance");
        assert_eq!(stats.sessions_opened, stats.sessions_closed);
    });
}

// ---------------------------------------------------------------------------
// 3b. Sharded tier (DESIGN.md §5h)
// ---------------------------------------------------------------------------

/// A two-shard tier over the Fig 3 fixture plus one query routing to each
/// shard (found by walking candidate strings over the deterministic ring —
/// the ring layout is pure hashing, so this runs outside the model).
fn two_shard_tier(
    tree: &SharedTree,
) -> (
    ShardedEngine<impl Fn(&str) -> Option<SharedTree> + Send + Sync>,
    [String; 2],
) {
    let sharded = ShardedEngine::new(2, |_| {
        let tree = Arc::clone(tree);
        Engine::new(
            move |_query: &str| Some(Arc::clone(&tree)),
            CostParams::default(),
            2,
        )
    });
    let mut queries: [Option<String>; 2] = [None, None];
    for i in 0.. {
        let q = format!("cell death {i}");
        let home = sharded.shard_for_query(&q);
        if queries[home].is_none() {
            queries[home] = Some(q);
            if queries.iter().all(Option::is_some) {
                break;
            }
        }
    }
    let [a, b] = queries;
    (sharded, [a.unwrap(), b.unwrap()])
}

/// Two workers open / EXPAND / close concurrently, one per shard: every
/// schedule must route each session to its sticky home shard (the packed
/// id's shard field), serve both EXPANDs, and leave the per-shard *and*
/// merged gauges balanced — proving the tier adds no coordination (and so
/// no new deadlock or double-count) on top of the member engines.
#[test]
fn sharded_open_route_close_gauge_consistency() {
    let tree: SharedTree = Arc::new(fig3_tree());
    let cfg = Config {
        preemption_bound: 2,
        max_executions: 400_000,
        ..Config::default()
    };
    explore(
        "sharded_open_route_close_gauge_consistency",
        cfg,
        move || {
            let (sharded, queries) = two_shard_tier(&tree);
            let sharded = Arc::new(sharded);
            let workers: Vec<_> = queries
                .iter()
                .enumerate()
                .map(|(home, query)| {
                    let sharded = Arc::clone(&sharded);
                    let query = query.clone();
                    interleave::thread::spawn(move || {
                        let id = sharded.open_session(&query).expect("fixture query opens");
                        assert_eq!(
                            id.shard(),
                            home,
                            "no-bias routing must land on the sticky home shard"
                        );
                        let reply = sharded
                            .expand(id, NavNodeId::ROOT)
                            .expect("EXPAND routes by the packed shard field");
                        assert!(!reply.revealed.is_empty());
                        sharded.close_session(id).expect("session closes once");
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            for shard in 0..2 {
                let s = sharded.shard_stats(shard);
                assert_eq!(s.sessions_opened, 1, "each shard owned exactly one open");
                assert_eq!(s.sessions_closed, 1);
                assert_eq!(s.sessions_active, 0);
            }
            let merged = sharded.stats();
            assert_eq!(merged.sessions_opened, 2);
            assert_eq!(merged.sessions_closed, 2);
            assert_eq!(merged.sessions_active, 0, "merged gauge must balance");
        },
    );
}

/// A health-bias flip (shard 0's quarantine gauge tripping the policy)
/// racing an in-flight cold open for a query homed on shard 0. Both orders
/// are legal — the open may beat the flip and land home, or see it and
/// divert to shard 1 — but in every schedule the opened session must be
/// fully served *where it landed* (stickiness: bias moves only new opens,
/// never live sessions), and once the quarantined slot drains, placement
/// must snap back to the home shard.
#[test]
fn sharded_health_bias_flip_vs_inflight_open() {
    let tree: SharedTree = Arc::new(fig3_tree());
    let cfg = Config {
        preemption_bound: 2,
        max_executions: 400_000,
        ..Config::default()
    };
    explore(
        "sharded_health_bias_flip_vs_inflight_open",
        cfg,
        move || {
            let (sharded, queries) = two_shard_tier(&tree);
            let sharded = Arc::new(sharded.with_health_policy(HealthPolicy {
                max_quarantined: 1,
                ..HealthPolicy::default()
            }));
            let on_zero = queries[0].clone();
            // The flip's raw material: a session on shard 0, opened before
            // any concurrency, quarantined by the poisoner mid-model.
            let doomed = sharded
                .engine(0)
                .open_session(&on_zero)
                .expect("fixture query opens");
            let poisoner = {
                let sharded = Arc::clone(&sharded);
                interleave::thread::spawn(move || {
                    sharded.engine(0).model_quarantine(doomed);
                })
            };
            let opener = {
                let sharded = Arc::clone(&sharded);
                let on_zero = on_zero.clone();
                interleave::thread::spawn(move || {
                    let id = sharded
                        .open_session(&on_zero)
                        .expect("a cold open always finds a shard");
                    assert!(id.shard() < 2, "placement must name a real shard");
                    let reply = sharded
                        .expand(id, NavNodeId::ROOT)
                        .expect("the session serves on whichever shard it landed");
                    assert!(reply.degraded.is_none(), "clean path never degrades");
                    sharded
                        .close_session(id)
                        .expect("sticky routing drains the session where it opened");
                })
            };
            poisoner.join().unwrap();
            opener.join().unwrap();
            // Quarantine is now visible: new placements for the query must
            // divert off the home shard while the slot sits poisoned...
            assert_eq!(sharded.shard_health(0).sessions_quarantined, 1);
            assert_eq!(
                sharded.open_placement(&on_zero),
                1,
                "tripped policy must bias new opens off the home shard"
            );
            // ...and snap back the moment it drains.
            sharded
                .engine(0)
                .close_session(doomed)
                .expect("quarantined slot drains");
            assert_eq!(
                sharded.open_placement(&on_zero),
                0,
                "recovery must restore sticky placement"
            );
            let merged = sharded.stats();
            assert_eq!(merged.sessions_active, 0, "merged gauge must balance");
            assert_eq!(merged.sessions_opened, merged.sessions_closed);
            assert_eq!(merged.sessions_quarantined, 0);
        },
    );
}

// ---------------------------------------------------------------------------
// 3c. Overload plane: admission gate and circuit breaker (DESIGN.md §5k)
// ---------------------------------------------------------------------------

/// Concurrent `try_admit` / guard-drop / AIMD `adjust` against one
/// [`AdmissionGate`]: in every schedule the books must balance (in-flight
/// returns to zero once all guards drop), an admitted+shed pair can never
/// exceed the attempts, and the AIMD step — wherever the scheduler lands
/// it between the optimistic increments — must keep the limit inside
/// `[1, ceiling]`.
#[test]
fn admission_gate_admit_release_adjust_races() {
    use bionav_core::admission::{AdmissionGate, ADJUST_INTERVAL_NS};
    explore(
        "admission_gate_admit_release_adjust_races",
        Config::default(),
        || {
            let gate = Arc::new(AdmissionGate::new(1));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let gate = Arc::clone(&gate);
                    interleave::thread::spawn(move || {
                        // One admit attempt; the guard (if any) drops at
                        // scope end, releasing the slot panic-safely.
                        gate.try_admit().is_some()
                    })
                })
                .collect();
            // An over-budget window races the admits: multiplicative
            // decrease may land before, between, or after them.
            gate.adjust(ADJUST_INTERVAL_NS, 0, 100, 4);
            let admitted = workers
                .into_iter()
                .map(|w| w.join().unwrap())
                .filter(|&b| b)
                .count();
            assert!(admitted <= 2, "admitted more than attempted");
            assert_eq!(gate.inflight(), 0, "books must balance after drops");
            let limit = gate.limit();
            assert!(
                (1..=4).contains(&limit),
                "AIMD limit left [1, ceiling]: {limit}"
            );
        },
    );
}

/// Two racing verdicts against one [`Breaker`] — one healthy, one
/// unhealthy, at the same instant: whatever order the scheduler picks, the
/// state must land on a real state code, at most one trip is recorded (the
/// CAS serializes the transition), the reject count matches the rejected
/// callers exactly, and the baselines are the trip winner's snapshot —
/// never a torn mix.
#[test]
fn breaker_racing_trip_and_admit() {
    use bionav_core::breaker::{Breaker, BreakerDecision, BreakerState};
    explore("breaker_racing_trip_and_admit", Config::default(), || {
        let breaker = Arc::new(Breaker::new());
        const OPEN_NS: u64 = 1_000_000;
        let workers: Vec<_> = (0..2u64)
            .map(|t| {
                let breaker = Arc::clone(&breaker);
                interleave::thread::spawn(move || {
                    let healthy = t == 0;
                    // Distinct per-writer baselines so a torn snapshot
                    // (slots from different writers) is detectable.
                    let base = [10 + t; bionav_core::breaker::BASELINE_SLOTS];
                    matches!(
                        breaker.admit(100, healthy, OPEN_NS, 7, base),
                        BreakerDecision::Reject { .. }
                    )
                })
            })
            .collect();
        let rejected = workers
            .into_iter()
            .map(|w| w.join().unwrap())
            .filter(|&b| b)
            .count() as u64;
        let state = breaker.state();
        assert!(
            matches!(state, BreakerState::Closed | BreakerState::Open),
            "state must be a real code, got {state:?}"
        );
        // The unhealthy verdict always trips (the healthy caller may admit
        // before or after, but never un-trips a just-opened breaker).
        assert_eq!(state, BreakerState::Open, "the unhealthy verdict trips");
        assert_eq!(breaker.trips(), 1, "the CAS serializes to one trip");
        assert_eq!(breaker.rejects(), rejected, "rejects match the callers");
        // Baselines are one writer's snapshot, not a torn mix: the tripper
        // is the unhealthy writer (t == 1), so every slot reads 11.
        for slot in 0..bionav_core::breaker::BASELINE_SLOTS {
            assert_eq!(breaker.baseline(slot), 11, "torn baseline at {slot}");
        }
    });
}

/// An open breaker racing two probe candidates at the same post-delay
/// instant: at most one may transition open → half-open (both may then be
/// admitted as probes — legal — but the state machine must never land
/// outside the three real states, and healthy probes must accumulate
/// toward close without a lost update).
#[test]
fn breaker_racing_probes_after_the_delay() {
    use bionav_core::breaker::{probe_delay_ns, Breaker, BreakerState, PROBES_TO_CLOSE};
    explore(
        "breaker_racing_probes_after_the_delay",
        Config::default(),
        || {
            const OPEN_NS: u64 = 1_000_000;
            const SEED: u64 = 7;
            let breaker = Arc::new(Breaker::new());
            let no_base = [0u64; bionav_core::breaker::BASELINE_SLOTS];
            breaker.admit(0, false, OPEN_NS, SEED, no_base);
            assert_eq!(breaker.state(), BreakerState::Open);
            let probe_at = probe_delay_ns(OPEN_NS, SEED, 1);
            let probes: Vec<_> = (0..2u64)
                .map(|_| {
                    let breaker = Arc::clone(&breaker);
                    interleave::thread::spawn(move || {
                        breaker.admit(probe_at, true, OPEN_NS, SEED, no_base)
                    })
                })
                .collect();
            for p in probes {
                p.join().unwrap();
            }
            let state = breaker.state();
            assert!(
                matches!(state, BreakerState::HalfOpen | BreakerState::Closed),
                "post-delay probes must leave open, got {state:?}"
            );
            // No lost update on the probe tally: two healthy probes landed;
            // one more must close it in every schedule.
            for _ in 0..PROBES_TO_CLOSE {
                breaker.admit(probe_at + 1, true, OPEN_NS, SEED, no_base);
            }
            assert_eq!(breaker.state(), BreakerState::Closed);
            assert_eq!(breaker.trips(), 1, "probing never re-trips a healthy shard");
        },
    );
}

// ---------------------------------------------------------------------------
// 4. Trace ring (DESIGN.md §5e)
// ---------------------------------------------------------------------------

/// Two writers race a mid-flight snapshot of a deliberately tiny (2-slot)
/// ring: every accepted event must be internally consistent (its `ns`
/// encodes its `tid`), the mid-snapshot can never exceed the capacity, and
/// after both writers join, both sequence numbers are observable.
#[test]
fn trace_ring_concurrent_writers_and_snapshot() {
    use bionav_core::trace::{SpanKind, SpanRing};
    explore(
        "trace_ring_concurrent_writers_and_snapshot",
        Config::default(),
        || {
            let ring = Arc::new(SpanRing::new(2));
            let writers: Vec<_> = (0..2u16)
                .map(|t| {
                    let ring = Arc::clone(&ring);
                    interleave::thread::spawn(move || {
                        // Encode the writer in tid, ns, and rid so a torn
                        // slot (meta from one writer, ns or rid from the
                        // other) is detectable below.
                        ring.push(
                            t as u8,
                            SpanKind::Begin,
                            t,
                            1_000 + u64::from(t),
                            7_000 + u64::from(t),
                        );
                    })
                })
                .collect();
            let mid = ring.snapshot();
            assert!(mid.len() <= 2, "snapshot exceeded ring capacity");
            for e in &mid {
                assert_eq!(
                    e.ns,
                    1_000 + u64::from(e.tid),
                    "torn slot: meta/ns from different writers"
                );
                assert_eq!(e.stage, e.tid as u8, "torn slot: stage/tid mismatch");
                assert_eq!(
                    e.rid,
                    7_000 + u64::from(e.tid),
                    "torn slot: rid/tid mismatch"
                );
            }
            for w in writers {
                w.join().unwrap();
            }
            let fin = ring.snapshot();
            assert_eq!(fin.len(), 2, "both events must survive in a 2-slot ring");
            let mut seqs: Vec<u64> = fin.iter().map(|e| e.seq).collect();
            seqs.sort_unstable();
            assert_eq!(seqs, vec![0, 1], "each push claims a unique sequence");
            assert_eq!(ring.pushed(), 2, "push counter is exact");
        },
    );
}

/// `clear` racing a writer: the documented benign window (a mid-push event
/// may land after the clear) is allowed, but every event a snapshot accepts
/// must still be internally consistent, and a clear *after* the writer
/// joins must empty the ring without rewinding the monotone counter.
#[test]
fn trace_ring_clear_vs_writer() {
    use bionav_core::trace::{SpanKind, SpanRing};
    explore("trace_ring_clear_vs_writer", Config::default(), || {
        let ring = Arc::new(SpanRing::new(2));
        let writer = {
            let ring = Arc::clone(&ring);
            interleave::thread::spawn(move || {
                ring.push(1, SpanKind::Begin, 1, 1_001, 7_001);
                ring.push(1, SpanKind::End, 1, 1_001, 7_001);
            })
        };
        ring.clear();
        let mid = ring.snapshot();
        assert!(mid.len() <= 2);
        for e in &mid {
            assert_eq!(e.ns, 1_001, "accepted event must be fully written");
            assert_eq!(e.tid, 1);
            assert_eq!(e.rid, 7_001, "accepted event must carry its rid");
        }
        writer.join().unwrap();
        ring.clear();
        assert!(
            ring.snapshot().is_empty(),
            "a quiescent clear must empty the ring"
        );
        assert_eq!(ring.pushed(), 2, "clear never rewinds the push counter");
    });
}

/// Two writers race a snapshot of a 2-slot flight ring (DESIGN.md §5j):
/// every accepted summary must be internally consistent — its rid,
/// shard, end-to-end latency, and stage breakdown all encode the same
/// writer — the mid-flight snapshot never exceeds capacity, and after
/// both writers join, both sequence numbers survive. The flight ring
/// reuses the span ring's seqlock protocol with a wider multi-word
/// payload, so a torn slot here would mean the protocol does not extend
/// to `4 + STAGE_WORDS` atomics.
#[test]
fn flight_ring_concurrent_writers_and_snapshot() {
    use bionav_core::trace::flightrec::{FlightRing, RawSummary, Verb};
    use bionav_core::trace::Stage;
    explore(
        "flight_ring_concurrent_writers_and_snapshot",
        Config::default(),
        || {
            let ring = Arc::new(FlightRing::new(2));
            let writers: Vec<_> = (0..2u64)
                .map(|t| {
                    let ring = Arc::clone(&ring);
                    interleave::thread::spawn(move || {
                        let mut stage_ns = [0u64; Stage::COUNT];
                        stage_ns[0] = (1 + t) * 1_000_000;
                        let verb = if t == 0 { Verb::Open } else { Verb::Expand };
                        ring.push(&RawSummary {
                            rid: 100 + t,
                            verb: verb as u8,
                            shard_p1: t as u16 + 1,
                            cache: 0,
                            rung: 0,
                            shed: 0,
                            error: 0,
                            fault: 0,
                            total_ns: (100 + t) * 1_000,
                            stage_ns,
                        });
                    })
                })
                .collect();
            let mid = ring.snapshot();
            assert!(mid.len() <= 2, "snapshot exceeded ring capacity");
            for e in &mid {
                let t = e.request_id.wrapping_sub(100);
                assert!(t < 2, "torn slot: unknown rid {}", e.request_id);
                assert_eq!(
                    e.total_ns,
                    (100 + t) * 1_000,
                    "torn slot: rid/total from different writers"
                );
                assert_eq!(e.shard, Some(t as u16), "torn slot: rid/shard mismatch");
                assert_eq!(
                    e.stage_us[0],
                    (1 + t as u32) * 1_000,
                    "torn slot: rid/stage-payload mismatch"
                );
            }
            for w in writers {
                w.join().unwrap();
            }
            let fin = ring.snapshot();
            assert_eq!(fin.len(), 2, "both summaries survive in a 2-slot ring");
            let mut seqs: Vec<u64> = fin.iter().map(|e| e.seq).collect();
            seqs.sort_unstable();
            assert_eq!(seqs, vec![0, 1], "each push claims a unique sequence");
            assert_eq!(ring.pushed(), 2, "push counter is exact");
            ring.clear();
            assert!(
                ring.snapshot().is_empty(),
                "a quiescent clear must empty the ring"
            );
            assert_eq!(ring.pushed(), 2, "clear never rewinds the push counter");
        },
    );
}

/// Meta-test for the ring protocol: `model_torn_push` validates the slot
/// *before* storing `ns`, so a racing reader can accept a stale timestamp.
/// The checker MUST find that interleaving — otherwise the passing models
/// above prove nothing about the real seqlock.
#[test]
fn meta_torn_ring_write_is_flagged() {
    use bionav_core::trace::{SpanKind, SpanRing};
    let result = check(Config::default(), || {
        let ring = Arc::new(SpanRing::new(2));
        let writer = {
            let ring = Arc::clone(&ring);
            interleave::thread::spawn(move || {
                // Seeded bug: stamp validated before ns lands.
                ring.model_torn_push(1, SpanKind::Begin, 1, 999, 0);
            })
        };
        for e in ring.snapshot() {
            assert_eq!(e.ns, 999, "torn ring write: accepted a stale timestamp");
        }
        writer.join().unwrap();
    });
    let failure = result.expect_err("the checker MUST flag the torn ring write");
    assert!(
        failure.message.contains("torn"),
        "unexpected failure: {}",
        failure.message
    );
    println!(
        "meta: torn ring write flagged after {} executions, schedule {:?}",
        failure.executions, failure.schedule
    );
}

// ---------------------------------------------------------------------------
// 5. Meta-test: the checker must catch a seeded race
// ---------------------------------------------------------------------------

/// A knowingly racy read-modify-write counter. If the scheduler ever stops
/// finding this lost update, the whole analysis layer is silently blind —
/// so this test FAILS unless the checker reports a failure.
#[test]
fn meta_seeded_racy_counter_is_flagged() {
    use interleave::sync::{AtomicU64, Ordering};
    let result = check(Config::default(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                interleave::thread::spawn(move || {
                    // Seeded bug: torn load/store instead of fetch_add.
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = result.expect_err("the checker MUST flag the seeded race");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {}",
        failure.message
    );
    println!(
        "meta: seeded race flagged after {} executions, schedule {:?}",
        failure.executions, failure.schedule
    );
}
