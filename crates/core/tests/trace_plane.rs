//! Integration tests for the observability plane (DESIGN.md §5e):
//!
//! * per-stage breakdown counts consistent with [`edgecut::counters`],
//! * `serve-reset` atomically clears stage histograms, counters, AND the
//!   trace ring (the stale-sample regression the issue requires),
//! * `ServeStats::to_json` round-trips,
//! * Prometheus exposition shape (`# TYPE` lines, cumulative buckets),
//! * Chrome trace JSON shape.
//!
//! Tests that flip the process-global trace toggle or clear the global
//! ring serialize behind `TRACE_LOCK`.

#![cfg(not(interleave))]
#![forbid(unsafe_code)]

use std::sync::Arc;

use bionav_core::edgecut::counters;
use bionav_core::trace::{self, Stage};
use bionav_core::{CostParams, Engine, NavNodeId, NavigationTree, ServeStats, SharedTree};
use bionav_medline::corpus::{self, CorpusConfig};
use bionav_medline::InvertedIndex;
use bionav_mesh::synth::{self, sanitizer_scaled, SynthConfig};

/// Serializes tests that mutate process-global trace state (the ring and
/// the enable toggle) — `Engine::reset_stats` clears the global ring, so
/// even toggle-free tests that count ring events take this.
static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The engine-fixture recipe shared with `engine.rs`'s unit tests: a small
/// synthetic hierarchy + corpus, trees built per keyword on demand.
fn fixture_engine() -> Engine<impl Fn(&str) -> Option<SharedTree> + Send + Sync> {
    let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
    let store = corpus::generate(
        &h,
        &CorpusConfig {
            n_citations: sanitizer_scaled(400, 64),
            ..CorpusConfig::default()
        },
    );
    let index = InvertedIndex::build(&store);
    Engine::new(
        move |query: &str| {
            let results = index.query(query).citations;
            if results.is_empty() {
                return None;
            }
            Some(Arc::new(NavigationTree::build(&h, &store, &results)))
        },
        CostParams::default(),
        4,
    )
}

/// A query whose navigation tree has more than one node (so EXPAND does
/// real planning work).
fn multi_node_query(engine: &Engine<impl Fn(&str) -> Option<SharedTree> + Send + Sync>) -> String {
    let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
    h.iter_preorder()
        .skip(1)
        .map(|n| h.node(n).label().to_string())
        .find(|label| engine.tree_for(label).is_some_and(|t| t.len() > 3))
        .expect("some label has a multi-node tree")
}

fn stage_count(stats: &ServeStats, stage: Stage) -> u64 {
    stats
        .stages
        .iter()
        .find(|s| s.stage == stage.name())
        .map(|s| s.count)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Stage counts vs edgecut::counters (the acceptance criterion)
// ---------------------------------------------------------------------------

#[test]
fn stage_breakdown_counts_match_edgecut_counters() {
    let _g = trace_lock();
    let engine = fixture_engine();
    let query = multi_node_query(&engine);

    // Fresh EXPAND: exactly one partition run + one solve, and the stage
    // breakdown must agree with the edgecut counters — the capture tape
    // records every span (sampling only thins the ring), so these counts
    // are exact, not sampled.
    counters::reset();
    let a = engine.open_session(&query).unwrap();
    let first = engine.expand(a, NavNodeId::ROOT).unwrap().revealed;
    let stats = engine.stats();
    assert_eq!(
        counters::partition_runs(),
        1,
        "fresh expand partitions once"
    );
    let partitions = counters::partition_runs();
    let solves = counters::plan_solves();
    assert_eq!(
        stage_count(&stats, Stage::Partition),
        partitions,
        "partition span count must equal edgecut::counters::partition_runs: {:?}",
        stats.stages
    );
    assert_eq!(
        stage_count(&stats, Stage::Solve),
        solves,
        "solve span count must equal edgecut::counters::plan_solves"
    );
    assert_eq!(
        stage_count(&stats, Stage::ReducedBuild),
        solves,
        "every fresh solve builds one reduced problem"
    );
    assert_eq!(stage_count(&stats, Stage::Expand), 1);
    assert_eq!(stage_count(&stats, Stage::OpenSession), 1);
    assert_eq!(stage_count(&stats, Stage::ApplyCut), 1);
    assert_eq!(
        stage_count(&stats, Stage::CutCacheLookup),
        1,
        "first expand probes the cut cache once"
    );
    assert!(
        stage_count(&stats, Stage::LockWait) >= 2,
        "cache + session-table acquisitions must be spanned"
    );
    engine.close_session(a).unwrap();

    // Repeat component over a new session: served from the cut cache —
    // no new partition/solve spans, but one more cut-cache probe.
    counters::reset();
    let b = engine.open_session(&query).unwrap();
    let second = engine.expand(b, NavNodeId::ROOT).unwrap().revealed;
    assert_eq!(second, first);
    assert_eq!(counters::partition_runs(), 0);
    let stats = engine.stats();
    assert_eq!(
        stage_count(&stats, Stage::Partition),
        partitions,
        "cut-cache hit must not add a partition span"
    );
    assert_eq!(stage_count(&stats, Stage::Solve), solves);
    assert_eq!(stage_count(&stats, Stage::CutCacheLookup), 2);
    assert_eq!(stage_count(&stats, Stage::Expand), 2);
    assert_eq!(stats.cut_cache_hits, 1);
    assert_eq!(stats.cut_cache_misses, 1);
    engine.close_session(b).unwrap();
}

#[test]
fn run_script_and_replay_feed_the_stage_family() {
    let _g = trace_lock();
    let engine = fixture_engine();
    let query = multi_node_query(&engine);
    let jobs = vec![
        (query.clone(), vec![bionav_core::ScriptOp::ExpandFully]),
        (query.clone(), vec![bionav_core::ScriptOp::ExpandFully]),
    ];
    let out = engine.replay(&jobs, 2);
    assert!(out.iter().all(|o| o.is_ok()));
    let stats = engine.stats();
    assert_eq!(stage_count(&stats, Stage::Replay), 1);
    assert_eq!(stage_count(&stats, Stage::RunScript), 2);
    assert!(stage_count(&stats, Stage::Expand) >= 2);
    assert_eq!(
        stage_count(&stats, Stage::Expand) as usize,
        stats.expand_count,
        "stage family and EXPAND histogram must agree on the op count"
    );
}

// ---------------------------------------------------------------------------
// Satellite: reset semantics (no stale samples leak across windows)
// ---------------------------------------------------------------------------

#[test]
fn reset_stats_clears_stages_and_ring_in_one_pass() {
    let _g = trace_lock();
    trace::set_enabled(true);
    trace::set_sample_every(1);
    let engine = fixture_engine();
    let query = multi_node_query(&engine);
    let id = engine.open_session(&query).unwrap();
    engine.expand(id, NavNodeId::ROOT).unwrap();
    let before = engine.stats();
    assert!(!before.stages.is_empty());
    assert!(
        !trace::ring_snapshot().is_empty(),
        "enabled tracing must emit ring events"
    );
    let pushed_before = before.trace_events;
    assert!(pushed_before > 0);

    engine.reset_stats();
    trace::set_enabled(false);

    // One atomic pass: stage histograms, sums, counters, AND the ring.
    let after = engine.stats();
    assert!(
        after.stages.is_empty(),
        "stale stage samples leaked: {:?}",
        after.stages
    );
    assert_eq!(after.expand_count, 0);
    assert!(trace::ring_snapshot().is_empty(), "ring events leaked");
    assert!(
        after.trace_events >= pushed_before,
        "the push counter is monotone across resets"
    );

    // Recording across the reset boundary: the next window only holds the
    // new window's samples.
    let _ = engine.expand(id, NavNodeId::ROOT);
    let next = engine.stats();
    assert_eq!(stage_count(&next, Stage::Expand), 1);
    assert_eq!(next.expand_count, 1);
    for s in &next.stages {
        assert!(
            s.count <= 2,
            "stage {} carried stale samples across the reset: {}",
            s.stage,
            s.count
        );
    }
    engine.close_session(id).unwrap();
}

// ---------------------------------------------------------------------------
// Satellite: ServeStats::to_json round-trip
// ---------------------------------------------------------------------------

#[test]
fn serve_stats_json_round_trips() {
    let _g = trace_lock();
    let engine = fixture_engine();
    let query = multi_node_query(&engine);
    let id = engine.open_session(&query).unwrap();
    engine.expand(id, NavNodeId::ROOT).unwrap();
    let stats = engine.stats();
    assert!(!stats.stages.is_empty());

    let json = stats.to_json().expect("stats snapshot serializes");
    assert!(json.contains("\"expand_p99_us\""));
    assert!(json.contains("\"stages\""));
    assert!(json.contains("\"partition\""));
    let parsed = ServeStats::from_json(&json).expect("round-trip parses");
    assert_eq!(parsed.expand_count, stats.expand_count);
    assert_eq!(parsed.sessions_opened, stats.sessions_opened);
    assert_eq!(parsed.trace_events, stats.trace_events);
    assert_eq!(parsed.stages.len(), stats.stages.len());
    for (a, b) in parsed.stages.iter().zip(&stats.stages) {
        assert_eq!(a.stage, b.stage);
        assert_eq!(a.count, b.count);
        assert_eq!(a.p99_us, b.p99_us);
    }
    engine.close_session(id).unwrap();
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

#[test]
fn prometheus_exposition_has_types_and_monotone_buckets() {
    let _g = trace_lock();
    let engine = fixture_engine();
    let query = multi_node_query(&engine);
    let id = engine.open_session(&query).unwrap();
    engine.expand(id, NavNodeId::ROOT).unwrap();
    let text = engine.prometheus_text();

    // The exact # TYPE lines CI smoke-greps for.
    for line in [
        "# TYPE bionav_expand_latency_seconds histogram",
        "# TYPE bionav_stage_latency_seconds histogram",
        "# TYPE bionav_tree_cache_lookups_total counter",
        "# TYPE bionav_cut_cache_lookups_total counter",
        "# TYPE bionav_sessions_opened_total counter",
        "# TYPE bionav_sessions_active gauge",
        "# TYPE bionav_trace_events_total counter",
        "# TYPE bionav_degraded_expands_total counter",
        "# TYPE bionav_shed_expands_total counter",
        "# TYPE bionav_session_panics_total counter",
        "# TYPE bionav_sessions_quarantined gauge",
        "# TYPE bionav_slo_burn_rate gauge",
    ] {
        assert!(text.contains(line), "missing exposition line: {line}");
    }
    // Every (verb, window) SLO series is exported even before any burn.
    for series in [
        "bionav_slo_burn_rate{verb=\"open\",window=\"total\"}",
        "bionav_slo_burn_rate{verb=\"open\",window=\"recent\"}",
        "bionav_slo_burn_rate{verb=\"expand\",window=\"total\"}",
        "bionav_slo_burn_rate{verb=\"expand\",window=\"recent\"}",
    ] {
        assert!(text.contains(series), "missing SLO series: {series}");
    }
    assert!(text.contains("bionav_stage_latency_seconds_bucket{stage=\"partition\",le="));
    assert!(text.contains("bionav_stage_latency_seconds_count{stage=\"partition\"} 1"));
    assert!(text.contains("le=\"+Inf\""));
    // The fault plane is silent on this clean path but still exposed.
    assert!(text.contains("bionav_degraded_expands_total{rung=\"myopic\"} 0"));
    assert!(text.contains("bionav_degraded_expands_total{rung=\"static\"} 0"));
    assert!(text.contains("bionav_shed_expands_total 0"));

    // Cumulative histogram buckets must be monotone non-decreasing.
    let mut prev: Option<u64> = None;
    for line in text.lines() {
        if line.starts_with("bionav_expand_latency_seconds_bucket") {
            let v: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .expect("bucket line ends in a count");
            if let Some(p) = prev {
                assert!(v >= p, "bucket series not cumulative: {line}");
            }
            prev = Some(v);
        }
    }
    assert_eq!(
        prev,
        Some(1),
        "+Inf bucket must equal the 1 recorded EXPAND"
    );
    engine.close_session(id).unwrap();
}

#[test]
fn chrome_trace_export_is_loadable_event_json() {
    let _g = trace_lock();
    let engine = fixture_engine();
    // Probe for the fixture query BEFORE enabling tracing: `tree_for` is
    // not a request verb, so its cache-probe spans carry no request id
    // and would dilute the rid assertions below.
    let query = multi_node_query(&engine);
    trace::clear_ring();
    trace::set_enabled(true);
    trace::set_sample_every(1);
    let id = engine.open_session(&query).unwrap();
    engine.expand(id, NavNodeId::ROOT).unwrap();
    trace::set_enabled(false);

    let json = trace::chrome_trace_json();
    let events: Vec<bionav_core::trace::export::ChromeEvent> =
        serde_json::from_str(&json).expect("chrome trace parses as an event array");
    assert!(!events.is_empty(), "traced EXPAND must produce events");
    for e in &events {
        assert!(e.ph == "B" || e.ph == "E", "unexpected phase {}", e.ph);
        assert_eq!(e.cat, "bionav");
        assert!(e.ts >= 0.0);
        assert_ne!(
            e.args.rid, 0,
            "every serve-path span must carry its request id ({})",
            e.name
        );
    }
    assert!(
        events.iter().any(|e| e.name == "partition"),
        "per-stage spans missing from the trace"
    );
    assert!(events.iter().any(|e| e.name == "expand"));
    // The open and the EXPAND were separate requests, so the trace must
    // carry (at least) two distinct request ids.
    let rids: std::collections::HashSet<u64> = events.iter().map(|e| e.args.rid).collect();
    assert!(rids.len() >= 2, "distinct requests share a rid: {rids:?}");
    // Begin/End balance per thread (the exporter drops orphans).
    let mut depth = std::collections::HashMap::new();
    for e in &events {
        let d = depth.entry(e.tid).or_insert(0i64);
        *d += if e.ph == "B" { 1 } else { -1 };
        assert!(*d >= 0, "unmatched End for tid {}", e.tid);
    }
    engine.close_session(id).unwrap();
    trace::clear_ring();
}

// ---------------------------------------------------------------------------
// Overhead contract: disabled tracing records nothing anywhere
// ---------------------------------------------------------------------------

#[test]
fn disabled_tracing_emits_no_ring_events_from_the_serve_path() {
    let _g = trace_lock();
    trace::set_enabled(false);
    trace::clear_ring();
    let engine = fixture_engine();
    let query = multi_node_query(&engine);
    let before = trace::ring_pushed();
    let id = engine.open_session(&query).unwrap();
    engine.expand(id, NavNodeId::ROOT).unwrap();
    engine.close_session(id).unwrap();
    assert_eq!(
        trace::ring_pushed(),
        before,
        "tracing-off must keep the serve path off the ring entirely"
    );
    // …while the per-stage metrics (capture tape) still work.
    assert!(!engine.stats().stages.is_empty());
}
