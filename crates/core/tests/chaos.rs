//! Chaos suite for the fault-injection harness and the graceful-degradation
//! ladder (DESIGN.md §5f).
//!
//! Every test that *arms* the process-global failpoint registry lives here,
//! serialized behind [`CHAOS_LOCK`] — the lib test binary never arms, so
//! its parallel tests can't be contaminated. The suite asserts the three
//! contracts the issue names:
//!
//! 1. **No panic escapes**: injected panics at any site become typed
//!    [`EngineError`]s; batches drain; gauges balance.
//! 2. **Bit-identical clean path**: when no degradation fired (including
//!    under forced cut-cache misses), per-query costs and reveals are
//!    identical to the exact pipeline.
//! 3. **The ladder is monotone and valid**: every degraded answer is a real
//!    EdgeCut accepted by the active tree — exported state round-trips
//!    through [`Engine::restore_session`]'s `fits` validation.
//!
//! The schedule seed comes from `BIONAV_CHAOS_SEED` (CI runs 7, 1009,
//! 424242); the fired set is a pure function of the seed, so a failing
//! seed reproduces locally with the same env var.

#![cfg(not(interleave))]
#![forbid(unsafe_code)]

use std::sync::{Arc, Mutex, MutexGuard, Once};

use bionav_core::fault::{self, FailSite, Fault, FaultPlan, INJECTED_PANIC_PREFIX};
use bionav_core::session::SessionState;
use bionav_core::trace::flightrec;
use bionav_core::{
    BreakerState, CostParams, DegradePolicy, DegradeReason, Engine, EngineError, HealthPolicy,
    NavNodeId, NavigationTree, RequestCtx, ScriptOp, ShardedEngine, SharedTree, Verb,
};
use bionav_medline::corpus::{self, CorpusConfig};
use bionav_medline::InvertedIndex;
use bionav_mesh::synth::{self, sanitizer_scaled, SynthConfig};
use serde::{Deserialize, Serialize, Value};

/// Serializes the whole suite: the failpoint registry is process-global, so
/// two armed tests (or an armed test racing an unarmed engine test in this
/// binary) would cross-contaminate schedules and counters.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> MutexGuard<'static, ()> {
    // A poisoned lock only means an earlier chaos test failed its assert;
    // the registry is re-armed per test, so continuing is sound.
    CHAOS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The seed under test; CI sweeps `BIONAV_CHAOS_SEED` over 7, 1009, 424242.
fn chaos_seed() -> u64 {
    std::env::var("BIONAV_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(7)
}

/// Injected panics are expected noise here: filter their reports so the
/// test output stays readable, while every *unexpected* panic still prints
/// through the default hook.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

/// The shared engine fixture: a small synthetic hierarchy + corpus, trees
/// built per keyword on demand (same recipe as the engine unit tests).
fn fixture_engine() -> Engine<impl Fn(&str) -> Option<SharedTree> + Send + Sync> {
    let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
    let store = corpus::generate(
        &h,
        &CorpusConfig {
            n_citations: sanitizer_scaled(400, 64),
            ..CorpusConfig::default()
        },
    );
    let index = InvertedIndex::build(&store);
    Engine::new(
        move |query: &str| {
            let results = index.query(query).citations;
            if results.is_empty() {
                return None;
            }
            Some(Arc::new(NavigationTree::build(&h, &store, &results)))
        },
        CostParams::default(),
        8,
    )
}

/// Distinct result-bearing labels whose navigation trees have more than
/// `min_len` nodes (so EXPAND does real planning work).
fn multi_node_queries(
    engine: &Engine<impl Fn(&str) -> Option<SharedTree> + Send + Sync>,
    want: usize,
    min_len: usize,
) -> Vec<String> {
    let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
    let mut out: Vec<String> = Vec::new();
    for n in h.iter_preorder().skip(1) {
        let label = h.node(n).label().to_string();
        if out.contains(&label) {
            continue;
        }
        if engine.tree_for(&label).is_some_and(|t| t.len() > min_len) {
            out.push(label);
        }
        if out.len() == want {
            break;
        }
    }
    assert!(
        out.len() == want,
        "fixture needs {want} multi-node queries, found {}",
        out.len()
    );
    out
}

// ---------------------------------------------------------------------------
// Registry mechanics (moved here from fault.rs unit tests: these arm)
// ---------------------------------------------------------------------------

#[test]
fn armed_schedule_is_deterministic_per_seed() {
    let _serial = chaos_lock();
    let schedule = |seed: u64| -> Vec<bool> {
        let _g = fault::scoped(FaultPlan::new(seed).site(FailSite::SolverEntry, 3, Fault::Error));
        (0..200)
            .map(|_| fault::hit(FailSite::SolverEntry).is_some())
            .collect()
    };
    let a = schedule(chaos_seed());
    let b = schedule(chaos_seed());
    let c = schedule(chaos_seed().wrapping_add(1));
    assert_eq!(a, b, "same seed, same schedule");
    assert_ne!(a, c, "different seed, different schedule");
    let fired = a.iter().filter(|&&f| f).count();
    assert!(
        (20..=120).contains(&fired),
        "period 3 fires roughly a third of 200 evaluations, got {fired}"
    );
}

#[test]
fn period_one_fires_every_time_and_limits_cap_fires() {
    let _serial = chaos_lock();
    let _g = fault::scoped(FaultPlan::new(chaos_seed()).site_limited(
        FailSite::TreeBuild,
        1,
        Fault::Panic,
        3,
    ));
    let fired: Vec<Option<Fault>> = (0..6).map(|_| fault::hit(FailSite::TreeBuild)).collect();
    assert_eq!(
        fired,
        vec![
            Some(Fault::Panic),
            Some(Fault::Panic),
            Some(Fault::Panic),
            None,
            None,
            None
        ]
    );
    assert_eq!(fault::fires(FailSite::TreeBuild), 3);
    assert_eq!(fault::hits_seen(FailSite::TreeBuild), 6);
    // Sites not named in the plan stay silent.
    assert_eq!(fault::hit(FailSite::PoolWorker), None);
}

#[test]
fn scoped_guard_disarms_on_drop() {
    let _serial = chaos_lock();
    {
        let _g = fault::scoped(FaultPlan::new(chaos_seed()).site(
            FailSite::SessionLock,
            1,
            Fault::Error,
        ));
        assert!(fault::is_armed());
        assert_eq!(fault::hit(FailSite::SessionLock), Some(Fault::Error));
    }
    assert!(!fault::is_armed());
    assert_eq!(fault::hit(FailSite::SessionLock), None);
}

// ---------------------------------------------------------------------------
// Contract 1: no panic escapes; accounting balances under a panic storm
// ---------------------------------------------------------------------------

#[test]
fn panic_storm_fails_jobs_typed_and_drains_every_session() {
    let _serial = chaos_lock();
    quiet_injected_panics();
    let engine = fixture_engine();
    let queries = multi_node_queries(&engine, 3, 3);
    let jobs: Vec<(String, Vec<ScriptOp>)> = (0..4)
        .flat_map(|_| queries.iter().cloned())
        .map(|q| (q, vec![ScriptOp::ExpandFully]))
        .collect();

    // Unarmed reference pass: the ground-truth per-query costs.
    let reference: Vec<_> = engine
        .replay(&jobs, 1)
        .into_iter()
        .map(|r| r.expect("unarmed replay completes every job"))
        .collect();

    // Storm pass: every third solver entry dies. The fired *set* is fixed
    // by the seed; which job absorbs each fire races across workers.
    let plan = FaultPlan::new(chaos_seed()).site(FailSite::SolverEntry, 3, Fault::Panic);
    let (outcomes, fires, hits) = {
        let _armed = fault::scoped(plan);
        let outcomes = engine.replay(&jobs, 4);
        (
            outcomes,
            fault::fires(FailSite::SolverEntry),
            fault::hits_seen(FailSite::SolverEntry),
        )
    };

    let mut panicked_jobs = 0u64;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(o) => {
                // A job that survived the storm untouched is bit-identical
                // to the reference (no degradation fired on this path —
                // SolverEntry panics kill, they never degrade).
                let expected = &reference[i];
                assert_eq!(o.cost, expected.cost, "job {i}: cost diverged");
                assert_eq!(o.degraded_expands, 0);
            }
            Err(EngineError::SessionPanicked { message, .. }) => {
                assert!(
                    message.starts_with(INJECTED_PANIC_PREFIX),
                    "job {i}: unexpected panic payload {message:?}"
                );
                panicked_jobs += 1;
            }
            Err(other) => panic!("job {i}: unexpected typed error {other}"),
        }
    }

    // Accounting: every fire killed exactly one EXPAND, which killed
    // exactly one job, which was quarantined once and then drained by
    // run_script's error path.
    assert_eq!(panicked_jobs, fires, "typed errors must match fired faults");
    if hits >= 32 {
        assert!(
            fires > 0,
            "period-3 storm over {hits} evaluations fired nothing"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.session_panics, fires);
    assert_eq!(stats.sessions_active, 0, "every session drained");
    assert_eq!(
        stats.sessions_quarantined, 0,
        "every quarantined session was closed by the drain path"
    );
    assert_eq!(stats.sessions_opened, stats.sessions_closed);
}

#[test]
fn pool_worker_death_surfaces_as_typed_worker_panicked() {
    let _serial = chaos_lock();
    quiet_injected_panics();
    let engine = fixture_engine();
    let queries = multi_node_queries(&engine, 2, 3);
    let jobs: Vec<(String, Vec<ScriptOp>)> = queries
        .iter()
        .cloned()
        .map(|q| (q, vec![ScriptOp::ExpandFully]))
        .collect();

    // Period 1: every pooled task body dies before it opens a session.
    let outcomes = {
        let _armed =
            fault::scoped(FaultPlan::new(chaos_seed()).site(FailSite::PoolWorker, 1, Fault::Panic));
        engine.replay(&jobs, 2)
    };

    assert_eq!(outcomes.len(), jobs.len(), "one slot per job, even dead");
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Err(EngineError::WorkerPanicked { task, message }) => {
                assert_eq!(*task, i, "the typed error names its own task slot");
                assert!(
                    message.starts_with(INJECTED_PANIC_PREFIX),
                    "job {i}: unexpected panic payload {message:?}"
                );
            }
            other => panic!("job {i}: expected WorkerPanicked, got {other:?}"),
        }
    }

    // The deaths happened before any session opened: nothing leaks, and
    // the batch still recovers once disarmed.
    let stats = engine.stats();
    assert_eq!(stats.sessions_active, 0);
    assert_eq!(stats.sessions_opened, stats.sessions_closed);
    let recovered = engine.replay(&jobs, 2);
    assert!(
        recovered.iter().all(Result::is_ok),
        "disarmed replay completes every job"
    );
}

#[test]
fn injected_panic_quarantines_only_its_session() {
    let _serial = chaos_lock();
    quiet_injected_panics();
    let engine = fixture_engine();
    let query = &multi_node_queries(&engine, 1, 3)[0];
    let healthy = engine.open_session(query).unwrap();
    let doomed = engine.open_session(query).unwrap();

    let plan = FaultPlan::new(chaos_seed()).site_limited(FailSite::SolverEntry, 1, Fault::Panic, 1);
    let err = {
        let _armed = fault::scoped(plan);
        engine.expand(doomed, NavNodeId::ROOT).unwrap_err()
    };
    match err {
        EngineError::SessionPanicked { id, ref message } => {
            assert_eq!(id, doomed);
            assert!(
                message.starts_with(INJECTED_PANIC_PREFIX),
                "unexpected payload: {message}"
            );
        }
        other => panic!("expected SessionPanicked, got {other:?}"),
    }

    // The poisoned session refuses further work with a typed error…
    assert!(matches!(
        engine.expand(doomed, NavNodeId::ROOT),
        Err(EngineError::Quarantined(_))
    ));
    let stats = engine.stats();
    assert_eq!(stats.session_panics, 1);
    assert_eq!(stats.sessions_quarantined, 1);

    // …while its neighbor keeps serving the exact pipeline.
    let reply = engine.expand(healthy, NavNodeId::ROOT).unwrap();
    assert_eq!(reply.degraded, None);

    // close_session drains the quarantined slot and releases the gauge.
    engine.close_session(doomed).unwrap();
    assert_eq!(engine.stats().sessions_quarantined, 0);
    engine.close_session(healthy).unwrap();
}

#[test]
fn tree_build_faults_surface_as_typed_errors_then_recover() {
    let _serial = chaos_lock();
    quiet_injected_panics();
    let engine = fixture_engine();
    let queries = multi_node_queries(&engine, 2, 3);

    // Separate engine so the tree cache holds nothing yet.
    let fresh = fixture_engine();
    {
        let _armed =
            fault::scoped(FaultPlan::new(chaos_seed()).site(FailSite::TreeBuild, 1, Fault::Error));
        assert!(matches!(
            fresh.open_session(&queries[0]),
            Err(EngineError::TreeBuildFailed(_))
        ));
    }
    {
        let _armed =
            fault::scoped(FaultPlan::new(chaos_seed()).site(FailSite::TreeBuild, 1, Fault::Panic));
        // A *panicking* builder is caught by the isolation layer and comes
        // back as the same typed error, payload attached.
        match fresh.open_session(&queries[1]) {
            Err(EngineError::TreeBuildFailed(msg)) => {
                assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "payload: {msg}");
            }
            other => panic!("expected TreeBuildFailed, got {other:?}"),
        }
    }
    // Disarmed, both queries build and serve normally.
    let id = fresh.open_session(&queries[0]).unwrap();
    assert!(!fresh
        .expand(id, NavNodeId::ROOT)
        .unwrap()
        .revealed
        .is_empty());
    fresh.close_session(id).unwrap();
    let _ = engine;
}

#[test]
fn materialize_panic_quarantines_then_retries_bit_identical() {
    let _serial = chaos_lock();
    quiet_injected_panics();
    let engine = fixture_engine();
    let query = multi_node_queries(&engine, 1, 3)[0].clone();
    let job = vec![(query.clone(), vec![ScriptOp::ExpandFully])];

    // Unarmed reference pass on a separate engine (so the engine under
    // test still has a fully *unmaterialized* cached tree).
    let reference = fixture_engine().replay(&job, 1)[0]
        .as_ref()
        .expect("unarmed replay completes")
        .cost
        .clone();

    // open_session builds only the skeleton, so the materialize failpoint
    // must not fire yet — first touch is the EXPAND below.
    let doomed = {
        let _armed = fault::scoped(FaultPlan::new(chaos_seed()).site_limited(
            FailSite::TreeMaterialize,
            1,
            Fault::Panic,
            1,
        ));
        let doomed = engine.open_session(&query).unwrap();
        assert_eq!(
            fault::fires(FailSite::TreeMaterialize),
            0,
            "open_session must not materialize"
        );
        match engine.expand(doomed, NavNodeId::ROOT).unwrap_err() {
            EngineError::SessionPanicked { id, ref message } => {
                assert_eq!(id, doomed);
                assert!(
                    message.starts_with(INJECTED_PANIC_PREFIX)
                        && message.contains("tree_materialize"),
                    "unexpected payload: {message}"
                );
            }
            other => panic!("expected SessionPanicked, got {other:?}"),
        }
        assert_eq!(fault::fires(FailSite::TreeMaterialize), 1);
        doomed
    };
    assert_eq!(engine.stats().sessions_quarantined, 1);
    engine.close_session(doomed).unwrap();

    // Recovery on the SAME cached tree: the panicking initializer left the
    // OnceLock cells empty (std OnceLock does not poison), so the next
    // touch rebuilds cleanly and the cost is bit-identical to the
    // reference.
    let outcome = engine.replay(&job, 1).remove(0).expect("recovery replay");
    assert_eq!(outcome.cost, reference, "post-fault cost diverged");
    assert_eq!(outcome.degraded_expands, 0);
}

#[test]
fn session_lock_fault_is_transient_and_never_quarantines() {
    let _serial = chaos_lock();
    let engine = fixture_engine();
    let query = &multi_node_queries(&engine, 1, 3)[0];
    let id = engine.open_session(query).unwrap();
    {
        let _armed = fault::scoped(FaultPlan::new(chaos_seed()).site(
            FailSite::SessionLock,
            1,
            Fault::Error,
        ));
        assert!(matches!(
            engine.expand(id, NavNodeId::ROOT),
            Err(EngineError::SessionBusy(_))
        ));
    }
    // Transient by contract: the retry (disarmed) serves exactly.
    let reply = engine.expand(id, NavNodeId::ROOT).unwrap();
    assert_eq!(reply.degraded, None);
    assert_eq!(engine.stats().sessions_quarantined, 0);
    engine.close_session(id).unwrap();
}

// ---------------------------------------------------------------------------
// Contract 2: bit-identical costs when no degradation fired
// ---------------------------------------------------------------------------

#[test]
fn forced_cut_cache_misses_recompute_bit_identical_cuts() {
    let _serial = chaos_lock();
    let engine = fixture_engine();
    let queries = multi_node_queries(&engine, 3, 3);
    let jobs: Vec<(String, Vec<ScriptOp>)> = (0..3)
        .flat_map(|_| queries.iter().cloned())
        .map(|q| (q, vec![ScriptOp::ExpandFully]))
        .collect();

    let clean: Vec<_> = engine
        .replay(&jobs, 2)
        .into_iter()
        .map(|r| r.expect("clean replay completes"))
        .collect();

    // Every cut-cache probe refuses (a forced miss): each EXPAND re-solves
    // from scratch. The solver is deterministic, so costs and reveal
    // orders must be *bit-identical* — and nothing counts as degraded,
    // because the exact planner still answered.
    let faulted: Vec<_> = {
        let _armed = fault::scoped(FaultPlan::new(chaos_seed()).site(
            FailSite::CutCacheProbe,
            1,
            Fault::Error,
        ));
        engine
            .replay(&jobs, 2)
            .into_iter()
            .map(|r| r.expect("forced-miss replay completes"))
            .collect()
    };
    for (i, (a, b)) in clean.iter().zip(&faulted).enumerate() {
        assert_eq!(a.cost, b.cost, "job {i}: forced miss changed the cost");
        assert_eq!(
            a.expand_ns.len(),
            b.expand_ns.len(),
            "job {i}: forced miss changed the EXPAND count"
        );
        assert_eq!(b.degraded_expands, 0, "a recompute is not a degradation");
    }
    assert_eq!(engine.stats().degraded_expands, 0);
}

// ---------------------------------------------------------------------------
// Contract 3: the ladder degrades monotonically into *valid* cuts
// ---------------------------------------------------------------------------

#[test]
fn fault_degradation_yields_valid_restorable_state() {
    let _serial = chaos_lock();
    let engine = fixture_engine();
    let query = &multi_node_queries(&engine, 1, 3)[0];
    let id = engine.open_session(query).unwrap();

    // A non-panic solver-entry fault drops EXPAND onto the ladder; with no
    // retained plans the static rung answers.
    let reply = {
        let _armed = fault::scoped(FaultPlan::new(chaos_seed()).site(
            FailSite::SolverEntry,
            1,
            Fault::Deadline,
        ));
        engine.expand(id, NavNodeId::ROOT).unwrap()
    };
    assert_eq!(reply.degraded, Some(DegradeReason::Fault));
    assert!(!reply.revealed.is_empty());
    let stats = engine.stats();
    assert_eq!(stats.degraded_expands, 1);
    assert_eq!(stats.degraded_static, 1);

    // Validity, the strong form: the degraded cut went through the active
    // tree like any exact cut, so the exported state passes the `fits`
    // connectivity validation and restores into a serving session.
    let state: SessionState = engine.close_session(id).unwrap();
    let restored = engine
        .restore_session(query, state)
        .expect("degraded state restores");
    let next = engine.expand(restored, NavNodeId::ROOT);
    match next {
        Ok(r) => assert_eq!(r.degraded, None, "disarmed engine serves exactly"),
        Err(EngineError::Cut(_)) => {} // root may already be fully expanded
        Err(other) => panic!("restored session must serve: {other}"),
    }
    engine.close_session(restored).unwrap();
}

#[test]
fn myopic_rung_serves_from_retained_plans() {
    let _serial = chaos_lock();
    // reuse_plans retains solver memos in the session; the myopic rung can
    // then answer a degraded EXPAND from the retained plan instead of
    // falling all the way to the static cut.
    let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
    let store = corpus::generate(
        &h,
        &CorpusConfig {
            n_citations: sanitizer_scaled(400, 64),
            ..CorpusConfig::default()
        },
    );
    let index = InvertedIndex::build(&store);
    let params = CostParams {
        reuse_plans: true,
        ..CostParams::default()
    };
    let mut engine = Engine::new(
        move |query: &str| {
            let results = index.query(query).citations;
            if results.is_empty() {
                return None;
            }
            Some(Arc::new(NavigationTree::build(&h, &store, &results)))
        },
        params,
        8,
    );
    let query = &multi_node_queries(&engine, 1, 5)[0];
    let id = engine.open_session(query).unwrap();
    // Exact first EXPAND retains the children's plans…
    let first = engine.expand(id, NavNodeId::ROOT).unwrap();
    assert_eq!(first.degraded, None);
    // …then every further EXPAND is forced onto the ladder by policy.
    engine.set_policy(DegradePolicy {
        exact_node_budget: 1,
        ..DegradePolicy::default()
    });
    let target = engine
        .with_session(id, |s| {
            s.nav()
                .iter_preorder()
                .find(|&n| s.active().is_visible(n) && s.component_size(n) > 1)
        })
        .unwrap();
    if let Some(node) = target {
        let reply = engine.expand(id, node).unwrap();
        assert_eq!(reply.degraded, Some(DegradeReason::StepBudget));
        assert!(!reply.revealed.is_empty());
        let stats = engine.stats();
        assert_eq!(stats.degraded_expands, 1);
        assert!(
            stats.degraded_myopic == 1 || stats.degraded_static == 1,
            "one ladder rung answered: {stats:?}"
        );
        // With a retained plan for this node the memo rung specifically
        // must have answered.
        assert_eq!(
            stats.degraded_myopic, 1,
            "retained plan feeds the myopic rung"
        );
    }
    engine.close_session(id).unwrap();
}

// ---------------------------------------------------------------------------
// Satellite: stale / corrupt SessionState is refused, never a panic
// ---------------------------------------------------------------------------

#[test]
fn stale_or_foreign_session_state_is_refused_typed() {
    let _serial = chaos_lock();
    let engine = fixture_engine();
    let queries = multi_node_queries(&engine, 2, 3);
    // Only meaningful when the two queries build different-shaped trees.
    let len0 = engine.tree_for(&queries[0]).unwrap().len();
    let len1 = engine.tree_for(&queries[1]).unwrap().len();

    let id = engine.open_session(&queries[0]).unwrap();
    engine.expand(id, NavNodeId::ROOT).unwrap();
    let state = engine.close_session(id).unwrap();

    if len0 != len1 {
        // Foreign tree: the state was exported over queries[0]'s tree.
        assert!(matches!(
            engine.restore_session(&queries[1], state.clone()),
            Err(EngineError::StateMismatch)
        ));
    }
    // Unknown query still reports the query problem, not a state problem.
    assert!(matches!(
        engine.restore_session("zzz-no-such-term-zzz", state.clone()),
        Err(EngineError::UnknownQuery(_))
    ));
    // The untampered state still restores.
    let ok = engine.restore_session(&queries[0], state).unwrap();
    engine.close_session(ok).unwrap();
}

#[test]
fn json_tampered_session_state_with_out_of_range_ids_is_refused() {
    let _serial = chaos_lock();
    let engine = fixture_engine();
    let query = &multi_node_queries(&engine, 1, 3)[0];
    let id = engine.open_session(query).unwrap();
    engine.expand(id, NavNodeId::ROOT).unwrap();
    let state = engine.close_session(id).unwrap();

    // Round-trip the persisted document and corrupt the component map: an
    // out-of-range node id (as a hostile or stale save file would carry).
    // The vendored serde framework is Value-tree based, so tampering edits
    // the tree directly instead of going through a `json!` macro.
    let mut doc = state.to_value();
    {
        fn field_mut<'a>(v: &'a mut Value, key: &str) -> Option<&'a mut Value> {
            match v {
                Value::Object(entries) => entries
                    .iter_mut()
                    .find(|(k, _)| k == key)
                    .map(|(_, val)| val),
                _ => None,
            }
        }
        let comp_root = field_mut(&mut doc, "active")
            .and_then(|a| field_mut(a, "comp_root"))
            .expect("persisted state exposes active.comp_root");
        match comp_root {
            Value::Array(ids) => {
                assert!(!ids.is_empty());
                ids[0] = Value::U64(9_999_999);
            }
            other => panic!("active.comp_root should be an array, got {other:?}"),
        }
    }
    let corrupt =
        SessionState::from_value(&doc).expect("tampered doc still parses as SessionState");

    // The engine refuses with the typed error — no panic, no session leak.
    assert!(matches!(
        engine.restore_session(query, corrupt),
        Err(EngineError::StateMismatch)
    ));
    assert_eq!(engine.stats().sessions_active, 0);
}

// ---------------------------------------------------------------------------
// Admission gate accounting under real concurrency
// ---------------------------------------------------------------------------

#[test]
fn admission_gate_accounting_balances_under_concurrency() {
    let _serial = chaos_lock();
    let engine = fixture_engine().with_policy(DegradePolicy {
        max_inflight_expands: 1,
        ..DegradePolicy::default()
    });
    let query = &multi_node_queries(&engine, 1, 3)[0];
    let sessions: Vec<_> = (0..4)
        .map(|_| engine.open_session(query).unwrap())
        .collect();

    // Four threads hammer EXPAND through a one-slot gate. Whether any
    // request is actually shed is scheduling-dependent (never asserted);
    // what must hold is the books: served + shed == attempted, and the
    // engine's shed counter matches the callers' observations.
    let (served, shed) = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|&id| {
                let engine = &engine;
                scope.spawn(move || {
                    let mut served = 0u64;
                    let mut shed = 0u64;
                    for _ in 0..8 {
                        match engine.expand(id, NavNodeId::ROOT) {
                            Ok(_) | Err(EngineError::Cut(_)) => served += 1,
                            Err(EngineError::Overloaded) => shed += 1,
                            Err(other) => panic!("unexpected refusal: {other}"),
                        }
                    }
                    (served, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gate worker panicked"))
            .fold((0u64, 0u64), |(s, d), (a, b)| (s + a, d + b))
    });
    assert_eq!(served + shed, 32, "every attempt accounted for");
    let stats = engine.stats();
    assert_eq!(stats.shed_expands, shed, "engine agrees with the callers");
    assert_eq!(stats.degraded_expands, 0, "shedding is not degradation");
    for id in sessions {
        engine.close_session(id).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Sharded tier: per-shard fault scoping (DESIGN.md §5h)
// ---------------------------------------------------------------------------

/// A sharded fixture tier: `n` independent copies of the fixture engine
/// behind the consistent-hash router (each tagged with its shard index at
/// construction, which is what `FaultPlan::only_shard` filters on).
fn fixture_sharded(n: usize) -> ShardedEngine<impl Fn(&str) -> Option<SharedTree> + Send + Sync> {
    ShardedEngine::new(n, |_| fixture_engine())
}

/// Fixture queries partitioned by their sticky home shard on a 2-shard
/// ring; both sides must be populated (the ring layout is deterministic,
/// so this is a property of the fixture, not of the run).
fn queries_by_home_shard(
    sharded: &ShardedEngine<impl Fn(&str) -> Option<SharedTree> + Send + Sync>,
    want: usize,
) -> [Vec<String>; 2] {
    let queries = multi_node_queries(sharded.engine(0), want, 3);
    let mut homes: [Vec<String>; 2] = [Vec::new(), Vec::new()];
    for q in queries {
        let home = sharded.shard_for_query(&q);
        homes[home].push(q);
    }
    assert!(
        !homes[0].is_empty() && !homes[1].is_empty(),
        "fixture queries must cover both shards: {homes:?}"
    );
    homes
}

/// A panic storm armed with `only_shard(0)` on a two-shard tier: every
/// typed failure lands on a job homed on shard 0, shard 1's outcomes are
/// *bit-identical* to an unarmed pass of the same job tape, shard 1's
/// health counters never move, and both shards drain fully — the blast
/// radius of a shard-scoped fault is exactly one shard.
#[test]
fn shard_scoped_panic_storm_quarantines_only_shard_zero() {
    let _serial = chaos_lock();
    quiet_injected_panics();
    let reference_tier = fixture_sharded(2);
    let homes = queries_by_home_shard(&reference_tier, 4);
    let jobs: Vec<(String, Vec<ScriptOp>)> = (0..3)
        .flat_map(|_| homes.iter().flatten().cloned())
        .map(|q| (q, vec![ScriptOp::ExpandFully]))
        .collect();
    let home_of: Vec<usize> = jobs
        .iter()
        .map(|(q, _)| reference_tier.shard_for_query(q))
        .collect();

    // Unarmed reference pass on its own tier: ground truth per job.
    let reference: Vec<_> = reference_tier
        .replay(&jobs, 2)
        .into_iter()
        .map(|r| r.expect("unarmed replay completes every job"))
        .collect();

    // Storm pass: every solver entry on shard 0 dies; shard 1 is outside
    // the plan's scope and must not notice the storm at all.
    let storm_tier = fixture_sharded(2);
    let plan = FaultPlan::new(chaos_seed())
        .site(FailSite::SolverEntry, 1, Fault::Panic)
        .only_shard(0);
    let (outcomes, fires) = {
        let _armed = fault::scoped(plan);
        let outcomes = storm_tier.replay(&jobs, 4);
        (outcomes, fault::fires(FailSite::SolverEntry))
    };

    let mut panicked_jobs = 0u64;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(o) => {
                assert_eq!(
                    o.cost, reference[i].cost,
                    "job {i} (shard {}): survived jobs must be bit-identical",
                    home_of[i]
                );
                assert_eq!(o.degraded_expands, 0);
            }
            Err(EngineError::SessionPanicked { message, .. }) => {
                assert_eq!(
                    home_of[i], 0,
                    "job {i}: a shard-0-scoped storm killed a shard-{} job",
                    home_of[i]
                );
                assert!(
                    message.starts_with(INJECTED_PANIC_PREFIX),
                    "job {i}: unexpected panic payload {message:?}"
                );
                panicked_jobs += 1;
            }
            Err(other) => panic!("job {i}: unexpected typed error {other}"),
        }
    }
    assert!(panicked_jobs > 0, "period-1 storm on shard 0 fired nothing");
    assert_eq!(panicked_jobs, fires, "typed errors must match fired faults");

    // Shard 1 never saw a fault; shard 0 absorbed every one of them.
    let h1 = storm_tier.shard_health(1);
    assert_eq!(h1.session_panics, 0, "the storm leaked across shards");
    assert_eq!(h1.sessions_quarantined, 0);
    assert_eq!(h1.degraded_expands, 0);
    assert_eq!(storm_tier.shard_health(0).session_panics, fires);
    // And the whole tier drained: replay's error path closes what it kills.
    let merged = storm_tier.stats();
    assert_eq!(merged.sessions_active, 0);
    assert_eq!(merged.sessions_quarantined, 0);
    assert_eq!(merged.sessions_opened, merged.sessions_closed);
}

/// The health-bias reroute drill: a shard-0-scoped panic quarantines a
/// session, tripping the tier's `max_quarantined` policy — new cold opens
/// for shard-0-homed queries divert to shard 1 (and serve cleanly there
/// even while the shard-0 storm is still armed), sticky routing still
/// drains the poisoned session on shard 0, and placement snaps back to
/// the home shard the moment the quarantined slot drains.
#[test]
fn health_bias_reroutes_cold_opens_and_snaps_back() {
    let _serial = chaos_lock();
    quiet_injected_panics();
    let sharded = fixture_sharded(2).with_health_policy(HealthPolicy {
        max_quarantined: 1,
        ..HealthPolicy::default()
    });
    let homes = queries_by_home_shard(&sharded, 4);
    let on_zero = homes[0][0].clone();

    let doomed = sharded.open_session(&on_zero).expect("healthy tier opens");
    assert_eq!(doomed.shard(), 0, "no bias yet: sticky home placement");

    let plan = FaultPlan::new(11)
        .site(FailSite::SolverEntry, 1, Fault::Panic)
        .only_shard(0);
    let _armed = fault::scoped(plan);
    match sharded.expand(doomed, NavNodeId::ROOT) {
        Err(EngineError::SessionPanicked { .. }) => {}
        other => panic!("expected SessionPanicked on shard 0, got {other:?}"),
    }
    assert_eq!(sharded.shard_health(0).sessions_quarantined, 1);

    // The tripped policy moves *new* opens off the sick shard…
    assert_eq!(sharded.open_placement(&on_zero), 1);
    let rerouted = sharded.open_session(&on_zero).expect("reroute opens");
    assert_eq!(rerouted.shard(), 1, "cold open must divert to shard 1");
    // …where it serves exactly, even with the shard-0 storm still armed
    // (the shard filter keeps shard 1 outside the blast radius).
    let reply = sharded
        .expand(rerouted, NavNodeId::ROOT)
        .expect("rerouted session serves on the healthy shard");
    assert_eq!(reply.degraded, None);
    sharded.close_session(rerouted).expect("rerouted drains");

    // Stickiness: the poisoned session still routes to shard 0 and drains
    // there; recovery snaps placement back to the home shard.
    sharded.close_session(doomed).expect("quarantined drains");
    assert_eq!(sharded.shard_health(0).sessions_quarantined, 0);
    assert_eq!(sharded.open_placement(&on_zero), 0, "bias must lift");
    let merged = sharded.stats();
    assert_eq!(merged.sessions_active, 0);
    assert_eq!(merged.sessions_opened, merged.sessions_closed);
}

// ---------------------------------------------------------------------------
// Circuit breaker: the shard-scoped slow-shard drill (DESIGN.md §5k)
// ---------------------------------------------------------------------------

/// The slow-shard drill: a shard-0-scoped Deadline storm at the solver
/// entry degrades every shard-0 EXPAND onto the ladder, which trips
/// *only* shard 0's breaker. While the storm is still armed, shard-1-homed
/// jobs replay bit-identical to an unarmed reference tier and shard 1's
/// health counters never move; sticky EXPANDs into the open breaker
/// fast-fail typed with a live retry hint without touching the shard
/// engine; and once the storm lifts, the jittered probe schedule re-closes
/// the breaker and placement snaps back to the home shard.
#[test]
fn slow_shard_storm_trips_only_its_own_breaker_and_recovers() {
    let _serial = chaos_lock();
    let sharded = fixture_sharded(2).with_health_policy(HealthPolicy {
        max_degraded_expands: 1,
        // 200 ms open period: wide enough that the fast-fail asserts below
        // run while the breaker is still open (even on a loaded CI box),
        // short enough to recover in-test.
        breaker_open_ns: 200_000_000,
        breaker_seed: chaos_seed(),
        ..HealthPolicy::default()
    });
    let homes = queries_by_home_shard(&sharded, 4);
    let on_zero = homes[0][0].clone();

    // Ground truth for the healthy shard: an unarmed reference tier
    // replays the shard-1-homed job tape.
    let well_jobs: Vec<(String, Vec<ScriptOp>)> = homes[1]
        .iter()
        .cloned()
        .map(|q| (q, vec![ScriptOp::ExpandFully]))
        .collect();
    let reference: Vec<_> = fixture_sharded(2)
        .replay(&well_jobs, 2)
        .into_iter()
        .map(|r| r.expect("unarmed replay completes every job"))
        .collect();

    let parked = sharded.open_session(&on_zero).unwrap();
    assert_eq!(parked.shard(), 0, "sticky home placement before the storm");

    let armed = fault::scoped(
        FaultPlan::new(chaos_seed())
            .site(FailSite::SolverEntry, 1, Fault::Deadline)
            .only_shard(0),
    );

    // The slow shard *degrades* (the ladder answers); it does not error.
    let reply = sharded.expand(parked, NavNodeId::ROOT).unwrap();
    assert_eq!(reply.degraded, Some(DegradeReason::Fault));
    assert!(!reply.revealed.is_empty());

    // The next placement probe sees the degrade delta and trips only the
    // faulted shard's breaker; cold opens divert to the well shard.
    assert_eq!(sharded.open_placement(&on_zero), 1);
    assert_eq!(sharded.breaker_state(0), BreakerState::Open);
    assert_eq!(sharded.breaker(0).trips(), 1);
    assert_eq!(sharded.breaker_state(1), BreakerState::Closed);
    assert_eq!(sharded.breaker(1).trips(), 0);

    // Sticky EXPANDs into the open breaker fast-fail typed with a live
    // retry hint — and never reach the shard engine. (Checked right after
    // the trip, well inside the 200 ms open period; the slower replay
    // drill below would otherwise outlast the probe delay.)
    let before = sharded.shard_stats(0).expand_count;
    match sharded.expand(parked, NavNodeId::ROOT) {
        Err(EngineError::BreakerOpen {
            shard,
            retry_after_ns,
        }) => {
            assert_eq!(shard, 0);
            assert!(retry_after_ns >= 1, "retry hint must be live");
        }
        other => panic!("expected BreakerOpen, got {other:?}"),
    }
    assert_eq!(sharded.shard_stats(0).expand_count, before);
    assert!(sharded.shard_stats(0).breaker_rejects >= 1);

    // Blast radius: with the storm still armed, the well shard serves the
    // whole tape bit-identical to the unarmed reference, and its health
    // counters never move.
    let stormy: Vec<_> = sharded
        .replay(&well_jobs, 2)
        .into_iter()
        .map(|r| r.expect("well-shard replay completes under the storm"))
        .collect();
    for (i, (a, b)) in reference.iter().zip(&stormy).enumerate() {
        assert_eq!(a.cost, b.cost, "well job {i}: cost diverged");
        assert_eq!(b.degraded_expands, 0, "well job {i}: degraded");
    }
    assert_eq!(
        sharded.shard_health(1).degraded_expands,
        0,
        "the storm leaked across shards"
    );

    // CLOSE bypasses the breaker: the sick shard stays drainable.
    sharded.close_session(parked).unwrap();

    // The storm lifts; stale counters reset; past the worst-case probe
    // delay (open_ns + 25 % jitter), PROBES_TO_CLOSE healthy probes
    // re-close the breaker and placement snaps back to the home shard.
    drop(armed);
    sharded.reset_shard_stats(0);
    std::thread::sleep(std::time::Duration::from_millis(260));
    for _ in 0..bionav_core::breaker::PROBES_TO_CLOSE {
        assert_eq!(sharded.open_placement(&on_zero), 0);
    }
    assert_eq!(sharded.breaker_state(0), BreakerState::Closed);
    assert_eq!(
        sharded.open_placement(&on_zero),
        0,
        "placement snapped back"
    );
    let merged = sharded.stats();
    assert_eq!(merged.sessions_active, 0);
    assert_eq!(merged.sessions_opened, merged.sessions_closed);
}

// ---------------------------------------------------------------------------
// Flight recorder: black-box capture of faulted requests (DESIGN.md §5j)
// ---------------------------------------------------------------------------

/// The acceptance drill for the request-context plane: an EXPAND carrying
/// a wire-style request context hits an armed failpoint, and the flight
/// recorder must end up holding exactly one entry naming the request id,
/// the owning shard, the fired fault site, and the degradation rung that
/// answered — the black-box record an operator reads after the fact.
#[test]
fn armed_failpoint_lands_in_the_flight_recorder_with_full_attribution() {
    let _serial = chaos_lock();
    let sharded = fixture_sharded(2);
    let homes = queries_by_home_shard(&sharded, 4);
    // A shard-1-homed query, so the shard attribution below can't pass by
    // accident of a zero default.
    let query = homes[1][0].clone();
    let id = sharded.open_session(&query).unwrap();
    assert_eq!(id.shard(), 1, "fixture query is homed on shard 1");

    let rid = 0xBEEF_0001u64;
    {
        let _armed = fault::scoped(FaultPlan::new(chaos_seed()).site(
            FailSite::SolverEntry,
            1,
            Fault::Deadline,
        ));
        let ctx = RequestCtx {
            request_id: rid,
            session: Some(id.to_bits()),
            deadline_ns: 0,
        };
        let _scope = flightrec::request_scope(ctx, Verb::Expand);
        let reply = sharded.expand(id, NavNodeId::ROOT).unwrap();
        assert_eq!(reply.degraded, Some(DegradeReason::Fault));
    }
    sharded.close_session(id).unwrap();

    let entries: Vec<_> = flightrec::flight_snapshot()
        .into_iter()
        .filter(|e| e.request_id == rid)
        .collect();
    assert_eq!(
        entries.len(),
        1,
        "exactly one summary for the faulted request"
    );
    let e = &entries[0];
    assert_eq!(e.verb, Verb::Expand);
    assert_eq!(e.shard, Some(1), "the owning shard is named");
    assert_eq!(
        e.fault_site_name(),
        "solver_entry",
        "the fired fault site is named"
    );
    assert_eq!(e.rung_name(), "static", "the answering rung is named");
    assert_eq!(
        e.error, 0,
        "the ladder absorbed the fault; no error escaped"
    );
    assert!(e.total_ns > 0, "the request accrued wall time");
    // The JSON export carries the same attribution (what the wire `DEBUG`
    // verb and the CI smoke step consume).
    let json = flightrec::entries_json(&entries);
    assert!(json.contains("\"fault_site\":\"solver_entry\""), "{json}");
    assert!(json.contains("\"rung\":\"static\""), "{json}");
}
