//! Deep-chain regression tests (ISSUE 6 satellite): the maximum embedding
//! used to be a recursive walk, so a deep-narrow hierarchy overflowed the
//! thread stack and aborted the whole process — bypassing the
//! panic-isolation plane entirely. The build now runs on an explicit
//! work-stack; these tests pin that by embedding a 100k-level spine, far
//! past any default stack's recursion budget.

use bionav_core::{NavNodeId, NavigationTree};
use bionav_medline::{Citation, CitationId, CitationStore};
use bionav_mesh::synth::deep_chain;
use bionav_mesh::DescriptorId;

const LEVELS: usize = 100_000;

/// Sparse spine: one citation at the deepest concept. Every intermediate
/// level is empty and elides away, so the navigation tree is just
/// root + leaf — but the embedding walk still has to traverse (and the
/// old recursive version still overflowed on) all 100k levels.
#[test]
fn hundred_thousand_level_chain_with_a_deep_leaf_embeds() {
    let h = deep_chain(LEVELS);
    let mut store = CitationStore::new();
    store
        .insert(Citation::new(
            CitationId(1),
            "deep",
            vec![],
            vec![DescriptorId(LEVELS as u32)],
            vec![],
        ))
        .unwrap();
    let nav = NavigationTree::build(&h, &store, &[CitationId(1)]);

    assert_eq!(nav.len(), 2, "empty middle of the spine elides away");
    let leaf = nav.find_by_label(&format!("chain-{LEVELS}")).unwrap();
    assert_eq!(nav.parent(leaf), Some(NavNodeId::ROOT));
    assert_eq!(nav.nav_depth(leaf), 1);
    assert_eq!(nav.hierarchy_depth(leaf), LEVELS as u32);
    assert_eq!(nav.results_count(leaf), 1);
    assert!(nav.subtree_set(leaf).contains(0));
}

/// Dense spine: the citation is indexed with every level, so no node
/// elides and the navigation tree is the full 100k-node chain. Exercises
/// the whole arena build — CSR children, depths, subtree ranges — plus
/// lazy materialization at depth.
#[test]
fn hundred_thousand_level_chain_fully_occupied_embeds() {
    let h = deep_chain(LEVELS);
    let mut store = CitationStore::new();
    let concepts: Vec<DescriptorId> = (1..=LEVELS as u32).map(DescriptorId).collect();
    store
        .insert(Citation::new(
            CitationId(1),
            "spine",
            vec![],
            concepts,
            vec![],
        ))
        .unwrap();
    let nav = NavigationTree::build(&h, &store, &[CitationId(1)]);

    assert_eq!(nav.len(), LEVELS + 1, "no node elides");
    let leaf = nav.find_by_label(&format!("chain-{LEVELS}")).unwrap();
    assert_eq!(nav.nav_depth(leaf), LEVELS as u32);
    assert_eq!(nav.hierarchy_depth(leaf), LEVELS as u32);

    // The skeleton is built, yet nothing has materialized.
    assert_eq!(nav.materialized_subtrees(), 0);
    assert_eq!(nav.lazy_subtrees(), 1);

    // Touching the leaf materializes the (single) top-level subtree and
    // the per-node sets come out right even 100k levels down.
    assert!(nav.results(leaf).contains(0));
    assert_eq!(nav.materialized_subtrees(), 1);
    assert_eq!(nav.subtree_distinct(NavNodeId(1)), 1);
    assert_eq!(nav.subtree_nodes(NavNodeId(1)).len(), LEVELS);
    assert!(nav.is_ancestor(NavNodeId(1), leaf));
}
