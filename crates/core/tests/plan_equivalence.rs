//! Property-based equivalence suite for the single-pass EXPAND pipeline
//! (ISSUE 2).
//!
//! The optimized planner ([`bionav_core::edgecut::heuristic::plan_component`])
//! restructured the hot path: one partitioning loop, one reduced-problem
//! build, one exact solve whose memo is retained inside the returned
//! [`ReducedPlan`]. The historical two-pass pipeline is kept verbatim in
//! [`bionav_core::edgecut::heuristic::reference`] precisely so this suite
//! can assert, over *generated* hierarchies:
//!
//! 1. identical `ExpandOutcome`s (cut, reduced size, fallback flag, and
//!    bit-identical `estimated_cost`) and identical retained plans;
//! 2. retained-memo cuts ([`ReducedPlan::cut`]) bit-identical to throwaway
//!    solves ([`ReducedPlan::cut_uncached`]) across whole mask cascades;
//! 3. identical replayed navigations — full-expansion [`Session`] replays
//!    produce equal action logs and equal [`NavOutcome`] totals against
//!    reference-driven replays, with plan reuse both off and on.
//!
//! Together with the counter-instrumented test in `heuristic.rs` (one
//! partition run + one solve per fresh EXPAND, zero for retained ones),
//! this is the acceptance evidence that the tail-latency work changed
//! *when* the solver runs, never *what* it computes.

use std::collections::HashMap;
use std::sync::Arc;

use bionav_core::active::ActiveTree;
use bionav_core::edgecut::heuristic::{self, reference, PlannedCut, ReducedPlan};
use bionav_core::session::Session;
use bionav_core::sim::NavOutcome;
use bionav_core::{CostParams, NavNodeId, NavigationTree, Planner};
use bionav_medline::{Citation, CitationId, CitationStore};
use bionav_mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};
use proptest::prelude::*;

/// A generated concept hierarchy: a pre-order parent vector plus a
/// citation count per node.
#[derive(Debug, Clone)]
struct TreeSpec {
    /// `parents[i - 1] % i` is the parent of node `i` (node 0 is the root).
    parents: Vec<usize>,
    /// Citations annotated with node `i`'s descriptor.
    cites: Vec<u32>,
}

fn tree_spec() -> impl Strategy<Value = TreeSpec> {
    (3usize..22).prop_flat_map(|n| {
        let parents = proptest::collection::vec(0usize..n, n - 1);
        // Mix empty, small, and threshold-crossing citation loads so both
        // the pinned (p = 0 / p = 1) and interpolated EXPAND-probability
        // regimes appear.
        let cites = proptest::collection::vec(0u32..15, n);
        (parents, cites).prop_map(|(parents, cites)| TreeSpec { parents, cites })
    })
}

/// Materializes the spec as a real navigation tree via the MeSH + MEDLINE
/// pipeline (tree numbers encode the generated shape).
fn build_nav(spec: &TreeSpec) -> NavigationTree {
    let n = spec.parents.len() + 1;
    let mut tns: Vec<TreeNumber> = Vec::with_capacity(n);
    tns.push(TreeNumber::parse("A01").expect("root tree number"));
    let mut child_ord = vec![0usize; n];
    for i in 1..n {
        let p = spec.parents[i - 1] % i;
        child_ord[p] += 1;
        tns.push(tns[p].child(&format!("{:03}", 100 + child_ord[p])));
    }
    let descs: Vec<Descriptor> = (0..n)
        .map(|i| {
            Descriptor::new(
                DescriptorId(i as u32 + 1),
                format!("concept-{i}"),
                vec![tns[i].clone()],
            )
        })
        .collect();
    let h = ConceptHierarchy::from_descriptors(&descs).expect("generated hierarchy is valid");

    let mut store = CitationStore::new();
    let mut results = Vec::new();
    let mut next = 1u32;
    let mut add = |concept: u32, store: &mut CitationStore, results: &mut Vec<CitationId>| {
        store
            .insert(Citation::new(
                CitationId(next),
                "t",
                vec![],
                vec![DescriptorId(concept)],
                vec![],
            ))
            .expect("fresh citation id");
        results.push(CitationId(next));
        next += 1;
    };
    for (i, &c) in spec.cites.iter().enumerate() {
        for _ in 0..c {
            add(i as u32 + 1, &mut store, &mut results);
        }
    }
    if results.is_empty() {
        // Degenerate all-zero draw: give the root one citation so the
        // navigation tree is non-empty.
        add(1, &mut store, &mut results);
    }
    NavigationTree::build(&h, &store, &results)
}

/// The (max_partitions, planner) grid every property runs over.
fn configs() -> Vec<CostParams> {
    let mut out = Vec::new();
    for k in [2usize, 4, 10] {
        for planner in [Planner::Exhaustive, Planner::Recursive] {
            let mut p = CostParams::default().with_max_partitions(k);
            p.planner = planner;
            out.push(p);
        }
    }
    out
}

fn assert_outcomes_match(a: &heuristic::ExpandOutcome, b: &heuristic::ExpandOutcome) {
    assert_eq!(a.cut, b.cut, "cuts diverge");
    assert_eq!(a.reduced_size, b.reduced_size, "reduced sizes diverge");
    assert_eq!(a.fallback, b.fallback, "fallback flags diverge");
    assert!(
        a.estimated_cost.to_bits() == b.estimated_cost.to_bits()
            || (a.estimated_cost.is_nan() && b.estimated_cost.is_nan()),
        "estimated costs diverge: {} vs {}",
        a.estimated_cost,
        b.estimated_cost
    );
}

fn assert_planned_match(a: &PlannedCut, b: &PlannedCut) {
    assert_eq!(a.cut, b.cut, "planned cuts diverge");
    assert_eq!(a.upper_mask, b.upper_mask, "upper masks diverge");
    assert_eq!(a.lowers, b.lowers, "lower masks diverge");
}

/// Mirrors `Session::register_plan` for the reference-driven replay.
fn register(
    plans: &mut HashMap<NavNodeId, (Arc<ReducedPlan>, u64)>,
    plan: &Arc<ReducedPlan>,
    upper_root: NavNodeId,
    upper_mask: u64,
    lowers: &[(NavNodeId, u64)],
) {
    let mut put = |root: NavNodeId, mask: u64| {
        if mask.count_ones() > 1 {
            plans.insert(root, (plan.clone(), mask));
        } else {
            plans.remove(&root);
        }
    };
    put(upper_root, upper_mask);
    for &(root, mask) in lowers {
        put(root, mask);
    }
}

/// Fully expands `nav` with the production pipeline (plan reuse per
/// `params`), then SHOWRESULTS on every node; returns the log and totals.
fn replay_production(nav: &NavigationTree, params: &CostParams) -> (Vec<String>, NavOutcome) {
    let mut session = Session::new(nav, params.clone());
    let mut guard = 0usize;
    while let Some(hidden) = nav
        .iter_preorder()
        .find(|&n| !session.active().is_visible(n))
    {
        let root = session.active().component_root_of(hidden);
        session.expand(root).expect("multi-node component expands");
        guard += 1;
        assert!(guard <= nav.len(), "production replay failed to progress");
    }
    for node in nav.iter_preorder() {
        session.show_results(node).expect("all nodes visible");
    }
    let log: Vec<String> = session.log().iter().map(|a| format!("{a:?}")).collect();
    (log, session.cost().clone())
}

/// Fully expands `nav` driving the session with cuts from the kept-for-test
/// two-pass reference pipeline. With `reuse` set, retained plans are
/// mirrored via `ReducedPlan::cut_uncached` (throwaway memos), i.e. the
/// reference replay never benefits from the retained solver memo.
fn replay_reference(
    nav: &NavigationTree,
    params: &CostParams,
    reuse: bool,
) -> (Vec<String>, NavOutcome) {
    let mut session = Session::new(nav, params.clone());
    let mut plans: HashMap<NavNodeId, (Arc<ReducedPlan>, u64)> = HashMap::new();
    let mut guard = 0usize;
    while let Some(hidden) = nav
        .iter_preorder()
        .find(|&n| !session.active().is_visible(n))
    {
        let root = session.active().component_root_of(hidden);
        let mut done = false;
        if reuse {
            if let Some((plan, mask)) = plans.get(&root).cloned() {
                if let Some(pc) = plan.cut_uncached(mask, params) {
                    session
                        .expand_with(root, &pc.cut)
                        .expect("planned cut is valid");
                    register(&mut plans, &plan, root, pc.upper_mask, &pc.lowers);
                    done = true;
                } else {
                    plans.remove(&root);
                }
            }
        }
        if !done {
            let comp = session.active().component_nodes(nav, root);
            let (out, planned) =
                reference::plan_component(nav, &comp, params).expect("component expands");
            session
                .expand_with(root, &out.cut)
                .expect("reference cut is valid");
            plans.remove(&root);
            if reuse {
                if let Some((plan, pc)) = planned {
                    let plan = Arc::new(plan);
                    register(&mut plans, &plan, root, pc.upper_mask, &pc.lowers);
                }
            }
        }
        guard += 1;
        assert!(guard <= nav.len(), "reference replay failed to progress");
    }
    for node in nav.iter_preorder() {
        session.show_results(node).expect("all nodes visible");
    }
    let log: Vec<String> = session.log().iter().map(|a| format!("{a:?}")).collect();
    (log, session.cost().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: the single-pass pipeline's outcome and retained plan are
    /// identical to the two-pass reference's, for every config.
    #[test]
    fn single_pass_planning_matches_the_two_pass_reference(spec in tree_spec()) {
        let nav = build_nav(&spec);
        let active = ActiveTree::new(&nav);
        let comp = active.component_nodes(&nav, NavNodeId::ROOT);
        for params in configs() {
            let fast = heuristic::plan_component(&nav, &comp, &params);
            let slow = reference::plan_component(&nav, &comp, &params);
            match (&fast, &slow) {
                (None, None) => {}
                (Some((fo, fp)), Some((so, sp))) => {
                    assert_outcomes_match(fo, so);
                    match (fp, sp) {
                        (None, None) => {}
                        (Some((fplan, fcut)), Some((splan, scut))) => {
                            prop_assert_eq!(fplan.len(), splan.len());
                            prop_assert_eq!(fplan.full_mask(), splan.full_mask());
                            assert_planned_match(fcut, scut);
                        }
                        _ => prop_assert!(false, "plan retention diverges for {:?}", params),
                    }
                }
                _ => prop_assert!(false, "outcome presence diverges for {:?}", params),
            }
        }
    }

    /// Property 2: retained-memo cuts equal throwaway-solver cuts over the
    /// whole cascade of sub-component masks a plan can be asked about, and
    /// the memo actually accumulates entries while serving them.
    #[test]
    fn retained_memo_cuts_match_uncached_solves(spec in tree_spec()) {
        let nav = build_nav(&spec);
        let active = ActiveTree::new(&nav);
        let comp = active.component_nodes(&nav, NavNodeId::ROOT);
        for params in configs() {
            let Some((_, Some((plan, first)))) = heuristic::plan_component(&nav, &comp, &params)
            else {
                continue;
            };
            let mut queue: Vec<u64> = vec![plan.full_mask(), first.upper_mask];
            queue.extend(first.lowers.iter().map(|&(_, m)| m));
            let mut steps = 0usize;
            while let Some(mask) = queue.pop() {
                if mask.count_ones() <= 1 {
                    continue;
                }
                steps += 1;
                prop_assert!(steps <= 4 * plan.len() * plan.len(), "mask cascade runaway");
                let cached = plan.cut(mask, &params);
                let uncached = plan.cut_uncached(mask, &params);
                match (&cached, &uncached) {
                    (None, None) => {}
                    (Some(c), Some(u)) => {
                        assert_planned_match(c, u);
                        queue.push(c.upper_mask);
                        queue.extend(c.lowers.iter().map(|&(_, m)| m));
                    }
                    _ => prop_assert!(false, "cut presence diverges on mask {mask:#b}"),
                }
            }
            prop_assert!(plan.memo_len() > 0, "memo never accumulated");
        }
    }

    /// Property 3: full-expansion replays — identical action logs and
    /// `NavOutcome` totals against the reference-driven session, with plan
    /// reuse off (every EXPAND fresh) and on (retained cuts in play).
    #[test]
    fn session_replays_match_the_reference_pipeline(spec in tree_spec()) {
        let nav = build_nav(&spec);
        for base in configs() {
            for reuse in [false, true] {
                let mut params = base.clone();
                params.reuse_plans = reuse;
                let (fast_log, fast_total) = replay_production(&nav, &params);
                let (slow_log, slow_total) = replay_reference(&nav, &params, reuse);
                prop_assert_eq!(&fast_log, &slow_log, "logs diverge (reuse={})", reuse);
                prop_assert_eq!(&fast_total, &slow_total, "totals diverge (reuse={})", reuse);
            }
        }
    }
}

/// Deterministic spot-check (fast, runs even with proptest filtered out):
/// a bushy skewed tree where the heuristic makes non-trivial choices.
#[test]
fn equivalence_on_a_fixed_bushy_tree() {
    let spec = TreeSpec {
        // Root with four branches, two of them two-deep chains.
        parents: vec![0, 0, 0, 0, 1, 5, 2, 7, 3, 3, 4],
        cites: vec![1, 9, 13, 2, 11, 6, 14, 0, 3, 8, 5, 12],
    };
    let nav = build_nav(&spec);
    assert!(nav.len() >= 4, "fixture tree unexpectedly pruned");
    for params in configs() {
        let active = ActiveTree::new(&nav);
        let comp = active.component_nodes(&nav, NavNodeId::ROOT);
        let fast = heuristic::plan_component(&nav, &comp, &params);
        let slow = reference::plan_component(&nav, &comp, &params);
        assert_eq!(fast.is_some(), slow.is_some());
        if let (Some((fo, _)), Some((so, _))) = (&fast, &slow) {
            assert_outcomes_match(fo, so);
        }
        for reuse in [false, true] {
            let mut p = params.clone();
            p.reuse_plans = reuse;
            let (fast_log, fast_total) = replay_production(&nav, &p);
            let (slow_log, slow_total) = replay_reference(&nav, &p, reuse);
            assert_eq!(fast_log, slow_log);
            assert_eq!(fast_total, slow_total);
        }
    }
}
