//! Property-based equivalence suite for the lazy maximum embedding
//! (ISSUE 6 tentpole).
//!
//! `NavigationTree::build` now returns a skeleton — CSR topology, labels,
//! depths, result counts, and EXPLORE weights are eager, while the
//! per-node `CitSet` payloads (direct results and subtree unions) are
//! materialized per top-level subtree on first touch. This suite asserts,
//! over *generated* hierarchies and *generated* touch orders:
//!
//! 1. the skeleton is complete without any materialization — every
//!    payload-free accessor agrees with a fully eager build while
//!    `materialized_subtrees()` stays 0;
//! 2. payloads are node-for-node identical to the eager build no matter
//!    which order subtrees are first touched in, and both agree with an
//!    independent `BTreeSet`-union oracle recomputed from the raw spec;
//! 3. full-expansion [`Session`] replays on a lazy tree produce the same
//!    action log and the same [`NavOutcome`] totals as on an eager tree —
//!    per-query navigation costs are bit-identical, the ISSUE 6
//!    acceptance bar.

use std::collections::BTreeSet;

use bionav_core::session::Session;
use bionav_core::sim::NavOutcome;
use bionav_core::{CostParams, NavNodeId, NavigationTree};
use bionav_medline::{Citation, CitationId, CitationStore};
use bionav_mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};
use proptest::prelude::*;

/// A generated concept hierarchy: a pre-order parent vector plus a
/// citation count per node (same encoding as `plan_equivalence.rs`).
#[derive(Debug, Clone)]
struct TreeSpec {
    /// `parents[i - 1] % i` is the parent of node `i` (node 0 is the root).
    parents: Vec<usize>,
    /// Citations annotated with node `i`'s descriptor.
    cites: Vec<u32>,
}

fn tree_spec() -> impl Strategy<Value = TreeSpec> {
    (3usize..22).prop_flat_map(|n| {
        let parents = proptest::collection::vec(0usize..n, n - 1);
        // Mix empty, small, and larger loads so the embedding both elides
        // subtrees and keeps multi-component top levels.
        let cites = proptest::collection::vec(0u32..15, n);
        (parents, cites).prop_map(|(parents, cites)| TreeSpec { parents, cites })
    })
}

/// Materializes the spec as MeSH + MEDLINE inputs (tree numbers encode the
/// generated shape), so two independent `NavigationTree`s can be built
/// from byte-identical sources.
fn build_inputs(spec: &TreeSpec) -> (ConceptHierarchy, CitationStore, Vec<CitationId>) {
    let n = spec.parents.len() + 1;
    let mut tns: Vec<TreeNumber> = Vec::with_capacity(n);
    tns.push(TreeNumber::parse("A01").expect("root tree number"));
    let mut child_ord = vec![0usize; n];
    for i in 1..n {
        let p = spec.parents[i - 1] % i;
        child_ord[p] += 1;
        tns.push(tns[p].child(&format!("{:03}", 100 + child_ord[p])));
    }
    let descs: Vec<Descriptor> = (0..n)
        .map(|i| {
            Descriptor::new(
                DescriptorId(i as u32 + 1),
                format!("concept-{i}"),
                vec![tns[i].clone()],
            )
        })
        .collect();
    let h = ConceptHierarchy::from_descriptors(&descs).expect("generated hierarchy is valid");

    let mut store = CitationStore::new();
    let mut results = Vec::new();
    let mut next = 1u32;
    let mut add = |concept: u32, store: &mut CitationStore, results: &mut Vec<CitationId>| {
        store
            .insert(Citation::new(
                CitationId(next),
                "t",
                vec![],
                vec![DescriptorId(concept)],
                vec![],
            ))
            .expect("fresh citation id");
        results.push(CitationId(next));
        next += 1;
    };
    for (i, &c) in spec.cites.iter().enumerate() {
        for _ in 0..c {
            add(i as u32 + 1, &mut store, &mut results);
        }
    }
    if results.is_empty() {
        // Degenerate all-zero draw: give the root one citation so the
        // navigation tree is non-empty.
        add(1, &mut store, &mut results);
    }
    (h, store, results)
}

/// The set of `CitationId`s in a node's (materializing) payload accessor.
fn cits(nav: &NavigationTree, set: &bionav_core::CitSet) -> BTreeSet<CitationId> {
    set.iter().map(|local| nav.citation_id(local)).collect()
}

/// Independent oracle: per-node direct result sets recomputed from the raw
/// store (descriptor membership, not the tree's attachment pass), and
/// subtree sets as plain `BTreeSet` unions over `subtree_nodes`.
fn oracle_direct(
    nav: &NavigationTree,
    store: &CitationStore,
    results: &[CitationId],
) -> Vec<BTreeSet<CitationId>> {
    let mut direct = vec![BTreeSet::new(); nav.len()];
    for &cid in results {
        for &d in store.associations(cid) {
            let label = format!("concept-{}", d.0 - 1);
            if let Some(node) = nav.find_by_label(&label) {
                direct[node.index()].insert(cid);
            }
        }
    }
    direct
}

fn oracle_subtree(
    nav: &NavigationTree,
    direct: &[BTreeSet<CitationId>],
) -> Vec<BTreeSet<CitationId>> {
    nav.iter_preorder()
        .map(|n| {
            let mut set = BTreeSet::new();
            for m in nav.subtree_nodes(n) {
                set.extend(direct[m.index()].iter().copied());
            }
            set
        })
        .collect()
}

/// Fully expands `nav`, then SHOWRESULTS on every node; returns the action
/// log and the accumulated navigation cost (as in `plan_equivalence.rs`).
fn replay(nav: &NavigationTree, params: &CostParams) -> (Vec<String>, NavOutcome) {
    let mut session = Session::new(nav, params.clone());
    let mut guard = 0usize;
    while let Some(hidden) = nav
        .iter_preorder()
        .find(|&n| !session.active().is_visible(n))
    {
        let root = session.active().component_root_of(hidden);
        session.expand(root).expect("multi-node component expands");
        guard += 1;
        assert!(guard <= nav.len(), "replay failed to progress");
    }
    for node in nav.iter_preorder() {
        session.show_results(node).expect("all nodes visible");
    }
    let log: Vec<String> = session.log().iter().map(|a| format!("{a:?}")).collect();
    (log, session.cost().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: the lazy build's skeleton is complete and identical to
    /// the eager build's without materializing anything, and payloads are
    /// node-for-node identical under an arbitrary first-touch order.
    #[test]
    fn lazy_build_matches_eager_node_for_node(
        spec in tree_spec(),
        touches in proptest::collection::vec(0usize..64, 0..24),
    ) {
        let (h, store, results) = build_inputs(&spec);
        let eager = NavigationTree::build(&h, &store, &results);
        eager.materialize_all();
        let lazy = NavigationTree::build(&h, &store, &results);

        prop_assert_eq!(lazy.materialized_subtrees(), 0, "build must not materialize");
        prop_assert_eq!(lazy.len(), eager.len());
        prop_assert_eq!(lazy.universe(), eager.universe());
        prop_assert_eq!(
            lazy.total_explore_weight().to_bits(),
            eager.total_explore_weight().to_bits()
        );

        // Skeleton accessors agree everywhere, and touching them costs no
        // materialization.
        for n in eager.iter_preorder() {
            prop_assert_eq!(lazy.label(n), eager.label(n));
            prop_assert_eq!(lazy.parent(n), eager.parent(n));
            prop_assert_eq!(lazy.children(n), eager.children(n));
            prop_assert_eq!(lazy.nav_depth(n), eager.nav_depth(n));
            prop_assert_eq!(lazy.hierarchy_depth(n), eager.hierarchy_depth(n));
            prop_assert_eq!(lazy.results_count(n), eager.results_count(n));
            prop_assert_eq!(
                lazy.explore_weight(n).to_bits(),
                eager.explore_weight(n).to_bits(),
                "explore weight diverges at {:?}", n
            );
            prop_assert_eq!(lazy.subtree_nodes(n), eager.subtree_nodes(n));
        }
        prop_assert_eq!(lazy.materialized_subtrees(), 0, "skeleton reads are payload-free");

        // Touch payloads in a generated order; every answer must equal the
        // eager build's and the independent oracle's.
        let direct = oracle_direct(&eager, &store, &results);
        let subtree = oracle_subtree(&eager, &direct);
        let order: Vec<NavNodeId> = touches
            .iter()
            .map(|&t| NavNodeId((t % lazy.len()) as u32))
            .collect();
        for &n in &order {
            prop_assert_eq!(cits(&lazy, lazy.results(n)), cits(&eager, eager.results(n)));
            prop_assert_eq!(cits(&lazy, lazy.results(n)), direct[n.index()].clone());
            prop_assert_eq!(
                cits(&lazy, lazy.subtree_set(n)),
                cits(&eager, eager.subtree_set(n))
            );
            prop_assert_eq!(cits(&lazy, lazy.subtree_set(n)), subtree[n.index()].clone());
            prop_assert_eq!(lazy.subtree_distinct(n), eager.subtree_distinct(n));
        }

        // And after full materialization nothing differs anywhere.
        lazy.materialize_all();
        prop_assert_eq!(lazy.materialized_subtrees(), lazy.lazy_subtrees());
        for n in eager.iter_preorder() {
            prop_assert_eq!(cits(&lazy, lazy.results(n)), cits(&eager, eager.results(n)));
            prop_assert_eq!(
                cits(&lazy, lazy.subtree_set(n)),
                cits(&eager, eager.subtree_set(n))
            );
            prop_assert_eq!(cits(&lazy, lazy.subtree_set(n)), subtree[n.index()].clone());
        }
    }

    /// Property 2: full navigation replays — EXPAND to exhaustion, then
    /// SHOWRESULTS everywhere — on a lazy tree and on an eagerly
    /// materialized tree produce identical action logs and identical cost
    /// totals. This is the "per-query navigation costs stay bit-identical"
    /// acceptance criterion exercised through the real session layer.
    #[test]
    fn session_replays_agree_between_lazy_and_eager_trees(spec in tree_spec()) {
        let (h, store, results) = build_inputs(&spec);
        let eager = NavigationTree::build(&h, &store, &results);
        eager.materialize_all();
        let lazy = NavigationTree::build(&h, &store, &results);

        for k in [2usize, 4, 10] {
            let params = CostParams::default().with_max_partitions(k);
            let (eager_log, eager_cost) = replay(&eager, &params);
            let (lazy_log, lazy_cost) = replay(&lazy, &params);
            prop_assert_eq!(&lazy_log, &eager_log, "action logs diverge at k={}", k);
            prop_assert_eq!(&lazy_cost, &eager_cost, "cost totals diverge at k={}", k);
        }
    }
}

/// Materialization granularity: touching one top-level subtree leaves the
/// others (and the root union) untouched, and the touched answers are
/// already final — later full materialization does not change them.
#[test]
fn first_touch_materializes_only_the_touched_component() {
    let spec = TreeSpec {
        parents: vec![0, 0, 0, 1, 2, 3, 4, 5, 6],
        cites: vec![0, 3, 2, 4, 1, 2, 1, 3, 2, 1],
    };
    let (h, store, results) = build_inputs(&spec);
    let nav = NavigationTree::build(&h, &store, &results);
    assert_eq!(nav.materialized_subtrees(), 0);
    let tops = nav.children(NavNodeId::ROOT).to_vec();
    assert!(
        tops.len() >= 2,
        "fixture must have multiple top-level subtrees"
    );

    let first = tops[0];
    let before = cits(&nav, nav.subtree_set(first));
    assert_eq!(nav.materialized_subtrees(), 1);
    assert_eq!(nav.lazy_subtrees(), tops.len());

    nav.materialize_all();
    assert_eq!(nav.materialized_subtrees(), tops.len());
    assert_eq!(cits(&nav, nav.subtree_set(first)), before);
}
