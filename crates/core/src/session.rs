//! Interactive navigation sessions (paper §VII, the on-line navigation
//! subsystem).
//!
//! A [`Session`] wraps an [`ActiveTree`] with the four user actions of the
//! navigation model — EXPAND, SHOWRESULTS, IGNORE, BACKTRACK — keeps an
//! action log, and tallies the §III user cost as the session progresses.
//! EXPAND runs Heuristic-ReducedOpt; the raw cut API is also exposed for
//! clients that drive their own cuts (tests, the optimal-algorithm
//! ablation).
//!
//! ```
//! use bionav_core::session::Session;
//! use bionav_core::{CostParams, NavNodeId, NavigationTree};
//! use bionav_medline::{Citation, CitationId, CitationStore};
//! use bionav_mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};
//!
//! // A two-concept hierarchy and two annotated citations.
//! let hierarchy = ConceptHierarchy::from_descriptors(&[
//!     Descriptor::new(DescriptorId(1), "Apoptosis", vec![TreeNumber::parse("G16").unwrap()]),
//!     Descriptor::new(DescriptorId(2), "Necrosis", vec![TreeNumber::parse("G17").unwrap()]),
//! ])?;
//! let mut store = CitationStore::new();
//! store.insert(Citation::new(CitationId(1), "a", vec![], vec![DescriptorId(1)], vec![])).unwrap();
//! store.insert(Citation::new(CitationId(2), "b", vec![], vec![DescriptorId(2)], vec![])).unwrap();
//!
//! let nav = NavigationTree::build(&hierarchy, &store, &[CitationId(1), CitationId(2)]);
//! let mut session = Session::new(&nav, CostParams::default());
//! let revealed = session.expand(NavNodeId::ROOT).unwrap();
//! assert!(!revealed.is_empty());
//! let listed = session.show_results(revealed[0]).unwrap();
//! assert!(!listed.is_empty());
//! # Ok::<(), bionav_mesh::MeshError>(())
//! ```

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

// CutCache's lock and counters go through the sync shim so the interleave
// model tests explore the production insert/get/validate paths (§5d).
use crate::sync::{AtomicU64, Mutex, Ordering};

use bionav_medline::CitationId;

use crate::active::{ActiveTree, EdgeCut, EdgeCutError, VisNode};
use crate::cost::CostParams;
use crate::edgecut::heuristic::{plan_component_with, ReducedPlan};
use crate::navtree::{NavNodeId, NavigationTree};
use crate::scratch::NavScratch;
use crate::sim::NavOutcome;

/// A retained reduced tree plus the unit mask describing one of its
/// sub-components (keyed by the component's root in [`Session::plans`]).
///
/// Plans are retained behind an [`Arc`] (not `Rc`): sessions must be
/// `Send` so the serving engine can park them in a shared table and resume
/// them from any worker thread.
#[derive(Debug, Clone)]
struct PlanEntry {
    plan: Arc<ReducedPlan>,
    mask: u64,
}

/// A bounded, thread-safe memo of `component → EdgeCut` decisions, shared
/// **across sessions** over the same navigation tree (the serving engine
/// keeps one per cached tree).
///
/// Heuristic-ReducedOpt is a pure function of `(tree, component, params)`,
/// so for a fixed tree and fixed engine params the cut chosen for a
/// component is fully determined by the component's node list. Faceted
/// search engines exploit exactly this by caching per-query doc-set
/// layouts across refinements; here it means the *first* session over a
/// query pays the partition+solve for each component it expands, and every
/// later session replaying the same navigation state gets the identical
/// cut from one hash lookup. Results are bit-identical by construction —
/// the cache stores the exact `EdgeCut` the fresh pipeline computed.
///
/// Keys are `(hash, len)` fingerprints of the component's pre-order node
/// list. A hash collision would hand a cut belonging to a different
/// component to [`Session::expand_cached`]; the session validates every
/// cached cut against the live component (`ActiveTree` cut validation) and
/// falls back to a fresh solve when it does not apply, so a collision
/// costs one failed validation, never a wrong navigation.
///
/// Memory is bounded: once `capacity` distinct components are cached,
/// further misses compute fresh without inserting (no LRU churn on the hot
/// path; components of one tree are few). Hit/miss counters are relaxed
/// atomics for engine telemetry.
#[derive(Debug, Default)]
pub struct CutCache {
    map: Mutex<HashMap<(u64, u32), EdgeCut>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
}

impl CutCache {
    /// An empty cache holding at most `capacity` distinct components.
    pub fn new(capacity: usize) -> Self {
        CutCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    /// Number of memoized components.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }

    /// Lookups answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a fresh solve.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached cuts refused by [`ActiveTree`] validation — fingerprint
    /// collisions that handed a foreign cut to this component. Expected to
    /// stay zero in practice; the serve path recovers with a fresh solve
    /// either way, so this is a diagnostic tally, not an error count.
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }

    /// Records one refused cached cut (see [`CutCache::collisions`]).
    pub(crate) fn note_collision(&self) {
        // Relaxed: diagnostic tally only; nothing is ordered against it.
        self.collisions.fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes the hit/miss/collision counters, keeping the memoized cuts
    /// (for telemetry-window resets).
    pub fn reset_counters(&self) {
        // Relaxed: counter window reset; per-counter coherence suffices.
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.collisions.store(0, Ordering::Relaxed);
    }

    /// Fingerprint of a component's pre-order node list.
    fn fingerprint(comp: &[NavNodeId]) -> (u64, u32) {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        comp.hash(&mut h);
        (h.finish(), comp.len() as u32)
    }

    fn get(&self, fp: (u64, u32)) -> Option<EdgeCut> {
        let hit = self.map.lock().get(&fp).cloned();
        // Relaxed: hit/miss tallies are telemetry; the map lock above is
        // what orders the lookup itself.
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn put(&self, fp: (u64, u32), cut: &EdgeCut) {
        // An empty cut expands nothing; memoizing one would turn a
        // transient planner decline into a permanent no-op for every
        // session hitting this fingerprint. Refuse instead of trusting
        // the caller.
        debug_assert!(!cut.is_empty(), "never memoize an empty cut");
        if cut.is_empty() {
            return;
        }
        let mut map = self.map.lock();
        if map.len() < self.capacity || map.contains_key(&fp) {
            map.insert(fp, cut.clone());
        }
    }
}

/// Model-checker hooks: the interleave models (`tests/interleave_models.rs`)
/// drive the private fingerprint/get/put protocol directly, so the explored
/// code is the production code, not a replica.
#[cfg(interleave)]
impl CutCache {
    /// [`CutCache::get`] keyed by a component node list (model tests only).
    pub fn model_get(&self, comp: &[NavNodeId]) -> Option<EdgeCut> {
        self.get(Self::fingerprint(comp))
    }

    /// [`CutCache::put`] keyed by a component node list (model tests only).
    pub fn model_put(&self, comp: &[NavNodeId], cut: &EdgeCut) {
        self.put(Self::fingerprint(comp), cut)
    }
}

/// One logged user action.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Action {
    /// The user expanded `node`, revealing `revealed` new concepts.
    Expand {
        /// The expanded component root.
        node: NavNodeId,
        /// The lower roots the EdgeCut revealed.
        revealed: Vec<NavNodeId>,
    },
    /// The user listed the citations of `node`'s component.
    ShowResults {
        /// The inspected component root.
        node: NavNodeId,
        /// How many citations were listed.
        count: u32,
    },
    /// The user dismissed `node` as uninteresting.
    Ignore {
        /// The dismissed node.
        node: NavNodeId,
    },
    /// The user undid the last expansion.
    Backtrack,
}

/// An interactive BioNav navigation over one query result.
///
/// Generic over how the navigation tree is held: `T` is any
/// `Borrow<NavigationTree>` — a plain `&NavigationTree` for borrowing
/// callers (the common case; type inference keeps `Session::new(&nav, …)`
/// working unchanged) or an `Arc<NavigationTree>` for the serving engine,
/// whose sessions outlive any one stack frame and hop across worker
/// threads.
#[derive(Debug)]
pub struct Session<T: Borrow<NavigationTree>> {
    nav: T,
    active: ActiveTree,
    params: CostParams,
    log: Vec<Action>,
    cost: NavOutcome,
    /// Retained reduced trees per component root
    /// ([`CostParams::reuse_plans`]). Cleared on BACKTRACK — the undo
    /// invalidates the masks.
    plans: HashMap<NavNodeId, PlanEntry>,
    /// Reusable EXPAND scratch arena (DESIGN.md §5c). Holds no navigation
    /// state, hence not part of [`SessionState`]; rebuilt empty on restore.
    scratch: NavScratch,
    /// Reusable component-node buffer for the EXPAND hot path.
    comp_buf: Vec<NavNodeId>,
}

impl<T: Borrow<NavigationTree>> Session<T> {
    /// Starts a session on `nav`; initially only the root is visible.
    pub fn new(nav: T, params: CostParams) -> Self {
        let active = ActiveTree::new(nav.borrow());
        Session {
            nav,
            active,
            params,
            log: Vec::new(),
            cost: NavOutcome::default(),
            plans: HashMap::new(),
            scratch: NavScratch::new(),
            comp_buf: Vec::new(),
        }
    }

    /// The underlying navigation tree.
    pub fn nav(&self) -> &NavigationTree {
        self.nav.borrow()
    }

    /// The current active tree (read-only state).
    pub fn active(&self) -> &ActiveTree {
        &self.active
    }

    /// Distinct citations in the component rooted at the visible `node`.
    pub fn component_distinct(&self, node: NavNodeId) -> u32 {
        self.active.component_distinct(self.nav.borrow(), node)
    }

    /// Number of hidden nodes (including `node`) in `node`'s component.
    pub fn component_size(&self, node: NavNodeId) -> usize {
        self.active.component_size(node)
    }

    /// EXPAND: runs Heuristic-ReducedOpt on `node`'s component, applies the
    /// cut, and returns the newly revealed concepts.
    ///
    /// With [`CostParams::reuse_plans`] set, a component that came out of a
    /// previous expansion is cut using that expansion's retained reduced
    /// tree (§VI-B) instead of being re-partitioned; once the retained view
    /// of a component shrinks to one supernode, the session falls back to a
    /// fresh partitioning.
    pub fn expand(&mut self, node: NavNodeId) -> Result<Vec<NavNodeId>, EdgeCutError> {
        self.expand_impl(node, None)
    }

    /// [`Session::expand`] consulting a cross-session [`CutCache`] first.
    ///
    /// The serving engine passes the cut cache of the session's (shared)
    /// navigation tree: a component another session already expanded is cut
    /// identically from one lookup instead of a fresh partition+solve. The
    /// cache is only consulted with [`CostParams::reuse_plans`] off —
    /// plan-reusing sessions already answer follow-ups from their retained
    /// [`ReducedPlan`]s, and short-circuiting them here would skip the plan
    /// registration those follow-ups depend on.
    pub fn expand_cached(
        &mut self,
        node: NavNodeId,
        cuts: &CutCache,
    ) -> Result<Vec<NavNodeId>, EdgeCutError> {
        self.expand_impl(node, Some(cuts))
    }

    fn expand_impl(
        &mut self,
        node: NavNodeId,
        cuts: Option<&CutCache>,
    ) -> Result<Vec<NavNodeId>, EdgeCutError> {
        if !self.active.is_visible(node) {
            return Err(EdgeCutError::NotAComponentRoot(node));
        }
        if self.params.reuse_plans {
            if let Some(entry) = self.plans.get(&node).cloned() {
                if let Some(planned) = entry.plan.cut(entry.mask, &self.params) {
                    let revealed = self.expand_with(node, &planned.cut)?;
                    self.register_plan(node, &entry.plan, planned.upper_mask, &planned.lowers);
                    return Ok(revealed);
                }
                // Plan exhausted for this component: fall through to a
                // fresh partitioning below.
                self.plans.remove(&node);
            }
        }
        // Single-pass pipeline: reuse the session's component buffer and
        // scratch arena; the plan (with its retained solver memo) and the
        // applied cut come from the same partition+solve run.
        let mut comp = std::mem::take(&mut self.comp_buf);
        self.active
            .component_nodes_into(self.nav.borrow(), node, &mut comp);
        // Cross-session memo (engine sessions, reuse_plans off): identical
        // components take the identical cut another session computed.
        let fp = match cuts {
            Some(cache) if !self.params.reuse_plans => {
                let fp = CutCache::fingerprint(&comp);
                // Failpoint: the cut-cache probe (DESIGN.md §5f). An
                // injected `Error` skips the probe — observably a forced
                // miss; the fresh solve below recomputes the bit-identical
                // cut, so costs are unchanged (chaos-tested).
                let probed = match crate::fault::hit(crate::fault::FailSite::CutCacheProbe) {
                    Some(crate::fault::Fault::Panic) => {
                        crate::fault::injected_panic(crate::fault::FailSite::CutCacheProbe)
                    }
                    Some(_) => None,
                    None => {
                        let _sp = crate::trace::span(crate::trace::Stage::CutCacheLookup);
                        cache.get(fp)
                    }
                };
                if let Some(cut) = probed {
                    if let Ok(revealed) = self.expand_with(node, &cut) {
                        self.comp_buf = comp;
                        return Ok(revealed);
                    }
                    // Fingerprint collision handed us a foreign cut and
                    // validation refused it: tally the collision and solve
                    // fresh below. The memoized entry stays (it is correct
                    // for the component that wrote it).
                    cache.note_collision();
                    debug_assert!(
                        !cut.is_empty(),
                        "cache handed out an empty cut; put() must refuse those"
                    );
                }
                Some(fp)
            }
            _ => None,
        };
        // First planning touch of a cold component: materialize its lazy
        // subtree bitsets here, at a defined point before the solve, so
        // `Stage::Materialize` time never smears into `Stage::Solve` spans
        // (cut-cache hits above return without paying this).
        self.nav.borrow().materialize_for(comp.iter().copied());
        let planned =
            plan_component_with(self.nav.borrow(), &comp, &self.params, &mut self.scratch);
        self.comp_buf = comp;
        let Some((outcome, planned)) = planned else {
            return Err(EdgeCutError::EmptyCut); // singleton: nothing to expand
        };
        let revealed = self.expand_with(node, &outcome.cut)?;
        if let (Some(cache), Some(fp)) = (cuts, fp) {
            cache.put(fp, &outcome.cut);
        }
        if self.params.reuse_plans {
            if let Some((plan, cut)) = planned {
                let plan = Arc::new(plan);
                self.register_plan(node, &plan, cut.upper_mask, &cut.lowers);
            }
        }
        Ok(revealed)
    }

    /// Records plan entries for the upper and lower components of a cut.
    fn register_plan(
        &mut self,
        upper_root: NavNodeId,
        plan: &Arc<ReducedPlan>,
        upper_mask: u64,
        lowers: &[(NavNodeId, u64)],
    ) {
        let mut put = |root: NavNodeId, mask: u64| {
            if mask.count_ones() > 1 {
                self.plans.insert(
                    root,
                    PlanEntry {
                        plan: plan.clone(),
                        mask,
                    },
                );
            } else {
                self.plans.remove(&root);
            }
        };
        put(upper_root, upper_mask);
        for &(root, mask) in lowers {
            put(root, mask);
        }
    }

    /// EXPAND with a caller-supplied cut (validated like any EdgeCut).
    pub fn expand_with(
        &mut self,
        node: NavNodeId,
        cut: &EdgeCut,
    ) -> Result<Vec<NavNodeId>, EdgeCutError> {
        self.active
            .expand_in(self.nav.borrow(), node, cut, &mut self.scratch)?;
        // A manual cut changes this component in ways a retained reduced
        // tree does not describe; drop its plan so the next automatic
        // EXPAND re-partitions instead of proposing a stale (and possibly
        // invalid) cut. Note `expand()` re-registers entries *after*
        // calling this method, so plan-driven cuts are unaffected.
        self.plans.remove(&node);
        let revealed = cut.lower_roots().to_vec();
        self.cost.expands += 1;
        self.cost.revealed += revealed.len();
        self.log.push(Action::Expand {
            node,
            revealed: revealed.clone(),
        });
        Ok(revealed)
    }

    /// Degradation-ladder rung 1 (DESIGN.md §5f): cut `node`'s component
    /// from its **retained reduced-plan memo** with the myopic
    /// ([`Planner::Exhaustive`](crate::cost::Planner::Exhaustive)) solver
    /// plane — a bounded-time answer (a memo probe plus one shallow
    /// enumeration over ≤ `max_partitions` supernodes; no partitioning, no
    /// recursive DP).
    ///
    /// Returns `None` when the rung does not apply — no retained plan for
    /// this component (sessions without [`CostParams::reuse_plans`], or a
    /// component that never came out of a planned cut) or a plan exhausted
    /// to a single supernode — so the ladder can drop to the static rung.
    /// `Some(Err(_))` reports a real cut failure (e.g. expanding a hidden
    /// node), which no lower rung can fix either.
    pub fn expand_degraded_memo(
        &mut self,
        node: NavNodeId,
    ) -> Option<Result<Vec<NavNodeId>, EdgeCutError>> {
        if !self.active.is_visible(node) {
            return Some(Err(EdgeCutError::NotAComponentRoot(node)));
        }
        let entry = self.plans.get(&node).cloned()?;
        let myopic = CostParams {
            planner: crate::cost::Planner::Exhaustive,
            ..self.params.clone()
        };
        let planned = entry.plan.cut(entry.mask, &myopic)?;
        match self.expand_with(node, &planned.cut) {
            Ok(revealed) => {
                self.register_plan(node, &entry.plan, planned.upper_mask, &planned.lowers);
                Some(Ok(revealed))
            }
            Err(e) => Some(Err(e)),
        }
    }

    /// Degradation-ladder rung 2 (DESIGN.md §5f): the static
    /// show-all-children cut — reveal every hidden child of `node`, ranked
    /// like the paper's GoPubMed-style baseline
    /// ([`baseline::ranked_children`](crate::baseline::ranked_children)).
    /// O(children) work, no solver; always applicable to an expandable
    /// component, and validated like any other [`EdgeCut`] by the active
    /// tree (a degraded cut is never allowed to corrupt navigation state).
    pub fn expand_static(&mut self, node: NavNodeId) -> Result<Vec<NavNodeId>, EdgeCutError> {
        if !self.active.is_visible(node) {
            return Err(EdgeCutError::NotAComponentRoot(node));
        }
        let cut: Vec<NavNodeId> = crate::baseline::ranked_children(self.nav.borrow(), node)
            .into_iter()
            .filter(|&c| !self.active.is_visible(c))
            .collect();
        if cut.is_empty() {
            // Singleton component: nothing to reveal (same contract as the
            // exact pipeline's typed decline).
            return Err(EdgeCutError::EmptyCut);
        }
        self.expand_with(node, &EdgeCut::new(cut))
    }

    /// SHOWRESULTS: lists the PMIDs of `node`'s component.
    pub fn show_results(&mut self, node: NavNodeId) -> Result<Vec<CitationId>, EdgeCutError> {
        if !self.active.is_visible(node) {
            return Err(EdgeCutError::NotAComponentRoot(node));
        }
        let set = self.active.component_set(self.nav.borrow(), node);
        let ids: Vec<CitationId> = set.iter().map(|i| self.nav().citation_id(i)).collect();
        self.cost.results_inspected += ids.len();
        self.log.push(Action::ShowResults {
            node,
            count: ids.len() as u32,
        });
        Ok(ids)
    }

    /// IGNORE: records that the user dismissed a revealed concept. Costs
    /// nothing extra — examining the label was already paid at reveal time.
    pub fn ignore(&mut self, node: NavNodeId) {
        self.log.push(Action::Ignore { node });
    }

    /// BACKTRACK: undoes the most recent expansion. The cost already paid
    /// is *not* refunded — the user spent that effort (§III charges every
    /// examined concept).
    pub fn backtrack(&mut self) -> Result<(), EdgeCutError> {
        self.active.backtrack()?;
        self.cost.expands += 1; // the undo click is itself an action
        self.plans.clear(); // retained masks no longer describe components
        self.log.push(Action::Backtrack);
        Ok(())
    }

    /// The current visualization (Definition 5).
    pub fn visualize(&self) -> Vec<VisNode> {
        self.active.visualize(self.nav.borrow())
    }

    /// The accumulated §III cost of the session so far.
    pub fn cost(&self) -> &NavOutcome {
        &self.cost
    }

    /// The full action log.
    pub fn log(&self) -> &[Action] {
        &self.log
    }

    /// Exports the session's persistable state (active tree, action log,
    /// cost tally). The navigation tree itself is *not* included — the
    /// online system (§VII) rebuilds it from the query and re-attaches the
    /// state; retained reduced-tree plans are rebuilt lazily on the next
    /// EXPAND.
    pub fn export_state(&self) -> SessionState {
        SessionState {
            active: self.active.clone(),
            log: self.log.clone(),
            cost: self.cost.clone(),
        }
    }

    /// Restores a session from persisted state over `nav`, which must be
    /// the same navigation tree the state was exported from (same query,
    /// same store). Returns `None` when the state does not fit the tree.
    pub fn restore(nav: T, params: CostParams, state: SessionState) -> Option<Session<T>> {
        if !state.active.fits(nav.borrow()) {
            return None;
        }
        Some(Session {
            nav,
            active: state.active,
            params,
            log: state.log,
            cost: state.cost,
            plans: HashMap::new(),
            scratch: NavScratch::new(),
            comp_buf: Vec::new(),
        })
    }
}

/// The serializable part of a [`Session`] (everything except the navigation
/// tree it runs over); see [`Session::export_state`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SessionState {
    /// Component assignments and the BACKTRACK stack.
    pub active: ActiveTree,
    /// The action log.
    pub log: Vec<Action>,
    /// The accumulated §III cost.
    pub cost: NavOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionav_medline::corpus::{self, CorpusConfig};
    use bionav_medline::InvertedIndex;
    use bionav_mesh::synth::{self, sanitizer_scaled, SynthConfig};

    /// Fixture sizes honor `BIONAV_SANITIZER_SCALE` so instrumented runs
    /// shrink; the default scale of 1.0 leaves them untouched.
    fn session_nav() -> NavigationTree {
        let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(400, 48))).unwrap();
        let store = corpus::generate(
            &h,
            &CorpusConfig {
                n_citations: sanitizer_scaled(600, 64),
                ..CorpusConfig::default()
            },
        );
        let index = InvertedIndex::build(&store);
        let busiest = h
            .iter_preorder()
            .skip(1)
            .max_by_key(|&n| {
                h.node(n)
                    .descriptor()
                    .map(|d| store.observed_count(d))
                    .unwrap_or(0)
            })
            .unwrap();
        let results = index.query(h.node(busiest).label()).citations;
        NavigationTree::build(&h, &store, &results)
    }

    #[test]
    fn expand_show_results_flow() {
        let nav = session_nav();
        let mut s = Session::new(&nav, CostParams::default());
        let revealed = s.expand(NavNodeId::ROOT).unwrap();
        assert!(!revealed.is_empty());
        assert_eq!(s.cost().expands, 1);
        assert_eq!(s.cost().revealed, revealed.len());
        let ids = s.show_results(revealed[0]).unwrap();
        assert!(!ids.is_empty());
        assert_eq!(s.cost().results_inspected, ids.len());
        assert_eq!(s.log().len(), 2);
    }

    #[test]
    fn expanding_hidden_nodes_fails() {
        let nav = session_nav();
        let mut s = Session::new(&nav, CostParams::default());
        let revealed = s.expand(NavNodeId::ROOT).unwrap();
        // A node inside a lower component is not visible.
        let inner = nav
            .iter_preorder()
            .find(|&n| !s.active().is_visible(n))
            .expect("some node is hidden");
        assert!(matches!(
            s.expand(inner),
            Err(EdgeCutError::NotAComponentRoot(_))
        ));
        let _ = revealed;
    }

    #[test]
    fn backtrack_restores_but_keeps_cost() {
        let nav = session_nav();
        let mut s = Session::new(&nav, CostParams::default());
        let revealed = s.expand(NavNodeId::ROOT).unwrap();
        let spent = s.cost().clone();
        s.backtrack().unwrap();
        assert!(!s.active().is_visible(revealed[0]));
        assert_eq!(s.cost().revealed, spent.revealed, "no refunds");
        assert_eq!(
            s.cost().expands,
            spent.expands + 1,
            "the undo click is paid"
        );
        assert!(matches!(s.log().last(), Some(Action::Backtrack)));
    }

    #[test]
    fn ignore_is_logged_and_free() {
        let nav = session_nav();
        let mut s = Session::new(&nav, CostParams::default());
        let revealed = s.expand(NavNodeId::ROOT).unwrap();
        let before = s.cost().clone();
        s.ignore(revealed[0]);
        assert_eq!(s.cost(), &before);
        assert!(matches!(s.log().last(), Some(Action::Ignore { .. })));
    }

    #[test]
    fn plan_reuse_answers_follow_up_expansions() {
        let nav = session_nav();
        let params = CostParams {
            reuse_plans: true,
            ..CostParams::default()
        };
        let mut s = Session::new(&nav, params);
        let first = s.expand(NavNodeId::ROOT).unwrap();
        assert!(!first.is_empty());
        // Re-expanding the root must come from the retained plan (the root
        // component's entry exists and holds >1 unit) — observable as a
        // valid cut without error, repeatedly until exhaustion.
        let mut guard = 0;
        while s.component_size(NavNodeId::ROOT) > 1 {
            s.expand(NavNodeId::ROOT).unwrap();
            guard += 1;
            assert!(guard < nav.len(), "reuse expansion loop must terminate");
        }
        // Lower components are expandable too (plan or fresh).
        if let Some(&n) = first.iter().find(|&&n| s.component_size(n) > 1) {
            s.expand(n).unwrap();
        }
    }

    #[test]
    fn plan_reuse_and_fresh_sessions_both_terminate_everywhere() {
        let nav = session_nav();
        for reuse in [false, true] {
            let params = CostParams {
                reuse_plans: reuse,
                ..CostParams::default()
            };
            let mut s = Session::new(&nav, params);
            let mut guard = 0;
            while let Some(root) = nav
                .iter_preorder()
                .find(|&n| s.active().is_visible(n) && s.component_size(n) > 1)
            {
                s.expand(root).unwrap();
                guard += 1;
                assert!(guard <= 2 * nav.len(), "reuse={reuse}: no termination");
            }
            for n in nav.iter_preorder() {
                assert!(s.active().is_visible(n), "reuse={reuse}");
            }
        }
    }

    #[test]
    fn backtrack_clears_retained_plans() {
        let nav = session_nav();
        let params = CostParams {
            reuse_plans: true,
            ..CostParams::default()
        };
        let mut s = Session::new(&nav, params);
        s.expand(NavNodeId::ROOT).unwrap();
        s.backtrack().unwrap();
        // After the undo, the next expansion re-plans from scratch and the
        // whole navigation still works.
        let revealed = s.expand(NavNodeId::ROOT).unwrap();
        assert!(!revealed.is_empty());
    }

    #[test]
    fn sessions_persist_and_restore() {
        let nav = session_nav();
        let mut s = Session::new(&nav, CostParams::default());
        let revealed = s.expand(NavNodeId::ROOT).unwrap();
        s.ignore(revealed[0]);
        let listed = s.show_results(revealed[0]).unwrap();

        // Round-trip the state through JSON (what a web tier would store).
        let json = serde_json::to_string(&s.export_state()).unwrap();
        let state: SessionState = serde_json::from_str(&json).unwrap();
        let mut restored =
            Session::restore(&nav, CostParams::default(), state).expect("state fits its own tree");

        assert_eq!(restored.cost(), s.cost());
        assert_eq!(restored.log(), s.log());
        assert_eq!(restored.visualize(), s.visualize());
        // The restored session keeps working: SHOWRESULTS agrees, BACKTRACK
        // unwinds the pre-snapshot expansion.
        assert_eq!(restored.show_results(revealed[0]).unwrap(), listed);
        restored.backtrack().unwrap();
        assert!(!restored.active().is_visible(revealed[0]));
    }

    #[test]
    fn restore_rejects_foreign_trees() {
        let nav = session_nav();
        let mut s = Session::new(&nav, CostParams::default());
        s.expand(NavNodeId::ROOT).unwrap();
        let state = s.export_state();
        // A tree from a different query (different size) must be rejected.
        let other = {
            use bionav_medline::{Citation, CitationId, CitationStore};
            use bionav_mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};
            let h = ConceptHierarchy::from_descriptors(&[Descriptor::new(
                DescriptorId(1),
                "only",
                vec![TreeNumber::parse("A01").unwrap()],
            )])
            .unwrap();
            let mut store = CitationStore::new();
            store
                .insert(Citation::new(
                    CitationId(1),
                    "t",
                    vec![],
                    vec![DescriptorId(1)],
                    vec![],
                ))
                .unwrap();
            NavigationTree::build(&h, &store, &[CitationId(1)])
        };
        assert!(Session::restore(&other, CostParams::default(), state).is_none());
    }

    /// Builds a navigation tree over a hand-shaped hierarchy: one
    /// descriptor per tree number, one citation attached to each.
    fn shaped_tree(tree_numbers: &[&str]) -> NavigationTree {
        use bionav_medline::{Citation, CitationId, CitationStore};
        use bionav_mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};
        let descriptors: Vec<Descriptor> = tree_numbers
            .iter()
            .enumerate()
            .map(|(i, tn)| {
                Descriptor::new(
                    DescriptorId(i as u32 + 1),
                    format!("d{i}"),
                    vec![TreeNumber::parse(tn).unwrap()],
                )
            })
            .collect();
        let h = ConceptHierarchy::from_descriptors(&descriptors).unwrap();
        let mut store = CitationStore::new();
        let mut ids = Vec::new();
        for i in 0..tree_numbers.len() {
            let id = CitationId(i as u32 + 1);
            store
                .insert(Citation::new(
                    id,
                    format!("t{i}"),
                    vec![],
                    vec![DescriptorId(i as u32 + 1)],
                    vec![],
                ))
                .unwrap();
            ids.push(id);
        }
        NavigationTree::build(&h, &store, &ids)
    }

    #[test]
    fn restore_rejects_same_size_foreign_trees() {
        use crate::active::EdgeCut;
        // Regression: `ActiveTree::fits` used to check only tree *size*, so
        // a state exported from one query restored cleanly onto any
        // equally-sized tree of a different query — and later expansions
        // then navigated garbage components. The strengthened check
        // validates every component assignment against the target tree's
        // actual parent structure.
        let chain = shaped_tree(&["A01", "A01.100", "A01.100.100"]);
        let star = shaped_tree(&["A01", "B01", "C01"]);
        assert_eq!(chain.len(), star.len(), "fixture trees must be equal-sized");

        let mut s = Session::new(&chain, CostParams::default());
        // Force the cut below d0: components {root, d0} and {d1, d2}.
        s.expand_with(NavNodeId::ROOT, &EdgeCut::new(vec![NavNodeId(2)]))
            .unwrap();
        let state = s.export_state();

        // In the star, node 3's parent is the root — a different component
        // — so the assignment is not connected there and must be rejected,
        // even though the sizes agree.
        assert!(
            Session::restore(&star, CostParams::default(), state.clone()).is_none(),
            "same-size foreign tree must be rejected"
        );
        // Sanity: the very same state still restores onto its own tree.
        assert!(Session::restore(&chain, CostParams::default(), state).is_some());
    }

    #[test]
    fn manual_cuts_invalidate_retained_plans() {
        // Regression: with reuse_plans on, an automatic EXPAND retains a
        // plan for the root component; a manual cut then changes that
        // component. The next automatic EXPAND must re-partition rather
        // than replay the stale plan (which could propose nodes that are
        // no longer in the component).
        let nav = session_nav();
        let params = CostParams {
            reuse_plans: true,
            ..CostParams::default()
        };
        let mut s = Session::new(&nav, params);
        let revealed = s.expand(NavNodeId::ROOT).unwrap();
        // Manually detach some node still hidden inside the root component.
        let hidden_child = nav
            .children(NavNodeId::ROOT)
            .iter()
            .copied()
            .find(|&c| !s.active().is_visible(c));
        if let Some(c) = hidden_child {
            s.expand_with(NavNodeId::ROOT, &EdgeCut::new(vec![c]))
                .unwrap();
        }
        // Every further automatic expansion of the root must keep working
        // until the component is exhausted.
        let mut guard = 0;
        while s.component_size(NavNodeId::ROOT) > 1 {
            s.expand(NavNodeId::ROOT).unwrap();
            guard += 1;
            assert!(guard < nav.len(), "stale plan wedged the session");
        }
        let _ = revealed;
    }

    #[test]
    fn expand_static_reveals_every_hidden_child() {
        let nav = session_nav();
        let mut s = Session::new(&nav, CostParams::default());
        let revealed = s.expand_static(NavNodeId::ROOT).unwrap();
        // Rung 2 is the GoPubMed-style baseline: all of the root's
        // children come out at once, every one now visible.
        let children = nav.children(NavNodeId::ROOT);
        assert_eq!(revealed.len(), children.len());
        for &c in children {
            assert!(s.active().is_visible(c));
        }
        // The degraded cut went through ActiveTree validation like any
        // other cut: the state round-trips restore.
        let state = s.export_state();
        assert!(Session::restore(&nav, CostParams::default(), state).is_some());
        // Hidden / singleton nodes keep their typed errors.
        assert!(matches!(
            s.expand_static(NavNodeId::ROOT),
            Err(EdgeCutError::EmptyCut) | Ok(_)
        ));
        let hidden = nav.iter_preorder().find(|&n| !s.active().is_visible(n));
        if let Some(hidden) = hidden {
            assert!(matches!(
                s.expand_static(hidden),
                Err(EdgeCutError::NotAComponentRoot(_))
            ));
        }
    }

    #[test]
    fn expand_degraded_memo_serves_only_from_retained_plans() {
        let nav = session_nav();
        // Without reuse_plans there is never a retained plan: rung 1 must
        // decline so the ladder drops to the static rung.
        let mut fresh = Session::new(&nav, CostParams::default());
        fresh.expand(NavNodeId::ROOT).unwrap();
        assert!(fresh.expand_degraded_memo(NavNodeId::ROOT).is_none());

        // With reuse_plans, the first exact expand retains the plan and the
        // memo rung answers follow-ups with a valid cut.
        let params = CostParams {
            reuse_plans: true,
            ..CostParams::default()
        };
        let mut s = Session::new(&nav, params);
        s.expand(NavNodeId::ROOT).unwrap();
        if s.component_size(NavNodeId::ROOT) > 1 {
            let revealed = s
                .expand_degraded_memo(NavNodeId::ROOT)
                .expect("retained plan present")
                .expect("memo cut applies");
            assert!(!revealed.is_empty());
            for &n in &revealed {
                assert!(s.active().is_visible(n));
            }
        }
        // Hidden nodes keep their typed error even on the memo rung.
        let hidden = nav.iter_preorder().find(|&n| !s.active().is_visible(n));
        if let Some(hidden) = hidden {
            assert!(matches!(
                s.expand_degraded_memo(hidden),
                Some(Err(EdgeCutError::NotAComponentRoot(_)))
            ));
        }
    }

    #[test]
    fn manual_cut_via_expand_with() {
        let nav = session_nav();
        let mut s = Session::new(&nav, CostParams::default());
        let child = nav.children(NavNodeId::ROOT)[0];
        let revealed = s
            .expand_with(NavNodeId::ROOT, &EdgeCut::new(vec![child]))
            .unwrap();
        assert_eq!(revealed, vec![child]);
        assert!(s.active().is_visible(child));
    }
}
