//! # bionav-core — the BioNav navigation engine
//!
//! This crate implements the primary contribution of *"BioNav: Effective
//! Navigation on Query Results of Biomedical Databases"* (ICDE 2009): a
//! navigation method over large query results organized along a concept
//! hierarchy, where every node expansion reveals the cost-optimal set of
//! *descendant* concepts (an **EdgeCut**) instead of all children.
//!
//! The pipeline, mirroring the paper's section structure:
//!
//! 1. **Navigation tree** ([`navtree`], §II Definitions 1–2): query-result
//!    citations are attached to their hierarchy positions and the hierarchy
//!    is reduced to its *maximum embedding* — the smallest tree preserving
//!    ancestry in which every non-root node carries results.
//! 2. **Active tree** ([`active`], §II Definitions 3–5): the state of a
//!    navigation. Component subtrees are split by valid EdgeCuts; the
//!    visualization shows only component roots with distinct-citation
//!    counts.
//! 3. **Cost model** ([`cost`], [`prob`], §III–IV): the expected TOPDOWN
//!    navigation cost, driven by EXPLORE (selectivity × inverse global
//!    frequency) and EXPAND (threshold + entropy) probabilities.
//! 4. **Algorithms** ([`edgecut`], §VI): the exponential [`edgecut::opt`]
//!    dynamic program, the [`edgecut::partition`] tree partitioner, and
//!    [`edgecut::heuristic`] (Heuristic-ReducedOpt) which reduces a
//!    component to ≤ k supernodes and solves that exactly.
//! 5. **Baseline & evaluation** ([`baseline`], [`sim`], §VIII): the static
//!    GoPubMed-style navigation and the oracle-user simulator producing the
//!    paper's navigation-cost metrics.
//! 6. **Sessions** ([`session`], §VII): the interactive EXPAND /
//!    SHOWRESULTS / IGNORE / BACKTRACK loop of the online system.
//! 7. **Complexity artifacts** ([`complexity`], §V): the MAXIMUM EDGE
//!    SUBGRAPH → TOPDOWN-EXHAUSTIVE decision problem reduction, executable
//!    and property-tested.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod active;
pub mod admission;
pub mod baseline;
mod bitset;
pub mod breaker;
pub mod complexity;
pub mod cost;
pub mod edgecut;
pub mod engine;
pub mod fault;
pub mod navtree;
pub mod prob;
pub mod scratch;
pub mod session;
pub mod shard;
pub mod sim;
pub mod slo;
pub mod stats;
pub(crate) mod sync;
pub mod telemetry;
pub mod trace;

pub use active::{ActiveTree, EdgeCut, EdgeCutError, VisNode};
pub use admission::{AdmissionGate, ShedReason};
pub use bitset::CitSet;
pub use breaker::{Breaker, BreakerDecision, BreakerState};
pub use cost::{CostParams, Planner};
pub use engine::{
    DegradePolicy, DegradeReason, Engine, EngineError, ExpandReply, ScriptOp, ScriptOutcome,
    ServeStats, SessionId, SharedTree,
};
pub use fault::{FailSite, Fault, FaultPlan};
pub use navtree::{NavNodeId, NavigationTree};
pub use scratch::NavScratch;
pub use shard::{HealthPolicy, ShardSessionId, ShardedEngine};
pub use slo::{Slo, SloBurn, SloVerb, SLOS};
pub use trace::flightrec::{FlightRecord, RequestCtx, Verb};
pub use trace::{Stage, StageStat};
