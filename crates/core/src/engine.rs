//! # Concurrent query-serving engine (the "system" layer over §VII)
//!
//! The paper describes BioNav as a deployed online system: a keyword query
//! arrives, its navigation tree is constructed once, and the user then
//! navigates interactively. This module turns the reproduction's
//! single-session pipeline into a **multi-session serving engine**:
//!
//! * [`Engine`] holds navigation trees in a capacity-bounded LRU
//!   [`TreeCache`] keyed by *normalized* query text
//!   ([`bionav_medline::normalize_phrase`]) — repeated queries share one
//!   `Arc<NavigationTree>` instead of rebuilding it;
//! * many concurrent [`Session`]s live in a lock-guarded session table,
//!   each independently resumable from any worker thread
//!   (`Session<Arc<NavigationTree>>` is `Send`, enforced at compile time
//!   below);
//! * a batch driver ([`Engine::replay`]) replays navigation scripts from N
//!   pooled worker threads, and [`Engine::stats`] exposes the serving
//!   telemetry (cache hit rate, per-EXPAND latency percentiles,
//!   sessions/sec) the bench harness reports.
//!
//! Thread-safety audit: `NavigationTree`, `ActiveTree` and `SessionState`
//! are plain owned data with no interior mutability; `ReducedPlan` carries
//! its retained solver memo behind a mutex; `Session` retains plans behind
//! `Arc` (not `Rc`) so it is `Send + Sync` whenever its tree handle is.
//! The `const` block at the bottom of this file makes these guarantees
//! compile-time assertions — reintroducing an `Rc` (or a `Cell`) anywhere
//! in the navigation stack fails the build.
//!
//! Telemetry is deliberately off the serving hot path: EXPAND latencies go
//! into a sharded lock-free [`LatencyHistogram`] (fixed memory, no global
//! log vector), and the live-session gauge is an atomic maintained at
//! insert/remove time, so [`Engine::stats`] never touches the session
//! table's lock while workers are serving.
//!
//! ## Fault tolerance (DESIGN.md §5f)
//!
//! An interactive EXPAND must always come back, fast, even when the solver
//! hits a pathological component or a worker dies. Three mechanisms:
//!
//! * **Typed errors** — every public entry point returns
//!   `Result<_, `[`EngineError`]`>` instead of a bare `Option`, so callers
//!   can tell an unknown query from a shed request from a quarantined
//!   session.
//! * **The degradation ladder** — under a configurable [`DegradePolicy`]
//!   (deadline / component-size budget) or an injected fault
//!   ([`fault`]), EXPAND degrades monotonically: exact
//!   Opt-EdgeCut → retained-memo myopic cut → static show-all-children
//!   cut. Every degraded answer is still a *valid* EdgeCut (validated by
//!   the active tree), is flagged with a [`DegradeReason`] in the reply,
//!   and is tallied in [`ServeStats`] / the trace plane
//!   ([`Stage::Degraded`]) / the Prometheus exposition. With the default
//!   policy and no armed faults the ladder never fires and per-query
//!   costs are bit-identical to the exact pipeline (chaos-tested).
//! * **Panic isolation & quarantine** — EXPAND bodies and pool-worker
//!   tasks run inside [`fault::isolate`]; a panic
//!   becomes a typed error, the affected session is quarantined (visible
//!   in stats; [`Engine::close_session`] still drains it) and the batch
//!   keeps going. An admission gate bounds in-flight EXPANDs and sheds
//!   load with [`EngineError::Overloaded`] instead of queueing
//!   unboundedly.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

// The session table, tree cache, and gauges go through the sync shim so the
// interleave park/resume model explores the production protocol (§5d).
use crate::sync::{AtomicU64, AtomicUsize, Mutex, Ordering};

use crate::admission::AdmissionGate;
use crate::slo::{slo_for, SloBurn, SloState, SloVerb};
use crate::telemetry::LatencyHistogram;
use crate::trace::flightrec::{self, Verb};
use crate::trace::{self, Stage, StageMetrics, StageStat};

use crate::active::EdgeCutError;
use crate::cost::CostParams;
use crate::fault::{self, FailSite, Fault};
use crate::navtree::{NavNodeId, NavigationTree};
use crate::session::{CutCache, Session, SessionState};
use crate::sim::NavOutcome;

pub mod pool {
    //! A minimal bounded worker pool over `std::thread::scope`.
    //!
    //! Replaces the seed's unbounded one-thread-per-task fan-out: `workers`
    //! OS threads pull task indices from a shared atomic counter until the
    //! range is drained. Results are returned in task order, so callers see
    //! output byte-identical to a sequential map.
    //!
    //! **Panic isolation** (DESIGN.md §5f): each task body runs inside
    //! [`fault::isolate`]. A panicking task yields a
    //! typed [`WorkerPanicked`] in its own slot while the worker thread
    //! keeps draining the counter — one bad task never loses the other
    //! tasks' results or aborts the batch.

    use std::sync::atomic::{AtomicUsize, Ordering};

    use crate::fault::{self, FailSite};

    /// One pool task panicked; the other tasks' results are unaffected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WorkerPanicked {
        /// Index of the panicking task in `0..tasks`.
        pub task: usize,
        /// The panic payload, stringified.
        pub message: String,
    }

    /// Maps `f` over `0..tasks` on at most `workers` threads, returning
    /// per-task results in task order — `Ok(value)` or the typed
    /// [`WorkerPanicked`] if that task's body panicked. `workers` is
    /// clamped to `[1, tasks]`; with a single worker the map runs inline
    /// on the caller's thread (panics are isolated the same way).
    pub fn scoped_map<T, F>(tasks: usize, workers: usize, f: F) -> Vec<Result<T, WorkerPanicked>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // Failpoint + isolation wrapper shared by the inline and pooled
        // paths. The `PoolWorker` site models a task body dying: any fired
        // fault panics here, inside the isolate region.
        let run = |i: usize| -> Result<T, WorkerPanicked> {
            fault::isolate(|| {
                if fault::hit(FailSite::PoolWorker).is_some() {
                    // Every fault action at this site models a worker death.
                    fault::injected_panic(FailSite::PoolWorker);
                }
                f(i)
            })
            .map_err(|message| WorkerPanicked { task: i, message })
        };
        if tasks == 0 {
            return Vec::new();
        }
        let workers = workers.clamp(1, tasks);
        if workers == 1 {
            return (0..tasks).map(run).collect();
        }
        let next = AtomicUsize::new(0);
        let buckets: Vec<Vec<(usize, Result<T, WorkerPanicked>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            // Relaxed: the counter only hands out distinct
                            // indices; results flow back via join, which
                            // synchronizes.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            out.push((i, run(i)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                // lint: allow(no-unwrap) — task bodies are caught by
                // fault::isolate above, so a worker thread itself never
                // panics; join can only fail if the runtime is broken
                .map(|h| h.join().expect("pool worker thread panicked"))
                .collect()
        });
        let mut slots: Vec<Option<Result<T, WorkerPanicked>>> = (0..tasks).map(|_| None).collect();
        for bucket in buckets {
            for (i, v) in bucket {
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            // lint: allow(no-unwrap) — fetch_add hands each index to exactly
            // one worker, so every slot is filled by construction
            .map(|s| s.expect("every task index is claimed exactly once"))
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn preserves_order_and_runs_every_task() {
            for workers in [1, 2, 7, 64] {
                let out = scoped_map(100, workers, |i| i * 3);
                assert_eq!(out, (0..100).map(|i| Ok(i * 3)).collect::<Vec<_>>());
            }
        }

        #[test]
        fn zero_tasks_is_fine() {
            let out: Vec<Result<u32, WorkerPanicked>> = scoped_map(0, 8, |_| unreachable!());
            assert!(out.is_empty());
        }

        #[test]
        fn one_panicking_task_does_not_lose_the_others() {
            // Regression (DESIGN.md §5f): the old pool re-raised a worker
            // panic on the caller, aborting the whole batch. Now the
            // panicking task reports typed and every other slot survives —
            // across worker counts, including the inline single-worker path.
            for workers in [1, 2, 4, 16] {
                let out = scoped_map(20, workers, |i| {
                    if i == 7 {
                        panic!("task 7 exploded");
                    }
                    i * 2
                });
                assert_eq!(out.len(), 20);
                for (i, slot) in out.iter().enumerate() {
                    if i == 7 {
                        let err = slot.as_ref().expect_err("task 7 must report its panic");
                        assert_eq!(err.task, 7);
                        assert!(err.message.contains("task 7 exploded"), "{}", err.message);
                    } else {
                        assert_eq!(slot.as_ref().copied(), Ok(i * 2), "slot {i} lost");
                    }
                }
            }
        }
    }
}

/// A navigation tree shared between the cache and any number of sessions.
pub type SharedTree = Arc<NavigationTree>;

/// A parked session's handle paired with its tree's cross-session cut memo.
type SessionAndCuts = (Arc<Mutex<Session<SharedTree>>>, Arc<CutCache>);

/// Handle to a session parked in the engine's session table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw table key. Crate-internal: [`crate::shard`] packs it with a
    /// shard index into a [`crate::shard::ShardSessionId`].
    pub(crate) fn to_raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`SessionId::to_raw`] bits. Crate-internal;
    /// a forged id is harmless (the table lookup returns
    /// [`EngineError::UnknownSession`]).
    pub(crate) fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }
}

/// One step of a replayable navigation script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptOp {
    /// EXPAND one visible node.
    Expand(NavNodeId),
    /// EXPAND visible components in pre-order until the tree is fully
    /// expanded (the oracle "drill everywhere" load generator).
    ExpandFully,
    /// SHOWRESULTS on one visible node.
    ShowResults(NavNodeId),
    /// IGNORE a revealed node.
    Ignore(NavNodeId),
    /// BACKTRACK the last expansion.
    Backtrack,
}

/// What one script replay produced.
#[derive(Debug, Clone)]
pub struct ScriptOutcome {
    /// The (raw) query text the script navigated.
    pub query: String,
    /// The session's accumulated §III cost at script end.
    pub cost: NavOutcome,
    /// Wall-clock nanoseconds of every EXPAND the script performed.
    pub expand_ns: Vec<u64>,
    /// How many of the script's EXPANDs were answered by the degradation
    /// ladder (0 on the clean path — asserted by `reproduce -- serve`).
    pub degraded_expands: u32,
}

/// Why an EXPAND was answered by the degradation ladder instead of the
/// exact planner (DESIGN.md §5f).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    /// The [`DegradePolicy::expand_deadline_ns`] budget was already spent
    /// when the planning decision was made.
    Deadline,
    /// The component exceeded [`DegradePolicy::exact_node_budget`] nodes.
    StepBudget,
    /// An armed failpoint ([`crate::fault`]) fired at solver entry.
    Fault,
}

impl DegradeReason {
    /// Stable snake_case name (metrics labels, REPL output).
    pub fn name(self) -> &'static str {
        match self {
            DegradeReason::Deadline => "deadline",
            DegradeReason::StepBudget => "step_budget",
            DegradeReason::Fault => "fault",
        }
    }
}

/// What [`Engine::expand`] returns on success: the revealed concepts plus
/// whether (and why) the answer came from the degradation ladder rather
/// than the exact planner. `degraded == None` means the cut is the exact
/// pipeline's, bit-identical to a single-session run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandReply {
    /// The newly revealed component roots, in cut order.
    pub revealed: Vec<NavNodeId>,
    /// `Some(reason)` when a ladder rung answered instead of the exact
    /// planner.
    pub degraded: Option<DegradeReason>,
}

/// The serving engine's error taxonomy (DESIGN.md §5f). Replaces the bare
/// `Option` returns: callers can tell a bad query from shed load from a
/// quarantined session, and react accordingly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The query has no results (the tree builder returned nothing).
    UnknownQuery(String),
    /// No session with this id is parked in the table.
    UnknownSession(SessionId),
    /// The session exists but could not be engaged right now (an injected
    /// lock-acquisition fault; transient — retry later).
    SessionBusy(SessionId),
    /// The session was quarantined after a panic; it no longer serves
    /// operations, but [`Engine::close_session`] still drains its state.
    Quarantined(SessionId),
    /// The admission gate shed this EXPAND
    /// ([`DegradePolicy::max_inflight_expands`]); nothing was executed.
    Overloaded,
    /// Building the navigation tree failed (builder panic or injected
    /// tree-build fault); carries the failure message.
    TreeBuildFailed(String),
    /// The session panicked during this operation and has been moved to
    /// quarantine; carries the panic payload.
    SessionPanicked {
        /// The now-quarantined session.
        id: SessionId,
        /// The panic payload, stringified.
        message: String,
    },
    /// A pool worker task panicked during a batch replay.
    WorkerPanicked {
        /// Index of the failed job.
        task: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A persisted [`SessionState`] does not fit the query's rebuilt tree
    /// (stale or foreign state; the `ActiveTree::fits` validation).
    StateMismatch,
    /// The navigation itself refused the operation (hidden node, singleton
    /// component, invalid cut, …).
    Cut(EdgeCutError),
    /// The request's end-to-end deadline ([`flightrec::RequestCtx`]) had
    /// already expired on arrival; nothing was executed.
    DeadlineExceeded,
    /// The target shard's circuit breaker is open; retry after the hint.
    BreakerOpen {
        /// The fast-failing shard.
        shard: usize,
        /// Client backoff hint, nanoseconds (always ≥ 1).
        retry_after_ns: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownQuery(q) => write!(f, "query has no results: {q:?}"),
            EngineError::UnknownSession(id) => write!(f, "unknown session {id:?}"),
            EngineError::SessionBusy(id) => write!(f, "session {id:?} is busy; retry"),
            EngineError::Quarantined(id) => {
                write!(f, "session {id:?} is quarantined after a panic")
            }
            EngineError::Overloaded => write!(f, "engine overloaded; EXPAND shed"),
            EngineError::TreeBuildFailed(msg) => write!(f, "navigation tree build failed: {msg}"),
            EngineError::SessionPanicked { id, message } => {
                write!(f, "session {id:?} panicked and was quarantined: {message}")
            }
            EngineError::WorkerPanicked { task, message } => {
                write!(f, "replay job {task} panicked: {message}")
            }
            EngineError::StateMismatch => {
                write!(f, "persisted session state does not fit the query's tree")
            }
            EngineError::Cut(e) => write!(f, "navigation refused: {e}"),
            EngineError::DeadlineExceeded => {
                write!(f, "request deadline expired before any work was done")
            }
            EngineError::BreakerOpen {
                shard,
                retry_after_ns,
            } => write!(
                f,
                "shard {shard} circuit breaker is open; retry after {} ms",
                retry_after_ns.div_ceil(1_000_000)
            ),
        }
    }
}

impl EngineError {
    /// Kind names indexed by the variant's position in the enum; the
    /// flight-recorder code is this index plus one (0 = success).
    const KIND_NAMES: [&'static str; 12] = [
        "unknown_query",
        "unknown_session",
        "session_busy",
        "quarantined",
        "overloaded",
        "tree_build_failed",
        "session_panicked",
        "worker_panicked",
        "state_mismatch",
        "cut",
        "deadline_exceeded",
        "breaker_open",
    ];

    fn kind_index(&self) -> usize {
        match self {
            EngineError::UnknownQuery(_) => 0,
            EngineError::UnknownSession(_) => 1,
            EngineError::SessionBusy(_) => 2,
            EngineError::Quarantined(_) => 3,
            EngineError::Overloaded => 4,
            EngineError::TreeBuildFailed(_) => 5,
            EngineError::SessionPanicked { .. } => 6,
            EngineError::WorkerPanicked { .. } => 7,
            EngineError::StateMismatch => 8,
            EngineError::Cut(_) => 9,
            EngineError::DeadlineExceeded => 10,
            EngineError::BreakerOpen { .. } => 11,
        }
    }

    /// Stable snake_case kind name (flight-recorder records, logs).
    pub fn kind_name(&self) -> &'static str {
        Self::KIND_NAMES[self.kind_index()]
    }

    /// 1-based kind code packed into flight-recorder slots (0 = ok).
    pub(crate) fn flight_code(&self) -> u8 {
        self.kind_index() as u8 + 1
    }

    /// Inverse of [`EngineError::flight_code`]: the kind name for a packed
    /// code, `""` for 0 (success).
    pub(crate) fn flight_kind(code: u8) -> &'static str {
        if code == 0 {
            return "";
        }
        Self::KIND_NAMES
            .get(usize::from(code - 1))
            .copied()
            .unwrap_or("unknown")
    }
}

impl std::error::Error for EngineError {}

impl From<EdgeCutError> for EngineError {
    fn from(e: EdgeCutError) -> Self {
        EngineError::Cut(e)
    }
}

/// Bounded-time serving policy: when EXPAND drops onto the degradation
/// ladder, and how much concurrent EXPAND load the engine admits
/// (DESIGN.md §5f). The default policy never degrades and admits far more
/// in-flight EXPANDs than any worker pool this engine runs — the clean
/// serve path is unchanged (chaos-tested bit-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Wall-clock budget for one EXPAND, nanoseconds, measured from
    /// admission (lock waits included). If it is already spent when the
    /// planning decision is made, the ladder answers instead of the exact
    /// solver. `0` disables the deadline.
    pub expand_deadline_ns: u64,
    /// Largest component (node count) the exact planner is given; bigger
    /// components degrade. `0` disables the budget.
    pub exact_node_budget: usize,
    /// Maximum concurrently in-flight EXPANDs before the admission gate
    /// sheds with [`EngineError::Overloaded`]. `0` disables the gate. With
    /// [`DegradePolicy::adaptive_admission`] set this is the AIMD
    /// controller's *ceiling* instead of the operating point.
    pub max_inflight_expands: usize,
    /// Run the [`AdmissionGate`] AIMD controller (DESIGN.md §5k): the
    /// in-flight limit tracks the measured EXPAND latency window against
    /// the [`crate::slo::SLOS`] target p99 instead of sitting at the
    /// static cap. Off by default — the clean serve path keeps the fixed
    /// cap and stays bit-identical.
    pub adaptive_admission: bool,
    /// Latency target the AIMD controller compares the EXPAND window
    /// against, nanoseconds. `0` (the default) uses the global
    /// [`crate::slo::SLOS`] Expand target; operators tune it per tier in
    /// the gradient-controller style — unloaded baseline latency × a
    /// tolerance factor — so the gate reacts to *this* deployment's
    /// queueing, not an absolute number sized for other hardware.
    pub admission_target_ns: u64,
    /// When a request carries an absolute deadline
    /// ([`flightrec::RequestCtx::deadline_ns`]), skip the exact planner if
    /// fewer than this many nanoseconds remain at planning time (the exact
    /// solve would likely blow the budget; the ladder answers instead).
    /// Only consulted for deadline-carrying requests, so oracle runs
    /// (deadline 0) never see it.
    pub deadline_exact_headroom_ns: u64,
    /// When a deadline-carrying request has fewer than this many
    /// nanoseconds left, the ladder skips even the myopic rung and answers
    /// with the static show-all-children cut.
    pub deadline_static_headroom_ns: u64,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            expand_deadline_ns: 0,
            exact_node_budget: 0,
            max_inflight_expands: 1024,
            adaptive_admission: false,
            admission_target_ns: 0,
            deadline_exact_headroom_ns: 5_000_000,
            deadline_static_headroom_ns: 1_000_000,
        }
    }
}

/// How many distinct components each per-tree [`CutCache`] memoizes before
/// it stops inserting (fixed memory per cached tree).
const CUT_CACHE_CAPACITY: usize = 4096;

/// LRU cache entry: the shared tree plus its cross-session cut memo.
/// Evicting the tree evicts its cuts with it.
struct CacheEntry {
    tree: SharedTree,
    cuts: Arc<CutCache>,
    last_used: u64,
}

/// One in-flight cold build: the slot is locked by the building thread for
/// the duration of the build, so joiners block on `lock()` instead of
/// re-running the builder, then read the published result. Uses the sync
/// shim's `Mutex`, so the interleave checker models the latch.
type FlightSlot = Arc<Mutex<Option<Result<(SharedTree, Arc<CutCache>), EngineError>>>>;

/// Capacity-bounded LRU of navigation trees keyed by normalized query text.
struct TreeCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, CacheEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl TreeCache {
    fn new(capacity: usize) -> Self {
        TreeCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Zeroes the hit/miss/eviction counters, keeping the cached trees.
    fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// Probe only: bumps the hit counter on a find. Misses are counted by
    /// the caller when it commits to a build (`count_miss`), because with
    /// single-flight builds a probe miss may still be served by another
    /// thread's in-flight build — which counts as a hit, exactly as it did
    /// when the second thread queued on the cache lock instead.
    fn get(&mut self, key: &str) -> Option<(SharedTree, Arc<CutCache>)> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some((Arc::clone(&entry.tree), Arc::clone(&entry.cuts)))
            }
            None => None,
        }
    }

    /// One lookup resolved by (attempting) a fresh build.
    fn count_miss(&mut self) {
        self.misses += 1;
    }

    /// One lookup served by joining another thread's in-flight build.
    fn count_flight_hit(&mut self) {
        self.hits += 1;
    }

    fn insert(&mut self, key: String, tree: SharedTree) -> Arc<CutCache> {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Evict the least-recently-used entry. O(n) scan — capacities
            // are small (tens to hundreds of hot queries) and eviction only
            // happens on miss-with-full-cache; sessions holding the evicted
            // tree keep their `Arc` alive independently.
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        let cuts = Arc::new(CutCache::new(CUT_CACHE_CAPACITY));
        self.entries.insert(
            key,
            CacheEntry {
                tree,
                cuts: Arc::clone(&cuts),
                last_used: self.tick,
            },
        );
        cuts
    }
}

/// Lock-free shard-health signals (relaxed atomic reads, no locks) used by
/// the [`crate::shard`] router to bias cold opens away from sick shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// EXPANDs answered by any degradation-ladder rung since the last
    /// stats-window reset.
    pub degraded_expands: u64,
    /// EXPANDs refused by the admission gate since the last reset.
    pub shed_expands: u64,
    /// Session operations that panicked and were caught since the last
    /// reset.
    pub session_panics: u64,
    /// Poisoned sessions currently parked in the table (a live gauge, not
    /// window-reset).
    pub sessions_quarantined: usize,
    /// Requests rejected expired-on-arrival since the last reset (the
    /// fourth breaker baseline slot — a shard drowning in deadline misses
    /// is sick even if it never degrades).
    pub deadline_rejects: u64,
}

/// Serving telemetry snapshot; serializes into `BENCH_serve.json`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeStats {
    /// Tree-cache lookups that found their tree.
    pub cache_hits: u64,
    /// Tree-cache lookups that had to build.
    pub cache_misses: u64,
    /// Entries dropped by LRU pressure.
    pub cache_evictions: u64,
    /// Trees currently cached.
    pub cache_entries: usize,
    /// Cache capacity bound.
    pub cache_capacity: usize,
    /// `hits / (hits + misses)`, 0.0 when idle.
    pub cache_hit_rate: f64,
    /// EXPANDs answered from a cross-session [`CutCache`] (summed over the
    /// currently cached trees).
    pub cut_cache_hits: u64,
    /// EXPANDs that fell through to a fresh Heuristic-ReducedOpt solve
    /// (summed over the currently cached trees).
    pub cut_cache_misses: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions closed (state exported or dropped).
    pub sessions_closed: u64,
    /// Sessions currently parked in the table.
    pub sessions_active: usize,
    /// Parked sessions currently quarantined after a panic (a subset of
    /// `sessions_active`; they drain through [`Engine::close_session`]).
    pub sessions_quarantined: usize,
    /// Sessions ever quarantined after a panic escaped into the engine.
    pub session_panics: u64,
    /// EXPANDs answered by the degradation ladder (any rung) in this
    /// stats window. 0 on the clean serve path.
    pub degraded_expands: u64,
    /// Ladder EXPANDs answered by the retained-memo myopic rung.
    pub degraded_myopic: u64,
    /// Ladder EXPANDs answered by the static show-all-children rung.
    pub degraded_static: u64,
    /// EXPANDs shed by the admission gate
    /// ([`DegradePolicy::max_inflight_expands`]) in this stats window.
    pub shed_expands: u64,
    /// Requests rejected because their end-to-end deadline had already
    /// expired on arrival ([`EngineError::DeadlineExceeded`]).
    pub deadline_rejects: u64,
    /// Requests fast-failed by an open circuit breaker
    /// ([`EngineError::BreakerOpen`]; always 0 for a standalone engine —
    /// breakers live in the sharded tier).
    pub breaker_rejects: u64,
    /// The admission gate's live in-flight limit (summed across shards in
    /// a merged snapshot; 0 = ungated).
    pub admission_limit: u64,
    /// Circuit-breaker state code ([`crate::breaker::BreakerState`]
    /// discriminant; the max across shards in a merged snapshot, so any
    /// non-closed breaker is visible at a glance).
    pub breaker_state: u64,
    /// EXPAND operations measured.
    pub expand_count: usize,
    /// Median EXPAND latency, microseconds.
    pub expand_p50_us: f64,
    /// 95th-percentile EXPAND latency, microseconds.
    pub expand_p95_us: f64,
    /// 99th-percentile EXPAND latency, microseconds.
    pub expand_p99_us: f64,
    /// Wall-clock seconds since the engine started.
    pub elapsed_secs: f64,
    /// Closed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Per-verb SLO burn-rate rows (DESIGN.md §5j), in [`crate::slo::SLOS`]
    /// order with the `total` window before the `recent` window per verb.
    pub slo_burn: Vec<SloBurn>,
    /// Per-stage latency breakdown of the serve path (only stages that
    /// recorded samples in the current window, in [`Stage::ALL`] order).
    pub stages: Vec<StageStat>,
    /// Span events ever pushed to the global trace ring. Monotone across
    /// [`Engine::reset_stats`] (the ring's push counter survives a clear),
    /// so it exports as a proper Prometheus counter.
    pub trace_events: u64,
}

impl ServeStats {
    /// Serialize this snapshot as pretty-printed JSON (the `serve-stats
    /// --json` surface).
    ///
    /// Returns the serializer's error instead of swallowing it: the old
    /// `"{}"` fallback silently handed downstream parsers an empty object,
    /// which `bench_guard` would then misread as missing gates. A plain
    /// data struct cannot actually fail to serialize, so callers may
    /// `expect` — but the taxonomy makes the impossible case loud, not
    /// invisible.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a snapshot previously produced by [`ServeStats::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// A parked session plus the raw query that opened it and the
/// cross-session cut memo of its tree (resolved once at open time so the
/// EXPAND hot path never touches the tree-cache lock).
struct SessionSlot {
    session: Arc<Mutex<Session<SharedTree>>>,
    query: String,
    cuts: Arc<CutCache>,
    /// Set when a panic escaped an operation on this session: the state
    /// may violate navigation invariants, so the slot stops serving
    /// (`expand`/`with_session` refuse) and only `close_session` — which
    /// merely exports — will touch it again. Guarded by the session-table
    /// lock; no separate quarantine set, so there is no second lock order.
    poisoned: bool,
}

/// The concurrent query-serving engine. See the module docs.
///
/// `B` builds a navigation tree for a query that misses the cache; it
/// returns `None` for queries with no results. Builders are called with no
/// engine lock held except the per-key flight latch (concurrent misses on
/// the *same* query still build once; misses on *different* queries build
/// in parallel, and cache hits never wait behind a build).
pub struct Engine<B>
where
    B: Fn(&str) -> Option<SharedTree> + Send + Sync,
{
    builder: B,
    params: CostParams,
    cache: Mutex<TreeCache>,
    /// In-flight cold builds keyed like the cache. Builders run outside
    /// the cache lock (cache hits never queue behind a build); this
    /// registry is what still guarantees one build per key.
    flights: Mutex<HashMap<String, FlightSlot>>,
    sessions: Mutex<HashMap<u64, SessionSlot>>,
    next_session: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    /// Live-session gauge, maintained on insert/remove so `stats()` never
    /// takes the session-table lock.
    sessions_active: AtomicUsize,
    /// EXPAND latency histogram: sharded, lock-free, fixed memory no
    /// matter how long the engine lives (the predecessor was an unbounded
    /// `Mutex<Vec<u64>>` every worker contended on).
    expand_hist: LatencyHistogram,
    /// Per-stage latency family (DESIGN.md §5e): one histogram + exact sum
    /// per [`Stage`], fed by the thread-local capture tape drained after
    /// each public engine operation.
    stage: StageMetrics,
    /// Rotating-baseline burn-rate state for the SLO monitor (DESIGN.md
    /// §5j); derives from `expand_hist` / `stage`, adds no hot-path work.
    slo: SloState,
    /// Start of the current stats window, as a [`trace::now_ns`] offset
    /// (reset by [`Engine::reset_stats`]).
    started_ns: AtomicU64,
    /// Degradation-ladder / admission policy (DESIGN.md §5f).
    policy: DegradePolicy,
    /// The in-flight EXPAND gate (DESIGN.md §5k): a fixed cap with the
    /// default policy, the AIMD controller's live limit under
    /// [`DegradePolicy::adaptive_admission`].
    admission: AdmissionGate,
    /// EXPANDs shed by the admission gate in the current stats window.
    shed_expands: AtomicU64,
    /// Requests rejected because their end-to-end deadline had already
    /// expired on arrival, in the current stats window.
    deadline_rejects: AtomicU64,
    /// Ladder answers from the retained-memo myopic rung.
    degraded_myopic: AtomicU64,
    /// Ladder answers from the static show-all-children rung.
    degraded_static: AtomicU64,
    /// Sessions ever quarantined (monotone within a stats window).
    session_panics: AtomicU64,
    /// Parked sessions currently poisoned (gauge; decremented on drain).
    sessions_quarantined: AtomicUsize,
    /// Shard index for fault-plane scoping (`u64::MAX` = untagged, the
    /// standalone-engine default). A [`crate::shard::ShardedEngine`] tags
    /// each member at construction so [`crate::fault::FaultPlan::only_shard`]
    /// plans can storm one shard in isolation.
    fault_shard: u64,
}

impl<B> Engine<B>
where
    B: Fn(&str) -> Option<SharedTree> + Send + Sync,
{
    /// Creates an engine with the given tree builder, session cost
    /// parameters, and tree-cache capacity. The degradation/admission
    /// policy defaults to "never degrade" ([`DegradePolicy::default`]);
    /// set one with [`Engine::with_policy`] or [`Engine::set_policy`].
    pub fn new(builder: B, params: CostParams, cache_capacity: usize) -> Self {
        Engine {
            builder,
            params,
            cache: Mutex::new(TreeCache::new(cache_capacity)),
            flights: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            sessions_active: AtomicUsize::new(0),
            expand_hist: LatencyHistogram::new(),
            stage: StageMetrics::new(),
            slo: SloState::new(),
            started_ns: AtomicU64::new(trace::now_ns()),
            policy: DegradePolicy::default(),
            admission: AdmissionGate::new(DegradePolicy::default().max_inflight_expands),
            shed_expands: AtomicU64::new(0),
            deadline_rejects: AtomicU64::new(0),
            degraded_myopic: AtomicU64::new(0),
            degraded_static: AtomicU64::new(0),
            session_panics: AtomicU64::new(0),
            sessions_quarantined: AtomicUsize::new(0),
            fault_shard: u64::MAX,
        }
    }

    /// Tag every operation on this engine as belonging to fault-plane
    /// shard `shard` (see [`fault::enter_shard`]). Takes `&mut self` like
    /// [`Engine::set_policy`]: tagging happens once, at sharded-tier
    /// construction, before any worker holds the engine.
    pub fn set_fault_shard(&mut self, shard: usize) {
        self.fault_shard = shard as u64;
    }

    /// Scope guard tagging the current thread with this engine's fault
    /// shard for the duration of one public operation; `None` (and zero
    /// work) for untagged standalone engines.
    fn fault_scope(&self) -> Option<fault::ShardScope> {
        (self.fault_shard != u64::MAX).then(|| fault::enter_shard(self.fault_shard as usize))
    }

    /// Open (or join) this thread's flight-recorder request scope for one
    /// public operation (DESIGN.md §5j). Wire-fronted requests arrive with
    /// a scope already open (the front end minted the
    /// [`flightrec::RequestCtx`]) and join it; direct API callers get a
    /// fresh server-minted request id.
    /// Shard-tagged engines stamp their shard into the summary.
    fn flight_scope(&self, verb: Verb) -> flightrec::RequestScope {
        let scope = flightrec::ensure_scope(verb);
        if self.fault_shard != u64::MAX {
            flightrec::note_shard(self.fault_shard as usize);
        }
        scope
    }

    /// Builder-style [`DegradePolicy`] override.
    pub fn with_policy(mut self, policy: DegradePolicy) -> Self {
        self.set_policy(policy);
        self
    }

    /// Replace the degradation/admission policy. Takes `&mut self`: the
    /// policy is plain data read by serving threads, so it can only change
    /// while no worker holds the engine. The admission gate restarts at
    /// the new cap (the AIMD controller re-converges from there).
    pub fn set_policy(&mut self, policy: DegradePolicy) {
        self.policy = policy;
        self.admission.set_limit(policy.max_inflight_expands);
    }

    /// The live admission limit: the AIMD controller's current operating
    /// point under [`DegradePolicy::adaptive_admission`], otherwise the
    /// static cap (0 = ungated).
    pub fn admission_limit(&self) -> usize {
        self.admission.limit()
    }

    /// EXPAND SLO burn rate over the current stats window, ×100, from the
    /// lock-free latency histogram alone — safe on the sharded tier's
    /// routing/health path where [`Engine::stats`] (which takes the cache
    /// lock) is off-limits.
    pub fn expand_burn_x100(&self) -> u64 {
        let snap = self.expand_hist.snapshot();
        let target_ns = slo_for(SloVerb::Expand).target_p99_ns;
        (crate::slo::burn_rate(snap.count_at_or_below(target_ns), snap.total()) * 100.0) as u64
    }

    /// The active degradation/admission policy.
    pub fn policy(&self) -> &DegradePolicy {
        &self.policy
    }

    /// Drain the calling thread's capture tape into the per-stage metrics.
    /// Called at the end of every public operation: the tape is exact
    /// (every span, independent of the ring toggle and sampling), so stage
    /// counts stay consistent with `edgecut::counters`.
    fn absorb_tape(&self) {
        for (stage, ns, _rid) in trace::take_captured() {
            self.stage.record(stage, ns);
            // The tape drains on the thread that ran the spans, while its
            // request scope is still open — the same interval lands in the
            // flight recorder's per-request breakdown.
            flightrec::note_stage(stage, ns);
        }
    }

    /// The engine's cache key for a raw query: lowercased, tokenized,
    /// whitespace-collapsed (`bionav_medline::normalize_phrase`), so
    /// `"Prothymosin  Alpha"` and `"prothymosin alpha"` share a tree.
    pub fn cache_key(query: &str) -> String {
        bionav_medline::normalize_phrase(query)
    }

    /// Returns the shared navigation tree for `query`, building and caching
    /// it on a miss. `None` when the builder reports no results (or the
    /// build failed; use the typed [`Engine::open_session`] path to tell
    /// the two apart).
    pub fn tree_for(&self, query: &str) -> Option<SharedTree> {
        self.tree_and_cuts_for(query).ok().map(|(tree, _, _)| tree)
    }

    /// The shared tree *and* its cross-session cut memo, building both on a
    /// miss. The builder runs inside [`fault::isolate`]: a panicking build
    /// (or an injected [`FailSite::TreeBuild`] fault) becomes a typed
    /// [`EngineError::TreeBuildFailed`] and leaves the cache consistent
    /// (the key is only inserted after a successful build).
    /// The trailing `bool` is true on a tree-cache hit, false when the
    /// skeleton was built cold — `open_session` records the hit/cold
    /// sub-stage from it.
    ///
    /// Builds run *outside* the cache lock: the lock is held only for the
    /// probe and the post-build insert, so cache hits never queue behind a
    /// concurrent cold build (pre-flight, a 4-worker cold round put ~22 ms
    /// of build time on *hit* opens). One build per key is preserved by
    /// the `flights` registry: the first miss becomes the leader and holds
    /// its [`FlightSlot`] lock for the duration of the build; later misses
    /// on the same key block on that lock and read the published result —
    /// the same "second thread waits, then is served" outcome as the old
    /// build-under-lock scheme, so they count as cache hits. Failed builds
    /// publish their error, cache nothing, and retire the flight, so the
    /// next call retries the build (unchanged failure semantics).
    fn tree_and_cuts_for(
        &self,
        query: &str,
    ) -> Result<(SharedTree, Arc<CutCache>, bool), EngineError> {
        let key = Self::cache_key(query);
        loop {
            {
                let mut cache = {
                    let _lk = trace::span(Stage::LockWait);
                    self.cache.lock()
                };
                if let Some((tree, cuts)) = cache.get(&key) {
                    return Ok((tree, cuts, true));
                }
            }

            // Miss: start this key's flight, or join the one in progress.
            // The leader latches its fresh slot while still holding the
            // registry lock (the slot `Arc` is unshared at that point, so
            // the lock can never block): no joiner can observe a
            // registered-but-unlatched flight, so a joiner's `slot.lock()`
            // below always returns a published result.
            let fresh: FlightSlot = Arc::new(Mutex::new(None));
            let mut joined: Option<FlightSlot> = None;
            let slot_guard = {
                let mut flights = self.flights.lock();
                match flights.get(&key) {
                    Some(slot) => {
                        joined = Some(Arc::clone(slot));
                        None
                    }
                    None => {
                        let guard = fresh.lock();
                        flights.insert(key.clone(), Arc::clone(&fresh));
                        Some(guard)
                    }
                }
            };

            if let Some(slot) = joined {
                // Joiner: block until the leader publishes, then take its
                // result. (The empty-slot case is unreachable by the latch
                // order above; re-probing is the safe response.)
                let published = {
                    let _lk = trace::span(Stage::LockWait);
                    slot.lock().clone()
                };
                match published {
                    Some(result) => {
                        let mut cache = self.cache.lock();
                        match &result {
                            // Served by the other thread's build: a hit,
                            // exactly as when it queued on the cache lock.
                            Ok(_) => cache.count_flight_hit(),
                            Err(_) => cache.count_miss(),
                        }
                        return result.map(|(tree, cuts)| (tree, cuts, true));
                    }
                    None => continue,
                }
            }

            // Leader: build with no lock held but the flight slot's.
            // lint: allow(no-unwrap) — joined is None here, so the registry
            // match above took the Vacant arm and latched the fresh slot
            let mut slot_guard = slot_guard.expect("non-joiner holds the latch");
            let built = fault::isolate(|| {
                // Failpoint: tree build (DESIGN.md §5f).
                match fault::hit(FailSite::TreeBuild) {
                    Some(Fault::Panic) => fault::injected_panic(FailSite::TreeBuild),
                    Some(_) => Err(EngineError::TreeBuildFailed(
                        "injected tree-build fault".to_string(),
                    )),
                    None => Ok((self.builder)(query)),
                }
            });
            let result = match built {
                Ok(Ok(Some(tree))) => {
                    let mut cache = self.cache.lock();
                    cache.count_miss();
                    let cuts = cache.insert(key.clone(), Arc::clone(&tree));
                    Ok((tree, cuts))
                }
                Ok(Ok(None)) => {
                    self.cache.lock().count_miss();
                    Err(EngineError::UnknownQuery(query.to_string()))
                }
                Ok(Err(e)) => {
                    self.cache.lock().count_miss();
                    Err(e)
                }
                Err(message) => {
                    self.cache.lock().count_miss();
                    Err(EngineError::TreeBuildFailed(message))
                }
            };
            // Publish, retire the flight, then release the latch: joiners
            // already holding the slot `Arc` read the result; arrivals
            // after the retire re-probe the cache (success) or start a
            // fresh flight (failure — so failed builds are retried).
            *slot_guard = Some(result.clone());
            self.flights.lock().remove(&key);
            drop(slot_guard);
            return result.map(|(tree, cuts)| (tree, cuts, false));
        }
    }

    /// Opens a session over `query`'s navigation tree.
    ///
    /// Typed failures: [`EngineError::UnknownQuery`] when the query has no
    /// results, [`EngineError::TreeBuildFailed`] when the build died.
    pub fn open_session(&self, query: &str) -> Result<SessionId, EngineError> {
        let _flight = self.flight_scope(Verb::Open);
        let _shard = self.fault_scope();
        let cap = trace::capture();
        let out: Result<SessionId, EngineError> = (|| {
            let _sp = trace::span(Stage::OpenSession);
            // Expired on arrival? Reject before the (possibly cold) tree
            // build — the most expensive thing a dead request could buy.
            self.deadline_reject()?;
            let t0 = trace::now_ns();
            let (tree, cuts, cache_hit) = self.tree_and_cuts_for(query)?;
            flightrec::note_cache(cache_hit);
            // Ordering: Relaxed — only id uniqueness matters; the session
            // itself is published by the table lock below.
            let id = self.next_session.fetch_add(1, Ordering::Relaxed);
            let session = Session::new(tree, self.params.clone());
            let mut table = {
                let _lk = trace::span(Stage::LockWait);
                self.sessions.lock()
            };
            table.insert(
                id,
                SessionSlot {
                    session: Arc::new(Mutex::new(session)),
                    query: query.to_string(),
                    cuts,
                    poisoned: false,
                },
            );
            drop(table);
            // Relaxed: monotonic telemetry gauges; readers only aggregate them,
            // nothing is ordered against the counts.
            self.sessions_opened.fetch_add(1, Ordering::Relaxed);
            self.sessions_active.fetch_add(1, Ordering::Relaxed);
            // A cache-hit open and a cold skeleton build are different
            // operations; record the same interval under the split
            // sub-stage so their percentiles don't blend.
            trace::record(
                if cache_hit {
                    Stage::OpenSessionHit
                } else {
                    Stage::OpenSessionCold
                },
                trace::now_ns().saturating_sub(t0),
            );
            Ok(SessionId(id))
        })();
        drop(cap);
        self.absorb_tape();
        if let Err(e) = &out {
            flightrec::note_error(e.flight_code());
        }
        out
    }

    /// Runs `f` against the parked session `id`. The session-table lock is
    /// held only for the lookup; the per-session lock is held for `f`, so
    /// independent sessions never contend. `None` for unknown *or
    /// quarantined* ids (quarantined sessions only drain, via
    /// [`Engine::close_session`]).
    pub fn with_session<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut Session<SharedTree>) -> R,
    ) -> Option<R> {
        let _shard = self.fault_scope();
        let slot = {
            let table = {
                let _lk = trace::span(Stage::LockWait);
                self.sessions.lock()
            };
            let slot = table.get(&id.0)?;
            if slot.poisoned {
                return None;
            }
            Arc::clone(&slot.session)
        };
        let mut session = slot.lock();
        Some(f(&mut session))
    }

    /// The parked session's handle plus its tree's cut memo; typed refusal
    /// for unknown or quarantined sessions.
    fn session_and_cuts(&self, id: SessionId) -> Result<SessionAndCuts, EngineError> {
        let table = {
            let _lk = trace::span(Stage::LockWait);
            self.sessions.lock()
        };
        let slot = table.get(&id.0).ok_or(EngineError::UnknownSession(id))?;
        if slot.poisoned {
            return Err(EngineError::Quarantined(id));
        }
        Ok((Arc::clone(&slot.session), Arc::clone(&slot.cuts)))
    }

    /// Move a session to quarantine after a panic escaped an operation on
    /// it: the slot stops serving, the gauges tick, and only
    /// [`Engine::close_session`] (which merely exports state) touches it
    /// again. Callers must NOT hold the session's own lock — the table
    /// lock is the only lock taken here (single lock order: table, then
    /// session, never the reverse).
    fn quarantine_session(&self, id: SessionId) {
        let mut newly = false;
        {
            let mut table = {
                let _lk = trace::span(Stage::LockWait);
                self.sessions.lock()
            };
            if let Some(slot) = table.get_mut(&id.0) {
                if !slot.poisoned {
                    slot.poisoned = true;
                    newly = true;
                    // Relaxed: telemetry gauges maintained under the table
                    // lock; readers only aggregate them.
                    self.session_panics.fetch_add(1, Ordering::Relaxed);
                    self.sessions_quarantined.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if newly {
            // Black-box moment (DESIGN.md §5j): a panic just quarantined a
            // session. Dump outside the table lock.
            flightrec::auto_dump("quarantine");
        }
    }

    /// Interleave-model hook (compiled only under `--cfg interleave`):
    /// drive the quarantine transition directly. [`fault::hit`] is a no-op
    /// in that configuration — injected panics never fire — but the
    /// quarantine *protocol* (table-lock-only poisoning racing concurrent
    /// open / expand / close) is exactly what the model checker must
    /// explore, so the transition is exposed as a first-class model input.
    #[cfg(interleave)]
    pub fn model_quarantine(&self, id: SessionId) {
        self.quarantine_session(id);
    }

    /// Admission gate (DESIGN.md §5f/§5k): admit one EXPAND or shed with
    /// [`EngineError::Overloaded`]. The returned guard releases the slot
    /// on drop (panic-safe — a quarantined EXPAND still releases).
    fn admit_expand(&self) -> Result<crate::admission::AdmitGuard<'_>, EngineError> {
        match self.admission.try_admit() {
            Some(guard) => Ok(guard),
            None => {
                // Relaxed: monotone statistics counter.
                self.shed_expands.fetch_add(1, Ordering::Relaxed);
                flightrec::note_shed(flightrec::SHED_QUEUE);
                // Black-box moment (DESIGN.md §5j): the gate is shedding load.
                flightrec::auto_dump("shed");
                Err(EngineError::Overloaded)
            }
        }
    }

    /// Deadline enforcement at the door (DESIGN.md §5k): if the request's
    /// end-to-end deadline ([`flightrec::RequestCtx::deadline_ns`], 0 =
    /// none) has already expired, reject typed before any solver, cache,
    /// or session-table work happens.
    fn deadline_reject(&self) -> Result<(), EngineError> {
        let deadline = flightrec::current_deadline_ns();
        if deadline != 0 && trace::now_ns() >= deadline {
            // Relaxed: monotone statistics counter.
            self.deadline_rejects.fetch_add(1, Ordering::Relaxed);
            flightrec::note_shed(flightrec::SHED_DEADLINE);
            return Err(EngineError::DeadlineExceeded);
        }
        Ok(())
    }

    /// One AIMD step when due (DESIGN.md §5k): compare the EXPAND latency
    /// window against the [`crate::slo::SLOS`] Expand target p99 and move
    /// the admit limit. The `due` pre-check keeps the histogram snapshot
    /// off the steady-state hot path (one snapshot per 25 ms per engine,
    /// max).
    fn adjust_admission(&self, now_ns: u64) {
        if !self.policy.adaptive_admission || !self.admission.due(now_ns) {
            return;
        }
        let target_ns = if self.policy.admission_target_ns != 0 {
            self.policy.admission_target_ns
        } else {
            slo_for(SloVerb::Expand).target_p99_ns
        };
        let snap = self.expand_hist.snapshot();
        self.admission.adjust(
            now_ns,
            snap.count_at_or_below(target_ns),
            snap.total(),
            self.policy.max_inflight_expands,
        );
    }

    /// Decide whether this EXPAND degrades, and why — evaluated with the
    /// session lock held, before any planning work. `t0` is the admission
    /// timestamp (so lock waits count against the deadline).
    fn choose_degrade(
        &self,
        session: &Session<SharedTree>,
        node: NavNodeId,
        t0: u64,
    ) -> Option<DegradeReason> {
        // Failpoint: solver entry (DESIGN.md §5f).
        if let Some(f) = fault::hit(FailSite::SolverEntry) {
            match f {
                Fault::Panic => fault::injected_panic(FailSite::SolverEntry),
                _ => return Some(DegradeReason::Fault),
            }
        }
        let budget = self.policy.exact_node_budget;
        if budget != 0 && session.component_size(node) > budget {
            return Some(DegradeReason::StepBudget);
        }
        let deadline = self.policy.expand_deadline_ns;
        if deadline != 0 && trace::now_ns().saturating_sub(t0) >= deadline {
            return Some(DegradeReason::Deadline);
        }
        // A request-scoped absolute deadline (wire [`flightrec::RequestCtx`])
        // degrades the same way as the policy budget, with headroom: if the
        // remaining budget is smaller than the exact solver's expected cost
        // the ladder answers *before* the deadline blows, not after. 0 = no
        // deadline in the context — the default, so reproduce passes stay
        // bit-identical.
        let ctx_deadline = flightrec::current_deadline_ns();
        if ctx_deadline != 0
            && trace::now_ns().saturating_add(self.policy.deadline_exact_headroom_ns)
                >= ctx_deadline
        {
            return Some(DegradeReason::Deadline);
        }
        None
    }

    /// The graceful-degradation ladder (DESIGN.md §5f), monotone by
    /// construction: exact Opt-EdgeCut → retained-memo myopic cut → static
    /// show-all-children cut. Each rung either answers with a valid,
    /// [`ActiveTree`](crate::active::ActiveTree)-validated EdgeCut or
    /// falls to the next; only a failure no rung can fix (hidden node,
    /// singleton component) surfaces as an error.
    fn ladder_expand(
        &self,
        session: &mut Session<SharedTree>,
        cuts: &CutCache,
        node: NavNodeId,
        t0: u64,
    ) -> Result<(Vec<NavNodeId>, Option<DegradeReason>), EdgeCutError> {
        match self.choose_degrade(session, node, t0) {
            None => session.expand_cached(node, cuts).map(|r| (r, None)),
            Some(reason) => {
                let _sp = trace::span(Stage::Degraded);
                // Near-exhausted deadline budget: even the myopic rung is a
                // risk, so jump straight to the constant-time static cut.
                let ctx_deadline = flightrec::current_deadline_ns();
                if ctx_deadline != 0
                    && trace::now_ns().saturating_add(self.policy.deadline_static_headroom_ns)
                        >= ctx_deadline
                {
                    let revealed = session.expand_static(node)?;
                    // Relaxed: telemetry tally, nothing ordered through it.
                    self.degraded_static.fetch_add(1, Ordering::Relaxed);
                    flightrec::note_rung(flightrec::RUNG_STATIC);
                    return Ok((revealed, Some(reason)));
                }
                match session.expand_degraded_memo(node) {
                    Some(Ok(revealed)) => {
                        // Relaxed: telemetry tally, nothing ordered through it.
                        self.degraded_myopic.fetch_add(1, Ordering::Relaxed);
                        flightrec::note_rung(flightrec::RUNG_MYOPIC);
                        Ok((revealed, Some(reason)))
                    }
                    Some(Err(EdgeCutError::NotAComponentRoot(n))) => {
                        // No rung can expand a hidden node.
                        Err(EdgeCutError::NotAComponentRoot(n))
                    }
                    // No retained plan (or the memo cut no longer applies):
                    // drop to the static rung.
                    None | Some(Err(_)) => {
                        let revealed = session.expand_static(node)?;
                        // Relaxed: telemetry tally, nothing ordered through it.
                        self.degraded_static.fetch_add(1, Ordering::Relaxed);
                        flightrec::note_rung(flightrec::RUNG_STATIC);
                        Ok((revealed, Some(reason)))
                    }
                }
            }
        }
    }

    /// One gated, panic-isolated EXPAND over an already-resolved session
    /// slot. Returns the engine-level outcome; the inner `Result` is the
    /// navigation-level cut outcome plus the operation's wall time
    /// (recorded in the latency histogram for both cut outcomes, matching
    /// the pre-taxonomy telemetry).
    #[allow(clippy::type_complexity)]
    fn expand_on_slot(
        &self,
        id: SessionId,
        slot: &Arc<Mutex<Session<SharedTree>>>,
        cuts: &CutCache,
        node: NavNodeId,
    ) -> Result<(Result<ExpandReply, EdgeCutError>, u64), EngineError> {
        let _gate = self.admit_expand()?;
        let t0 = trace::now_ns();
        let isolated = fault::isolate(|| {
            // Failpoint: session-lock acquisition (DESIGN.md §5f).
            if let Some(f) = fault::hit(FailSite::SessionLock) {
                match f {
                    Fault::Panic => fault::injected_panic(FailSite::SessionLock),
                    _ => return Err(EngineError::SessionBusy(id)),
                }
            }
            let mut session = {
                let _lk = trace::span(Stage::LockWait);
                slot.lock()
            };
            // lint: allow(lock-across-solve) — per-session lock: one
            // navigator per session by protocol; sessions never contend
            Ok(self.ladder_expand(&mut session, cuts, node, t0))
        });
        let ns = trace::now_ns().saturating_sub(t0);
        match isolated {
            Ok(Ok(laddered)) => {
                self.expand_hist.record(ns);
                // AIMD step (adaptive admission only): rate-limited by the
                // gate itself, so steady state pays one `due` load here.
                self.adjust_admission(trace::now_ns());
                Ok((
                    laddered.map(|(revealed, degraded)| ExpandReply { revealed, degraded }),
                    ns,
                ))
            }
            Ok(Err(engine_err)) => Err(engine_err),
            Err(message) => {
                // The panic unwound out of the session lock; whatever state
                // it left behind is untrusted. Quarantine (table lock only —
                // the session guard died in the unwind).
                self.quarantine_session(id);
                Err(EngineError::SessionPanicked { id, message })
            }
        }
    }

    /// EXPAND on a parked session: admission-gated, panic-isolated,
    /// degradation-laddered, latency-recorded, consulting the tree's
    /// cross-session [`CutCache`].
    ///
    /// Typed failures: [`EngineError::UnknownSession`] /
    /// [`EngineError::Quarantined`] for bad ids,
    /// [`EngineError::Overloaded`] when shed,
    /// [`EngineError::SessionPanicked`] when this call's panic quarantined
    /// the session, [`EngineError::Cut`] when the navigation refused.
    pub fn expand(&self, id: SessionId, node: NavNodeId) -> Result<ExpandReply, EngineError> {
        let _flight = self.flight_scope(Verb::Expand);
        let _shard = self.fault_scope();
        let cap = trace::capture();
        let out = (|| {
            let _sp = trace::span(Stage::Expand);
            // Expired on arrival? Reject typed before touching the session
            // table or any solver machinery (DESIGN.md §5k).
            self.deadline_reject()?;
            let (slot, cuts) = self.session_and_cuts(id)?;
            let (result, _ns) = self.expand_on_slot(id, &slot, &cuts, node)?;
            result.map_err(EngineError::Cut)
        })();
        drop(cap);
        self.absorb_tape();
        if let Err(e) = &out {
            flightrec::note_error(e.flight_code());
        }
        out
    }

    /// Re-parks a previously exported session over `query`'s tree (the
    /// §VII resume path). Typed refusals: [`EngineError::UnknownQuery`]
    /// when the query has no results, [`EngineError::StateMismatch`] when
    /// the state does not fit the rebuilt navigation tree — the
    /// [`ActiveTree::fits`](crate::active::ActiveTree::fits) connectivity
    /// validation, so stale, corrupt, or foreign state is refused with an
    /// error (never a panic) instead of navigating garbage.
    pub fn restore_session(
        &self,
        query: &str,
        state: SessionState,
    ) -> Result<SessionId, EngineError> {
        let _flight = self.flight_scope(Verb::Open);
        let _shard = self.fault_scope();
        let cap = trace::capture();
        let out: Result<SessionId, EngineError> = (|| {
            let _sp = trace::span(Stage::OpenSession);
            let t0 = trace::now_ns();
            let (tree, cuts, cache_hit) = self.tree_and_cuts_for(query)?;
            flightrec::note_cache(cache_hit);
            let session = Session::restore(tree, self.params.clone(), state)
                .ok_or(EngineError::StateMismatch)?;
            // Relaxed: the id only needs uniqueness, not ordering with the
            // table insert below (the table lock orders that).
            let id = self.next_session.fetch_add(1, Ordering::Relaxed);
            let mut table = {
                let _lk = trace::span(Stage::LockWait);
                self.sessions.lock()
            };
            table.insert(
                id,
                SessionSlot {
                    session: Arc::new(Mutex::new(session)),
                    query: query.to_string(),
                    cuts,
                    poisoned: false,
                },
            );
            drop(table);
            // Relaxed: monotonic telemetry gauges; readers only ever aggregate
            // them, nothing is ordered against the counts.
            self.sessions_opened.fetch_add(1, Ordering::Relaxed);
            self.sessions_active.fetch_add(1, Ordering::Relaxed);
            // Same hit/cold split as `open_session`.
            trace::record(
                if cache_hit {
                    Stage::OpenSessionHit
                } else {
                    Stage::OpenSessionCold
                },
                trace::now_ns().saturating_sub(t0),
            );
            Ok(SessionId(id))
        })();
        drop(cap);
        self.absorb_tape();
        if let Err(e) = &out {
            flightrec::note_error(e.flight_code());
        }
        out
    }

    /// The raw query a parked session was opened with. `None` for unknown
    /// ids.
    pub fn session_query(&self, id: SessionId) -> Option<String> {
        self.sessions.lock().get(&id.0).map(|s| s.query.clone())
    }

    /// Closes a session, returning its exported state (for persistence).
    /// [`EngineError::UnknownSession`] for unknown ids. Quarantined
    /// sessions are *drainable*: closing one succeeds, exports whatever
    /// state the session held before its panic, and releases the
    /// quarantine gauge.
    pub fn close_session(&self, id: SessionId) -> Result<SessionState, EngineError> {
        let _flight = self.flight_scope(Verb::Close);
        let _shard = self.fault_scope();
        let slot = match self.sessions.lock().remove(&id.0) {
            Some(slot) => slot,
            None => {
                let e = EngineError::UnknownSession(id);
                flightrec::note_error(e.flight_code());
                return Err(e);
            }
        };
        // Relaxed: gauge updates; the table lock above already ordered the
        // removal, and the counters are telemetry-only.
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
        self.sessions_active.fetch_sub(1, Ordering::Relaxed);
        if slot.poisoned {
            // Relaxed: quarantine gauge release; same telemetry contract.
            self.sessions_quarantined.fetch_sub(1, Ordering::Relaxed);
        }
        let session = slot.session.lock();
        Ok(session.export_state())
    }

    /// Replays one navigation script in a fresh session over `query`,
    /// recording per-EXPAND latency, and closes the session. Each EXPAND
    /// goes through the full serving path (admission gate, panic
    /// isolation, degradation ladder) — [`ScriptOutcome::degraded_expands`]
    /// counts the ladder answers. Typed failures propagate as
    /// [`EngineError`]; the fresh session is drained before any error
    /// surfaces, so a failing script never leaks a parked session.
    pub fn run_script(
        &self,
        query: &str,
        script: &[ScriptOp],
    ) -> Result<ScriptOutcome, EngineError> {
        let _flight = self.flight_scope(Verb::Script);
        let _shard = self.fault_scope();
        let cap = trace::capture();
        let out = (|| {
            let _sp = trace::span(Stage::RunScript);
            let id = self.open_session(query)?;
            let finished = self.run_ops(id, query, script);
            if finished.is_err() {
                // Drain on failure — works even when the error quarantined
                // the session (close still exports its pre-panic state).
                // The close outcome is secondary to the error in flight.
                let _ = self.close_session(id);
            }
            finished
        })();
        drop(cap);
        self.absorb_tape();
        if let Err(e) = &out {
            flightrec::note_error(e.flight_code());
        }
        out
    }

    /// The script interpreter behind [`Engine::run_script`], separated so
    /// the caller can drain the session on any error path.
    fn run_ops(
        &self,
        id: SessionId,
        query: &str,
        script: &[ScriptOp],
    ) -> Result<ScriptOutcome, EngineError> {
        // Resolve the slot once: script replay EXPANDs go through the
        // tree's cross-session cut memo without re-locking the session
        // table per operation.
        let (session, cuts) = self.session_and_cuts(id)?;
        let mut expand_ns = Vec::new();
        let mut degraded_expands = 0u32;
        let drive = |node: NavNodeId,
                     expand_ns: &mut Vec<u64>,
                     degraded_expands: &mut u32|
         -> Result<(), EngineError> {
            let _esp = trace::span(Stage::Expand);
            let (result, ns) = self.expand_on_slot(id, &session, &cuts, node)?;
            expand_ns.push(ns);
            // Cut refusals are ignored, matching the seed's replay
            // semantics (scripts may over-expand); engine errors propagate.
            if let Ok(reply) = result {
                if reply.degraded.is_some() {
                    *degraded_expands += 1;
                }
            }
            Ok(())
        };
        for op in script {
            match op {
                ScriptOp::Expand(node) => {
                    drive(*node, &mut expand_ns, &mut degraded_expands)?;
                }
                ScriptOp::ExpandFully => loop {
                    let next = {
                        let s = session.lock();
                        let found = s
                            .nav()
                            .iter_preorder()
                            .find(|&n| s.active().is_visible(n) && s.component_size(n) > 1);
                        found
                    };
                    let Some(node) = next else { break };
                    drive(node, &mut expand_ns, &mut degraded_expands)?;
                },
                ScriptOp::ShowResults(node) => {
                    let _ = self
                        .with_session(id, |s| s.show_results(*node))
                        .ok_or(EngineError::UnknownSession(id))?;
                }
                ScriptOp::Ignore(node) => {
                    self.with_session(id, |s| s.ignore(*node))
                        .ok_or(EngineError::UnknownSession(id))?;
                }
                ScriptOp::Backtrack => {
                    let _ = self
                        .with_session(id, |s| s.backtrack())
                        .ok_or(EngineError::UnknownSession(id))?;
                }
            }
        }
        let cost = self
            .with_session(id, |s| s.cost().clone())
            .ok_or(EngineError::UnknownSession(id))?;
        self.close_session(id)?;
        Ok(ScriptOutcome {
            query: query.to_string(),
            cost,
            expand_ns,
            degraded_expands,
        })
    }

    /// The batch driver: replays `jobs` (query, script) pairs on `workers`
    /// pooled threads, preserving job order in the result. Sessions are
    /// independent; trees are shared through the cache. A job whose worker
    /// task panicked outside the engine's own isolation comes back as
    /// [`EngineError::WorkerPanicked`] in its own slot — one bad job never
    /// aborts the batch (DESIGN.md §5f).
    pub fn replay(
        &self,
        jobs: &[(String, Vec<ScriptOp>)],
        workers: usize,
    ) -> Vec<Result<ScriptOutcome, EngineError>> {
        // The Replay span lives on the calling thread; each `run_script`
        // call opens its own capture on whichever worker thread runs it,
        // so worker-side spans drain into the stage metrics worker-side.
        // Likewise each worker-side script mints its own request id — this
        // scope records the batch dispatch itself.
        let _flight = self.flight_scope(Verb::Replay);
        let cap = trace::capture();
        let out = {
            let _sp = trace::span(Stage::Replay);
            pool::scoped_map(jobs.len(), workers, |i| {
                let (query, script) = &jobs[i];
                self.run_script(query, script)
            })
        };
        drop(cap);
        self.absorb_tape();
        out.into_iter()
            .map(|slot| match slot {
                Ok(job_result) => job_result,
                Err(p) => Err(EngineError::WorkerPanicked {
                    task: p.task,
                    message: p.message,
                }),
            })
            .collect()
    }

    /// Snapshot of the serving telemetry. Never contends with serving: the
    /// latency percentiles come from a merged histogram snapshot, and the
    /// live-session gauge is an atomic — the session table's lock is not
    /// taken.
    pub fn stats(&self) -> ServeStats {
        let (hits, misses, evictions, entries, capacity, cut_hits, cut_misses) = {
            let cache = self.cache.lock();
            let (cut_hits, cut_misses) = cache.entries.values().fold((0u64, 0u64), |(h, m), e| {
                (h + e.cuts.hits(), m + e.cuts.misses())
            });
            (
                cache.hits,
                cache.misses,
                cache.evictions,
                cache.entries.len(),
                cache.capacity,
                cut_hits,
                cut_misses,
            )
        };
        let snap = self.expand_hist.snapshot();
        let pct = |q: f64| -> f64 { snap.percentile(q) as f64 / 1_000.0 };
        // SLO burn rows derive from the same snapshots the percentiles use:
        // Open over the OpenSession stage histogram, Expand over the EXPAND
        // latency histogram (SLOS order, total then recent per verb).
        let slo_now = trace::now_ns();
        let mut slo_burn = Vec::with_capacity(SloVerb::COUNT * 2);
        slo_burn.extend(self.slo.burns(
            SloVerb::Open,
            &self.stage.snapshot(Stage::OpenSession),
            slo_now,
        ));
        slo_burn.extend(self.slo.burns(SloVerb::Expand, &snap, slo_now));
        // Relaxed: a stats snapshot tolerates torn reads across gauges;
        // each load is individually coherent and that is all we report.
        let opened = self.sessions_opened.load(Ordering::Relaxed);
        let closed = self.sessions_closed.load(Ordering::Relaxed);
        // Relaxed: the window start is telemetry; a racing reset only skews
        // one snapshot's elapsed figure.
        let elapsed =
            trace::now_ns().saturating_sub(self.started_ns.load(Ordering::Relaxed)) as f64 / 1e9;
        let lookups = hits + misses;
        ServeStats {
            cache_hits: hits,
            cache_misses: misses,
            cache_evictions: evictions,
            cache_entries: entries,
            cache_capacity: capacity,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            cut_cache_hits: cut_hits,
            cut_cache_misses: cut_misses,
            sessions_opened: opened,
            sessions_closed: closed,
            // Relaxed: same snapshot semantics as the loads above.
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            // Relaxed: fault-plane tallies; same per-counter coherence.
            sessions_quarantined: self.sessions_quarantined.load(Ordering::Relaxed),
            // Relaxed: ditto — monotone panic tally, no cross-counter order.
            session_panics: self.session_panics.load(Ordering::Relaxed),
            // Relaxed: the total is a sum of two independent tallies; a
            // snapshot racing an increment is off by at most the in-flight op.
            degraded_expands: self.degraded_myopic.load(Ordering::Relaxed)
                + self.degraded_static.load(Ordering::Relaxed),
            // Relaxed: per-rung tallies, same snapshot semantics.
            degraded_myopic: self.degraded_myopic.load(Ordering::Relaxed),
            degraded_static: self.degraded_static.load(Ordering::Relaxed),
            // Relaxed: admission-shed tally, same snapshot semantics.
            shed_expands: self.shed_expands.load(Ordering::Relaxed),
            // Relaxed: deadline-reject tally, same snapshot semantics.
            deadline_rejects: self.deadline_rejects.load(Ordering::Relaxed),
            // Breakers live in the sharded tier; the sharded stats merge
            // overwrites these from its per-shard breakers.
            breaker_rejects: 0,
            admission_limit: self.admission.limit() as u64,
            breaker_state: 0,
            expand_count: snap.total() as usize,
            expand_p50_us: pct(0.50),
            expand_p95_us: pct(0.95),
            expand_p99_us: pct(0.99),
            elapsed_secs: elapsed,
            sessions_per_sec: if elapsed > 0.0 {
                closed as f64 / elapsed
            } else {
                0.0
            },
            slo_burn,
            stages: self.stage.stats(),
            trace_events: trace::ring_pushed(),
        }
    }

    /// Render the engine's full telemetry as a Prometheus text-format
    /// exposition (see [`trace::export::prometheus_text`]).
    pub fn prometheus_text(&self) -> String {
        trace::export::prometheus_text(&self.stats(), &self.expand_hist.snapshot(), &self.stage)
    }

    /// One labeled exposition view over this engine's telemetry, for
    /// multi-engine expositions (see
    /// [`trace::export::prometheus_text_views`]); `labels` is the brace-
    /// free label body every series will carry (e.g. `shard="0"`).
    pub fn metrics_view(&self, labels: String) -> trace::export::MetricsView {
        trace::export::MetricsView::new(
            labels,
            self.stats(),
            self.expand_hist.snapshot(),
            &self.stage,
        )
    }

    /// Lock-free health signals for routing decisions: relaxed atomic loads
    /// only, **no** cache or session-table lock. The full [`Engine::stats`]
    /// snapshot takes the cache lock for the cut-cache tallies, which a
    /// router deciding where to place a cold open must never wait on — the
    /// `no-cross-shard-lock` xtask rule polices exactly that path.
    pub fn health(&self) -> HealthCounters {
        HealthCounters {
            // Relaxed: independent monotone tallies / gauges; a routing
            // decision tolerates each being off by the in-flight operation.
            degraded_expands: self.degraded_myopic.load(Ordering::Relaxed)
                + self.degraded_static.load(Ordering::Relaxed),
            shed_expands: self.shed_expands.load(Ordering::Relaxed),
            // Relaxed: same independent-tally contract as the loads above.
            session_panics: self.session_panics.load(Ordering::Relaxed),
            sessions_quarantined: self.sessions_quarantined.load(Ordering::Relaxed),
            deadline_rejects: self.deadline_rejects.load(Ordering::Relaxed),
        }
    }

    /// Resets the telemetry window in one pass: the EXPAND latency
    /// histogram, every per-stage histogram and sum, the cache hit/miss/
    /// eviction counters, opened/closed tallies, the global trace ring's
    /// events (its monotone push counter survives, see
    /// [`ServeStats::trace_events`]), and the wall clock all restart from
    /// zero. Cached trees and parked sessions are untouched (the
    /// live-session gauge keeps counting them). For long-running REPL or
    /// daemon processes that want per-window serving stats.
    pub fn reset_stats(&self) {
        self.expand_hist.reset();
        self.stage.reset();
        trace::clear_ring();
        {
            let mut cache = self.cache.lock();
            cache.reset_counters();
            for entry in cache.entries.values_mut() {
                entry.cuts.reset_counters();
            }
        }
        // Relaxed: the reset races in-flight sessions by design (documented
        // on the method); per-counter coherence is all that is needed.
        self.sessions_opened.store(0, Ordering::Relaxed);
        self.sessions_closed.store(0, Ordering::Relaxed);
        // Relaxed: fault-plane window counters restart with the window. The
        // quarantine *gauge* is deliberately NOT reset — it tracks parked
        // poisoned sessions still in the table, like the live-session gauge.
        self.session_panics.store(0, Ordering::Relaxed);
        self.degraded_myopic.store(0, Ordering::Relaxed);
        // Relaxed: same window-restart semantics as the stores above.
        self.degraded_static.store(0, Ordering::Relaxed);
        self.shed_expands.store(0, Ordering::Relaxed);
        self.deadline_rejects.store(0, Ordering::Relaxed);
        // The admission *limit* is controller state and survives the reset
        // (like cached trees); only its latency window restarts.
        self.admission.reset_window();
        // The SLO baselines reference the histograms reset above; the
        // flight recorder starts a fresh window and re-arms its
        // dump-once-per-reason latches.
        self.slo.reset();
        flightrec::reset_flight();
        // Relaxed: window-start stamp, telemetry-only (see stats()).
        self.started_ns.store(trace::now_ns(), Ordering::Relaxed);
    }
}

// Compile-time thread-safety assertions (see module docs). These are the
// guarantees the serving layer rests on; if a future change reintroduces
// `Rc`, `Cell`, or a raw pointer anywhere in the navigation stack, the
// crate stops compiling right here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<NavigationTree>();
    assert_send_sync::<crate::edgecut::heuristic::ReducedPlan>();
    assert_send_sync::<crate::active::ActiveTree>();
    assert_send_sync::<SessionState>();
    assert_send_sync::<Session<SharedTree>>();
    assert_send::<Session<&'static NavigationTree>>();
    assert_send_sync::<ServeStats>();
    assert_send_sync::<LatencyHistogram>();
    assert_send_sync::<CutCache>();
    assert_send_sync::<StageMetrics>();
    assert_send_sync::<crate::trace::SpanRing>();
    assert_send_sync::<SloState>();
    assert_send_sync::<crate::trace::flightrec::FlightRing>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use bionav_medline::corpus::{self, CorpusConfig};
    use bionav_medline::InvertedIndex;
    use bionav_mesh::synth::{self, sanitizer_scaled, SynthConfig};

    /// A tiny three-query serving fixture: one hierarchy/corpus, trees
    /// built per keyword on demand. Sizes honor `BIONAV_SANITIZER_SCALE`
    /// (see [`bionav_mesh::synth::sanitizer_scale`]) so Miri/TSan CI jobs
    /// stay fast; at the default scale of 1.0 nothing changes.
    fn fixture_engine() -> Engine<impl Fn(&str) -> Option<SharedTree> + Send + Sync> {
        let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
        let store = corpus::generate(
            &h,
            &CorpusConfig {
                n_citations: sanitizer_scaled(400, 64),
                ..CorpusConfig::default()
            },
        );
        let index = InvertedIndex::build(&store);
        Engine::new(
            move |query: &str| {
                let results = index.query(query).citations;
                if results.is_empty() {
                    return None;
                }
                Some(Arc::new(NavigationTree::build(&h, &store, &results)))
            },
            CostParams::default(),
            2,
        )
    }

    #[test]
    fn error_flight_codes_round_trip_to_kind_names() {
        // Drift guard: the flight recorder decodes packed error codes back
        // to names through `flight_kind`; every variant must round-trip.
        let id = SessionId(1);
        let samples = [
            EngineError::UnknownQuery("q".to_string()),
            EngineError::UnknownSession(id),
            EngineError::SessionBusy(id),
            EngineError::Quarantined(id),
            EngineError::Overloaded,
            EngineError::TreeBuildFailed("m".to_string()),
            EngineError::SessionPanicked {
                id,
                message: "m".to_string(),
            },
            EngineError::WorkerPanicked {
                task: 0,
                message: "m".to_string(),
            },
            EngineError::StateMismatch,
            EngineError::Cut(EdgeCutError::NotAComponentRoot(crate::navtree::NavNodeId(
                0,
            ))),
            EngineError::DeadlineExceeded,
            EngineError::BreakerOpen {
                shard: 0,
                retry_after_ns: 1,
            },
        ];
        assert_eq!(samples.len(), EngineError::KIND_NAMES.len());
        for e in &samples {
            assert_eq!(EngineError::flight_kind(e.flight_code()), e.kind_name());
            assert_ne!(e.flight_code(), 0, "0 is reserved for success");
        }
        assert_eq!(EngineError::flight_kind(0), "");
    }

    #[test]
    fn cache_hits_and_lru_eviction() {
        let h = synth::generate(&SynthConfig::small(4, sanitizer_scaled(200, 48))).unwrap();
        let store = corpus::generate(
            &h,
            &CorpusConfig {
                n_citations: sanitizer_scaled(300, 64),
                ..CorpusConfig::default()
            },
        );
        let index = InvertedIndex::build(&store);
        // Three distinct queries with results.
        let labels: Vec<String> = {
            let mut seen = Vec::new();
            for n in h.iter_preorder().skip(1) {
                let label = h.node(n).label().to_string();
                if !index.query(&label).citations.is_empty() && !seen.contains(&label) {
                    seen.push(label);
                }
                if seen.len() == 3 {
                    break;
                }
            }
            seen
        };
        assert_eq!(labels.len(), 3, "fixture needs three result-bearing labels");

        let engine = Engine::new(
            move |query: &str| {
                let results = index.query(query).citations;
                if results.is_empty() {
                    return None;
                }
                Some(Arc::new(NavigationTree::build(&h, &store, &results)))
            },
            CostParams::default(),
            2, // capacity below the number of distinct queries
        );

        // Same tree twice: one miss, one hit; normalization collapses case
        // and whitespace.
        let a1 = engine.tree_for(&labels[0]).unwrap();
        let a2 = engine
            .tree_for(&format!("  {}  ", labels[0].to_uppercase()))
            .unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "normalized queries share one tree");

        // Fill past capacity: labels[1], labels[2] → labels[0] evicted.
        engine.tree_for(&labels[1]).unwrap();
        engine.tree_for(&labels[2]).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.cache_entries, 2);
        assert_eq!(stats.cache_evictions, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 3);
        assert!(stats.cache_hit_rate > 0.0);

        // The evicted tree rebuilds on demand (a fresh Arc).
        let a3 = engine.tree_for(&labels[0]).unwrap();
        assert!(!Arc::ptr_eq(&a1, &a3), "evicted entry was rebuilt");
    }

    #[test]
    fn sessions_park_resume_and_close() {
        let engine = fixture_engine();
        // Find a query with results by probing node labels through the
        // engine itself.
        let query = {
            let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
            h.iter_preorder()
                .skip(1)
                .map(|n| h.node(n).label().to_string())
                .find(|label| engine.tree_for(label).is_some())
                .expect("some label has results")
        };
        let id = engine.open_session(&query).unwrap();
        let reply = engine.expand(id, NavNodeId::ROOT).unwrap();
        assert!(!reply.revealed.is_empty());
        assert_eq!(reply.degraded, None, "clean path must not degrade");
        // The session is parked: resume it and inspect.
        let cost = engine.with_session(id, |s| s.cost().clone()).unwrap();
        assert_eq!(cost.expands, 1);
        let state = engine.close_session(id).unwrap();
        assert_eq!(state.cost.expands, 1);
        // Closed sessions are gone, with a typed refusal.
        assert!(engine.with_session(id, |_| ()).is_none());
        assert!(matches!(
            engine.close_session(id),
            Err(EngineError::UnknownSession(_))
        ));
        let stats = engine.stats();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_closed, 1);
        assert_eq!(stats.sessions_active, 0);
        assert_eq!(stats.expand_count, 1);
        assert_eq!(stats.degraded_expands, 0);
        assert_eq!(stats.shed_expands, 0);
        assert_eq!(stats.session_panics, 0);
        assert_eq!(stats.sessions_quarantined, 0);
    }

    #[test]
    fn concurrent_sessions_over_one_shared_tree_match_sequential() {
        // N sessions expanding the *same* `Arc<NavigationTree>` from N
        // threads must each reach full expansion with exactly the cost a
        // single-threaded session pays — navigation state is per-session,
        // the tree is immutable shared data.
        let engine = fixture_engine();
        let query = {
            let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
            h.iter_preorder()
                .skip(1)
                .map(|n| h.node(n).label().to_string())
                .find(|label| engine.tree_for(label).is_some_and(|t| t.len() > 3))
                .expect("some label has a multi-node tree")
        };
        let tree = engine.tree_for(&query).unwrap();

        let expand_fully = |tree: SharedTree| -> crate::sim::NavOutcome {
            let mut s = Session::new(tree, CostParams::default());
            loop {
                let next = s
                    .nav()
                    .iter_preorder()
                    .find(|&n| s.active().is_visible(n) && s.component_size(n) > 1);
                let Some(node) = next else { break };
                s.expand(node).unwrap();
            }
            let full: Vec<_> = s.nav().iter_preorder().collect();
            for n in full {
                assert!(s.active().is_visible(n), "full expansion reveals all");
            }
            s.cost().clone()
        };

        let sequential = expand_fully(Arc::clone(&tree));
        let concurrent: Vec<crate::sim::NavOutcome> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let tree = Arc::clone(&tree);
                    scope.spawn(move || expand_fully(tree))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for outcome in &concurrent {
            assert_eq!(outcome, &sequential, "threaded costs equal single-threaded");
        }
    }

    #[test]
    fn replay_is_deterministic_across_worker_counts() {
        let engine = fixture_engine();
        let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
        let jobs: Vec<(String, Vec<ScriptOp>)> = h
            .iter_preorder()
            .skip(1)
            .map(|n| h.node(n).label().to_string())
            .filter(|label| engine.tree_for(label).is_some())
            .take(6)
            .map(|label| (label, vec![ScriptOp::ExpandFully]))
            .collect();
        assert!(jobs.len() >= 2, "fixture needs a few result-bearing labels");

        let single: Vec<_> = engine.replay(&jobs, 1);
        let pooled: Vec<_> = engine.replay(&jobs, 4);
        assert_eq!(single.len(), pooled.len());
        for (a, b) in single.iter().zip(&pooled) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.query, b.query);
            assert_eq!(
                a.cost, b.cost,
                "{}: worker count changed the outcome",
                a.query
            );
            assert_eq!(a.expand_ns.len(), b.expand_ns.len());
        }
    }

    #[test]
    fn reset_stats_clears_the_telemetry_window() {
        let engine = fixture_engine();
        let query = {
            let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
            h.iter_preorder()
                .skip(1)
                .map(|n| h.node(n).label().to_string())
                .find(|label| engine.tree_for(label).is_some())
                .expect("some label has results")
        };
        let id = engine.open_session(&query).unwrap();
        engine.expand(id, NavNodeId::ROOT).unwrap();
        let before = engine.stats();
        assert_eq!(before.expand_count, 1);
        assert_eq!(before.sessions_active, 1);
        assert!(before.cache_hits + before.cache_misses > 0);

        engine.reset_stats();
        let after = engine.stats();
        assert_eq!(after.expand_count, 0);
        assert_eq!(after.expand_p50_us, 0.0);
        assert_eq!(after.expand_p99_us, 0.0);
        assert_eq!(after.cache_hits + after.cache_misses, 0);
        assert_eq!(after.sessions_opened, 0);
        assert_eq!(after.sessions_closed, 0);
        assert_eq!(
            after.sessions_active, 1,
            "live sessions survive a stats reset"
        );
        assert!(
            after.cache_entries >= 1,
            "cached trees survive a stats reset"
        );

        // The engine keeps serving and re-accumulating after the reset
        // (a Cut refusal on the re-expanded root still counts a serve).
        let _ = engine.expand(id, NavNodeId::ROOT);
        assert_eq!(engine.stats().expand_count, 1);
        engine.close_session(id).unwrap();
        assert_eq!(engine.stats().sessions_active, 0);
        assert_eq!(engine.stats().sessions_closed, 1);
    }

    #[test]
    fn cut_cache_serves_repeat_components_without_solving() {
        use crate::edgecut::counters;
        let engine = fixture_engine();
        let query = {
            let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
            h.iter_preorder()
                .skip(1)
                .map(|n| h.node(n).label().to_string())
                .find(|label| engine.tree_for(label).is_some_and(|t| t.len() > 3))
                .expect("some label has a multi-node tree")
        };

        // The first session over the tree computes the root cut fresh:
        // exactly one partitioning pipeline run.
        let a = engine.open_session(&query).unwrap();
        counters::reset();
        let first = engine.expand(a, NavNodeId::ROOT).unwrap().revealed;
        assert_eq!(
            counters::partition_runs(),
            1,
            "fresh expand partitions once"
        );
        engine.close_session(a).unwrap();

        // A later session over the same tree replays the identical
        // component from the cross-session cut memo: zero partitionings,
        // zero solves, bit-identical reveal.
        let b = engine.open_session(&query).unwrap();
        counters::reset();
        let second = engine.expand(b, NavNodeId::ROOT).unwrap().revealed;
        assert_eq!(
            counters::partition_runs(),
            0,
            "repeat component re-partitioned"
        );
        assert_eq!(counters::plan_solves(), 0, "repeat component re-solved");
        assert_eq!(second, first, "memoized cut diverged from the fresh cut");
        engine.close_session(b).unwrap();

        let stats = engine.stats();
        assert!(stats.cut_cache_hits >= 1, "hit went unrecorded");
        assert!(stats.cut_cache_misses >= 1, "first expand must miss");

        // reset_stats zeroes the memo's counters but keeps its entries, so
        // serving stays warm across a telemetry window reset.
        engine.reset_stats();
        let stats = engine.stats();
        assert_eq!(stats.cut_cache_hits, 0);
        assert_eq!(stats.cut_cache_misses, 0);
        let c = engine.open_session(&query).unwrap();
        counters::reset();
        engine.expand(c, NavNodeId::ROOT).unwrap();
        assert_eq!(counters::partition_runs(), 0, "memo entries survive reset");
        assert!(engine.stats().cut_cache_hits >= 1);
        engine.close_session(c).unwrap();
    }

    #[test]
    fn unknown_queries_are_refused() {
        let engine = fixture_engine();
        assert!(engine.tree_for("zzz-no-such-term-zzz").is_none());
        assert!(matches!(
            engine.open_session("zzz-no-such-term-zzz"),
            Err(EngineError::UnknownQuery(_))
        ));
        assert!(matches!(
            engine.run_script("zzz-no-such-term-zzz", &[ScriptOp::ExpandFully]),
            Err(EngineError::UnknownQuery(_))
        ));
    }

    /// Finds a result-bearing query on `engine` (fixture helper for the
    /// fault-plane tests below).
    fn fixture_query(engine: &Engine<impl Fn(&str) -> Option<SharedTree> + Send + Sync>) -> String {
        let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
        h.iter_preorder()
            .skip(1)
            .map(|n| h.node(n).label().to_string())
            .find(|label| engine.tree_for(label).is_some_and(|t| t.len() > 3))
            .expect("some label has a multi-node tree")
    }

    #[test]
    fn admission_gate_sheds_past_the_inflight_limit() {
        let engine = fixture_engine().with_policy(DegradePolicy {
            max_inflight_expands: 2,
            ..DegradePolicy::default()
        });
        // Exercise the gate mechanics directly: two slots admit, the third
        // sheds, and dropping a guard frees its slot.
        let g1 = engine.admit_expand().unwrap();
        let _g2 = engine.admit_expand().unwrap();
        assert!(matches!(
            engine.admit_expand(),
            Err(EngineError::Overloaded)
        ));
        assert_eq!(engine.stats().shed_expands, 1);
        drop(g1);
        let _g3 = engine.admit_expand().unwrap();
        assert_eq!(engine.stats().shed_expands, 1, "freed slot admits again");
    }

    #[test]
    fn expired_deadline_is_rejected_before_any_solver_work() {
        // Regression (ISSUE 10): `RequestCtx.deadline_ns` must be enforced
        // at the door — an already-expired wire request never reaches
        // `Stage::Solve`, and its flight entry shows the typed rejection.
        use crate::edgecut::counters;
        let engine = fixture_engine();
        let query = fixture_query(&engine);
        let id = engine.open_session(&query).unwrap();

        let rid = flightrec::mint_request_id();
        let before = engine.stats().deadline_rejects;
        counters::reset();
        {
            let _scope = flightrec::request_scope(
                flightrec::RequestCtx {
                    request_id: rid,
                    session: None,
                    deadline_ns: 1, // expired long before arrival
                },
                Verb::Expand,
            );
            assert!(matches!(
                engine.expand(id, NavNodeId::ROOT),
                Err(EngineError::DeadlineExceeded)
            ));
        }
        assert_eq!(counters::partition_runs(), 0, "dead request partitioned");
        assert_eq!(counters::plan_solves(), 0, "dead request reached a solver");
        assert_eq!(engine.stats().deadline_rejects, before + 1);

        let entry = flightrec::flight_snapshot()
            .into_iter()
            .find(|e| e.request_id == rid)
            .expect("rejected request still reaches the flight ring");
        assert_eq!(entry.shed_name(), "deadline");
        assert_eq!(entry.error_name(), "deadline_exceeded");
        assert_eq!(entry.stage_us[Stage::Solve as usize], 0, "solver span ran");
        assert_eq!(entry.stage_us[Stage::Partition as usize], 0);

        // The session itself is untouched: once the deadline clears (a
        // fresh scope with none), the same EXPAND serves normally.
        let reply = engine.expand(id, NavNodeId::ROOT).unwrap();
        assert!(!reply.revealed.is_empty());
        assert_eq!(reply.degraded, None);
        engine.close_session(id).unwrap();
    }

    #[test]
    fn near_deadline_requests_skip_straight_to_the_static_rung() {
        // A live-but-tight deadline must not be burned on planning work:
        // with the static headroom spanning the whole remaining budget the
        // ladder answers with the constant-time static cut immediately.
        let engine = fixture_engine().with_policy(DegradePolicy {
            deadline_exact_headroom_ns: 3_600_000_000_000,
            deadline_static_headroom_ns: 3_600_000_000_000,
            ..DegradePolicy::default()
        });
        let query = fixture_query(&engine);
        let id = engine.open_session(&query).unwrap();
        let reply = {
            let _scope = flightrec::request_scope(
                flightrec::RequestCtx {
                    request_id: flightrec::mint_request_id(),
                    session: None,
                    // Far enough out that the door check always passes,
                    // inside both headrooms so the rung choice is
                    // deterministic (no wall-clock race).
                    deadline_ns: trace::now_ns() + 600_000_000_000,
                },
                Verb::Expand,
            );
            engine.expand(id, NavNodeId::ROOT).unwrap()
        };
        assert_eq!(reply.degraded, Some(DegradeReason::Deadline));
        assert!(!reply.revealed.is_empty());
        let stats = engine.stats();
        assert_eq!(stats.degraded_static, 1, "static rung must answer");
        assert_eq!(stats.degraded_myopic, 0, "myopic rung must be skipped");
        assert_eq!(stats.deadline_rejects, 0, "the request was served");
        engine.close_session(id).unwrap();
    }

    #[test]
    fn adaptive_admission_halves_on_a_bad_window_and_creeps_back() {
        use crate::admission::ADJUST_INTERVAL_NS;
        let engine = fixture_engine().with_policy(DegradePolicy {
            adaptive_admission: true,
            max_inflight_expands: 8,
            ..DegradePolicy::default()
        });
        assert_eq!(engine.admission_limit(), 8, "starts at the ceiling");

        // A window entirely over the Expand SLO target halves the limit.
        let target = slo_for(SloVerb::Expand).target_p99_ns;
        for _ in 0..32 {
            engine.expand_hist.record(target * 4);
        }
        let t1 = trace::now_ns().max(ADJUST_INTERVAL_NS);
        engine.adjust_admission(t1);
        assert_eq!(engine.admission_limit(), 4, "multiplicative decrease");

        // A clean window probes back up by one (additive increase).
        for _ in 0..32 {
            engine.expand_hist.record(1_000);
        }
        engine.adjust_admission(t1 + ADJUST_INTERVAL_NS);
        assert_eq!(engine.admission_limit(), 5, "additive increase");

        // Without `adaptive_admission` the limit is pinned to the policy.
        let static_engine = fixture_engine();
        static_engine.adjust_admission(trace::now_ns().max(ADJUST_INTERVAL_NS));
        assert_eq!(
            static_engine.admission_limit(),
            DegradePolicy::default().max_inflight_expands,
            "static gate never moves"
        );
    }

    #[test]
    fn step_budget_degrades_to_a_valid_static_cut() {
        // An absurdly small exact-planner budget forces every EXPAND onto
        // the ladder; with no retained plans the static rung answers.
        let engine = fixture_engine().with_policy(DegradePolicy {
            exact_node_budget: 1,
            ..DegradePolicy::default()
        });
        let query = fixture_query(&engine);
        let id = engine.open_session(&query).unwrap();
        let reply = engine.expand(id, NavNodeId::ROOT).unwrap();
        assert_eq!(reply.degraded, Some(DegradeReason::StepBudget));
        assert!(!reply.revealed.is_empty());
        // The degraded answer is a real expansion: the revealed nodes are
        // visible and the session keeps navigating.
        engine
            .with_session(id, |s| {
                for &n in &reply.revealed {
                    assert!(s.active().is_visible(n));
                }
                assert_eq!(s.cost().expands, 1);
            })
            .unwrap();
        let stats = engine.stats();
        assert_eq!(stats.degraded_expands, 1);
        assert_eq!(stats.degraded_static, 1);
        assert_eq!(stats.degraded_myopic, 0);
        engine.close_session(id).unwrap();
    }

    // NOTE: fault-*arming* engine tests (injected panics, quarantine flow,
    // bit-identical forced cache misses) live in `tests/chaos.rs` — the
    // registry is process-global and the lib test binary runs on parallel
    // threads, so arming here would leak faults into unrelated tests. The
    // policy-driven tests above (gate, step budget) never arm the registry.

    #[test]
    fn serve_stats_json_roundtrip_reports_errors() {
        let engine = fixture_engine();
        let stats = engine.stats();
        // The satellite contract: serialization failures surface as a typed
        // `Err`, never as a silent `"{}"` placeholder.
        let json = stats.to_json().expect("plain stats struct serializes");
        assert!(json.contains("\"degraded_expands\""));
        assert!(json.contains("\"shed_expands\""));
        let back = ServeStats::from_json(&json).expect("roundtrip parses");
        assert_eq!(back.degraded_expands, stats.degraded_expands);
        assert_eq!(back.sessions_quarantined, stats.sessions_quarantined);
    }
}
