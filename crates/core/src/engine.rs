//! # Concurrent query-serving engine (the "system" layer over §VII)
//!
//! The paper describes BioNav as a deployed online system: a keyword query
//! arrives, its navigation tree is constructed once, and the user then
//! navigates interactively. This module turns the reproduction's
//! single-session pipeline into a **multi-session serving engine**:
//!
//! * [`Engine`] holds navigation trees in a capacity-bounded LRU
//!   [`TreeCache`] keyed by *normalized* query text
//!   ([`bionav_medline::normalize_phrase`]) — repeated queries share one
//!   `Arc<NavigationTree>` instead of rebuilding it;
//! * many concurrent [`Session`]s live in a lock-guarded session table,
//!   each independently resumable from any worker thread
//!   (`Session<Arc<NavigationTree>>` is `Send`, enforced at compile time
//!   below);
//! * a batch driver ([`Engine::replay`]) replays navigation scripts from N
//!   pooled worker threads, and [`Engine::stats`] exposes the serving
//!   telemetry (cache hit rate, per-EXPAND latency percentiles,
//!   sessions/sec) the bench harness reports.
//!
//! Thread-safety audit: `NavigationTree`, `ActiveTree` and `SessionState`
//! are plain owned data with no interior mutability; `ReducedPlan` carries
//! its retained solver memo behind a mutex; `Session` retains plans behind
//! `Arc` (not `Rc`) so it is `Send + Sync` whenever its tree handle is.
//! The `const` block at the bottom of this file makes these guarantees
//! compile-time assertions — reintroducing an `Rc` (or a `Cell`) anywhere
//! in the navigation stack fails the build.
//!
//! Telemetry is deliberately off the serving hot path: EXPAND latencies go
//! into a sharded lock-free [`LatencyHistogram`] (fixed memory, no global
//! log vector), and the live-session gauge is an atomic maintained at
//! insert/remove time, so [`Engine::stats`] never touches the session
//! table's lock while workers are serving.

use std::collections::HashMap;
use std::sync::Arc;

// The session table, tree cache, and gauges go through the sync shim so the
// interleave park/resume model explores the production protocol (§5d).
use crate::sync::{AtomicU64, AtomicUsize, Mutex, Ordering};

use crate::telemetry::LatencyHistogram;
use crate::trace::{self, Stage, StageMetrics, StageStat};

use crate::active::EdgeCutError;
use crate::cost::CostParams;
use crate::navtree::{NavNodeId, NavigationTree};
use crate::session::{CutCache, Session, SessionState};
use crate::sim::NavOutcome;

pub mod pool {
    //! A minimal bounded worker pool over `std::thread::scope`.
    //!
    //! Replaces the seed's unbounded one-thread-per-task fan-out: `workers`
    //! OS threads pull task indices from a shared atomic counter until the
    //! range is drained. Results are returned in task order, so callers see
    //! output byte-identical to a sequential map.

    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Maps `f` over `0..tasks` on at most `workers` threads, returning
    /// results in task order. `workers` is clamped to `[1, tasks]`; with a
    /// single worker the map runs inline on the caller's thread.
    pub fn scoped_map<T, F>(tasks: usize, workers: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let workers = workers.clamp(1, tasks);
        if workers == 1 {
            return (0..tasks).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            // Relaxed: the counter only hands out distinct
                            // indices; results flow back via join, which
                            // synchronizes.
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            out.push((i, f(i)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                // lint: allow(no-unwrap) — a panicking worker already poisons
                // the computation; re-raising on the caller is the contract
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        for bucket in buckets {
            for (i, v) in bucket {
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            // lint: allow(no-unwrap) — fetch_add hands each index to exactly
            // one worker, so every slot is filled by construction
            .map(|s| s.expect("every task index is claimed exactly once"))
            .collect()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn preserves_order_and_runs_every_task() {
            for workers in [1, 2, 7, 64] {
                let out = scoped_map(100, workers, |i| i * 3);
                assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
            }
        }

        #[test]
        fn zero_tasks_is_fine() {
            let out: Vec<u32> = scoped_map(0, 8, |_| unreachable!());
            assert!(out.is_empty());
        }
    }
}

/// A navigation tree shared between the cache and any number of sessions.
pub type SharedTree = Arc<NavigationTree>;

/// A parked session's handle paired with its tree's cross-session cut memo.
type SessionAndCuts = (Arc<Mutex<Session<SharedTree>>>, Arc<CutCache>);

/// Handle to a session parked in the engine's session table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(u64);

/// One step of a replayable navigation script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptOp {
    /// EXPAND one visible node.
    Expand(NavNodeId),
    /// EXPAND visible components in pre-order until the tree is fully
    /// expanded (the oracle "drill everywhere" load generator).
    ExpandFully,
    /// SHOWRESULTS on one visible node.
    ShowResults(NavNodeId),
    /// IGNORE a revealed node.
    Ignore(NavNodeId),
    /// BACKTRACK the last expansion.
    Backtrack,
}

/// What one script replay produced.
#[derive(Debug, Clone)]
pub struct ScriptOutcome {
    /// The (raw) query text the script navigated.
    pub query: String,
    /// The session's accumulated §III cost at script end.
    pub cost: NavOutcome,
    /// Wall-clock nanoseconds of every EXPAND the script performed.
    pub expand_ns: Vec<u64>,
}

/// How many distinct components each per-tree [`CutCache`] memoizes before
/// it stops inserting (fixed memory per cached tree).
const CUT_CACHE_CAPACITY: usize = 4096;

/// LRU cache entry: the shared tree plus its cross-session cut memo.
/// Evicting the tree evicts its cuts with it.
struct CacheEntry {
    tree: SharedTree,
    cuts: Arc<CutCache>,
    last_used: u64,
}

/// Capacity-bounded LRU of navigation trees keyed by normalized query text.
struct TreeCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, CacheEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl TreeCache {
    fn new(capacity: usize) -> Self {
        TreeCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Zeroes the hit/miss/eviction counters, keeping the cached trees.
    fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    fn get(&mut self, key: &str) -> Option<(SharedTree, Arc<CutCache>)> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some((Arc::clone(&entry.tree), Arc::clone(&entry.cuts)))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: String, tree: SharedTree) -> Arc<CutCache> {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Evict the least-recently-used entry. O(n) scan — capacities
            // are small (tens to hundreds of hot queries) and eviction only
            // happens on miss-with-full-cache; sessions holding the evicted
            // tree keep their `Arc` alive independently.
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        let cuts = Arc::new(CutCache::new(CUT_CACHE_CAPACITY));
        self.entries.insert(
            key,
            CacheEntry {
                tree,
                cuts: Arc::clone(&cuts),
                last_used: self.tick,
            },
        );
        cuts
    }
}

/// Serving telemetry snapshot; serializes into `BENCH_serve.json`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeStats {
    /// Tree-cache lookups that found their tree.
    pub cache_hits: u64,
    /// Tree-cache lookups that had to build.
    pub cache_misses: u64,
    /// Entries dropped by LRU pressure.
    pub cache_evictions: u64,
    /// Trees currently cached.
    pub cache_entries: usize,
    /// Cache capacity bound.
    pub cache_capacity: usize,
    /// `hits / (hits + misses)`, 0.0 when idle.
    pub cache_hit_rate: f64,
    /// EXPANDs answered from a cross-session [`CutCache`] (summed over the
    /// currently cached trees).
    pub cut_cache_hits: u64,
    /// EXPANDs that fell through to a fresh Heuristic-ReducedOpt solve
    /// (summed over the currently cached trees).
    pub cut_cache_misses: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions closed (state exported or dropped).
    pub sessions_closed: u64,
    /// Sessions currently parked in the table.
    pub sessions_active: usize,
    /// EXPAND operations measured.
    pub expand_count: usize,
    /// Median EXPAND latency, microseconds.
    pub expand_p50_us: f64,
    /// 95th-percentile EXPAND latency, microseconds.
    pub expand_p95_us: f64,
    /// 99th-percentile EXPAND latency, microseconds.
    pub expand_p99_us: f64,
    /// Wall-clock seconds since the engine started.
    pub elapsed_secs: f64,
    /// Closed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Per-stage latency breakdown of the serve path (only stages that
    /// recorded samples in the current window, in [`Stage::ALL`] order).
    pub stages: Vec<StageStat>,
    /// Span events ever pushed to the global trace ring. Monotone across
    /// [`Engine::reset_stats`] (the ring's push counter survives a clear),
    /// so it exports as a proper Prometheus counter.
    pub trace_events: u64,
}

impl ServeStats {
    /// Serialize this snapshot as pretty-printed JSON (the `serve-stats
    /// --json` surface). Serialization of this plain data struct cannot
    /// fail; the empty-object fallback keeps the exporter total.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Parse a snapshot previously produced by [`ServeStats::to_json`].
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// A parked session plus the raw query that opened it and the
/// cross-session cut memo of its tree (resolved once at open time so the
/// EXPAND hot path never touches the tree-cache lock).
struct SessionSlot {
    session: Arc<Mutex<Session<SharedTree>>>,
    query: String,
    cuts: Arc<CutCache>,
}

/// The concurrent query-serving engine. See the module docs.
///
/// `B` builds a navigation tree for a query that misses the cache; it
/// returns `None` for queries with no results. Builders are called outside
/// the session-table lock but inside the cache lock (so concurrent misses
/// on the *same* query build once).
pub struct Engine<B>
where
    B: Fn(&str) -> Option<SharedTree> + Send + Sync,
{
    builder: B,
    params: CostParams,
    cache: Mutex<TreeCache>,
    sessions: Mutex<HashMap<u64, SessionSlot>>,
    next_session: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    /// Live-session gauge, maintained on insert/remove so `stats()` never
    /// takes the session-table lock.
    sessions_active: AtomicUsize,
    /// EXPAND latency histogram: sharded, lock-free, fixed memory no
    /// matter how long the engine lives (the predecessor was an unbounded
    /// `Mutex<Vec<u64>>` every worker contended on).
    expand_hist: LatencyHistogram,
    /// Per-stage latency family (DESIGN.md §5e): one histogram + exact sum
    /// per [`Stage`], fed by the thread-local capture tape drained after
    /// each public engine operation.
    stage: StageMetrics,
    /// Start of the current stats window, as a [`trace::now_ns`] offset
    /// (reset by [`Engine::reset_stats`]).
    started_ns: AtomicU64,
}

impl<B> Engine<B>
where
    B: Fn(&str) -> Option<SharedTree> + Send + Sync,
{
    /// Creates an engine with the given tree builder, session cost
    /// parameters, and tree-cache capacity.
    pub fn new(builder: B, params: CostParams, cache_capacity: usize) -> Self {
        Engine {
            builder,
            params,
            cache: Mutex::new(TreeCache::new(cache_capacity)),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            sessions_active: AtomicUsize::new(0),
            expand_hist: LatencyHistogram::new(),
            stage: StageMetrics::new(),
            started_ns: AtomicU64::new(trace::now_ns()),
        }
    }

    /// Drain the calling thread's capture tape into the per-stage metrics.
    /// Called at the end of every public operation: the tape is exact
    /// (every span, independent of the ring toggle and sampling), so stage
    /// counts stay consistent with `edgecut::counters`.
    fn absorb_tape(&self) {
        for (stage, ns) in trace::take_captured() {
            self.stage.record(stage, ns);
        }
    }

    /// The engine's cache key for a raw query: lowercased, tokenized,
    /// whitespace-collapsed (`bionav_medline::normalize_phrase`), so
    /// `"Prothymosin  Alpha"` and `"prothymosin alpha"` share a tree.
    pub fn cache_key(query: &str) -> String {
        bionav_medline::normalize_phrase(query)
    }

    /// Returns the shared navigation tree for `query`, building and caching
    /// it on a miss. `None` when the builder reports no results.
    pub fn tree_for(&self, query: &str) -> Option<SharedTree> {
        self.tree_and_cuts_for(query).map(|(tree, _)| tree)
    }

    /// The shared tree *and* its cross-session cut memo, building both on a
    /// miss.
    fn tree_and_cuts_for(&self, query: &str) -> Option<(SharedTree, Arc<CutCache>)> {
        let key = Self::cache_key(query);
        let mut cache = {
            let _lk = trace::span(Stage::LockWait);
            self.cache.lock()
        };
        if let Some(hit) = cache.get(&key) {
            return Some(hit);
        }
        let tree = (self.builder)(query)?;
        let cuts = cache.insert(key, Arc::clone(&tree));
        Some((tree, cuts))
    }

    /// Opens a session over `query`'s navigation tree. `None` when the
    /// query has no results.
    pub fn open_session(&self, query: &str) -> Option<SessionId> {
        let cap = trace::capture();
        let out = (|| {
            let _sp = trace::span(Stage::OpenSession);
            let (tree, cuts) = self.tree_and_cuts_for(query)?;
            // Ordering: Relaxed — only id uniqueness matters; the session
            // itself is published by the table lock below.
            let id = self.next_session.fetch_add(1, Ordering::Relaxed);
            let session = Session::new(tree, self.params.clone());
            let mut table = {
                let _lk = trace::span(Stage::LockWait);
                self.sessions.lock()
            };
            table.insert(
                id,
                SessionSlot {
                    session: Arc::new(Mutex::new(session)),
                    query: query.to_string(),
                    cuts,
                },
            );
            drop(table);
            // Relaxed: monotonic telemetry gauges; readers only aggregate them,
            // nothing is ordered against the counts.
            self.sessions_opened.fetch_add(1, Ordering::Relaxed);
            self.sessions_active.fetch_add(1, Ordering::Relaxed);
            Some(SessionId(id))
        })();
        drop(cap);
        self.absorb_tape();
        out
    }

    /// Runs `f` against the parked session `id`. The session-table lock is
    /// held only for the lookup; the per-session lock is held for `f`, so
    /// independent sessions never contend. `None` for unknown ids.
    pub fn with_session<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut Session<SharedTree>) -> R,
    ) -> Option<R> {
        let slot = {
            let table = {
                let _lk = trace::span(Stage::LockWait);
                self.sessions.lock()
            };
            Arc::clone(&table.get(&id.0)?.session)
        };
        let mut session = slot.lock();
        Some(f(&mut session))
    }

    /// The parked session's handle plus its tree's cut memo.
    fn session_and_cuts(&self, id: SessionId) -> Option<SessionAndCuts> {
        let table = {
            let _lk = trace::span(Stage::LockWait);
            self.sessions.lock()
        };
        let slot = table.get(&id.0)?;
        Some((Arc::clone(&slot.session), Arc::clone(&slot.cuts)))
    }

    /// EXPAND on a parked session, recording the operation's latency in the
    /// serving telemetry and consulting the tree's cross-session
    /// [`CutCache`]. `None` for unknown ids.
    pub fn expand(
        &self,
        id: SessionId,
        node: NavNodeId,
    ) -> Option<Result<Vec<NavNodeId>, EdgeCutError>> {
        let cap = trace::capture();
        let out = (|| {
            let _sp = trace::span(Stage::Expand);
            let (slot, cuts) = self.session_and_cuts(id)?;
            let mut session = {
                let _lk = trace::span(Stage::LockWait);
                slot.lock()
            };
            let start = trace::now_ns();
            // lint: allow(lock-across-solve) — per-session lock: one navigator
            // per session by protocol; independent sessions never contend
            let result = session.expand_cached(node, &cuts);
            let ns = trace::now_ns().saturating_sub(start);
            self.expand_hist.record(ns);
            Some(result)
        })();
        drop(cap);
        self.absorb_tape();
        out
    }

    /// Re-parks a previously exported session over `query`'s tree (the
    /// §VII resume path). `None` when the query has no results *or* the
    /// state does not fit the rebuilt navigation tree — the
    /// [`ActiveTree::fits`](crate::active::ActiveTree::fits) connectivity
    /// validation, so stale or foreign state is refused instead of
    /// navigating garbage.
    pub fn restore_session(&self, query: &str, state: SessionState) -> Option<SessionId> {
        let cap = trace::capture();
        let out = (|| {
            let _sp = trace::span(Stage::OpenSession);
            let (tree, cuts) = self.tree_and_cuts_for(query)?;
            let session = Session::restore(tree, self.params.clone(), state)?;
            // Relaxed: the id only needs uniqueness, not ordering with the
            // table insert below (the table lock orders that).
            let id = self.next_session.fetch_add(1, Ordering::Relaxed);
            let mut table = {
                let _lk = trace::span(Stage::LockWait);
                self.sessions.lock()
            };
            table.insert(
                id,
                SessionSlot {
                    session: Arc::new(Mutex::new(session)),
                    query: query.to_string(),
                    cuts,
                },
            );
            drop(table);
            // Relaxed: monotonic telemetry gauges; readers only ever aggregate
            // them, nothing is ordered against the counts.
            self.sessions_opened.fetch_add(1, Ordering::Relaxed);
            self.sessions_active.fetch_add(1, Ordering::Relaxed);
            Some(SessionId(id))
        })();
        drop(cap);
        self.absorb_tape();
        out
    }

    /// The raw query a parked session was opened with. `None` for unknown
    /// ids.
    pub fn session_query(&self, id: SessionId) -> Option<String> {
        self.sessions.lock().get(&id.0).map(|s| s.query.clone())
    }

    /// Closes a session, returning its exported state (for persistence).
    /// `None` for unknown ids.
    pub fn close_session(&self, id: SessionId) -> Option<SessionState> {
        let slot = self.sessions.lock().remove(&id.0)?;
        // Relaxed: gauge updates; the table lock above already ordered the
        // removal, and the counters are telemetry-only.
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
        self.sessions_active.fetch_sub(1, Ordering::Relaxed);
        let session = slot.session.lock();
        Some(session.export_state())
    }

    /// Replays one navigation script in a fresh session over `query`,
    /// recording per-EXPAND latency, and closes the session. `None` when
    /// the query has no results.
    pub fn run_script(&self, query: &str, script: &[ScriptOp]) -> Option<ScriptOutcome> {
        let cap = trace::capture();
        let out = (|| {
            let _sp = trace::span(Stage::RunScript);
            let id = self.open_session(query)?;
            // Resolve the slot once: script replay EXPANDs go through the
            // tree's cross-session cut memo without re-locking the session
            // table per operation.
            let (session, cuts) = self.session_and_cuts(id)?;
            let mut expand_ns = Vec::new();
            for op in script {
                match op {
                    ScriptOp::Expand(node) => {
                        let _esp = trace::span(Stage::Expand);
                        let start = trace::now_ns();
                        // lint: allow(lock-across-solve) — per-session lock, and
                        // the replay driver is this session's only user
                        let _ = session.lock().expand_cached(*node, &cuts);
                        expand_ns.push(trace::now_ns().saturating_sub(start));
                    }
                    ScriptOp::ExpandFully => loop {
                        let next = {
                            let s = session.lock();
                            let found = s
                                .nav()
                                .iter_preorder()
                                .find(|&n| s.active().is_visible(n) && s.component_size(n) > 1);
                            found
                        };
                        let Some(node) = next else { break };
                        let _esp = trace::span(Stage::Expand);
                        let start = trace::now_ns();
                        // lint: allow(lock-across-solve) — per-session lock, and
                        // the replay driver is this session's only user
                        let _ = session.lock().expand_cached(node, &cuts);
                        expand_ns.push(trace::now_ns().saturating_sub(start));
                    },
                    ScriptOp::ShowResults(node) => {
                        let _ = self.with_session(id, |s| s.show_results(*node))?;
                    }
                    ScriptOp::Ignore(node) => {
                        self.with_session(id, |s| s.ignore(*node))?;
                    }
                    ScriptOp::Backtrack => {
                        let _ = self.with_session(id, |s| s.backtrack())?;
                    }
                }
            }
            let cost = self.with_session(id, |s| s.cost().clone())?;
            for &ns in &expand_ns {
                self.expand_hist.record(ns);
            }
            self.close_session(id)?;
            Some(ScriptOutcome {
                query: query.to_string(),
                cost,
                expand_ns,
            })
        })();
        drop(cap);
        self.absorb_tape();
        out
    }

    /// The batch driver: replays `jobs` (query, script) pairs on `workers`
    /// pooled threads, preserving job order in the result. Sessions are
    /// independent; trees are shared through the cache.
    pub fn replay(
        &self,
        jobs: &[(String, Vec<ScriptOp>)],
        workers: usize,
    ) -> Vec<Option<ScriptOutcome>> {
        // The Replay span lives on the calling thread; each `run_script`
        // call opens its own capture on whichever worker thread runs it,
        // so worker-side spans drain into the stage metrics worker-side.
        let cap = trace::capture();
        let out = {
            let _sp = trace::span(Stage::Replay);
            pool::scoped_map(jobs.len(), workers, |i| {
                let (query, script) = &jobs[i];
                self.run_script(query, script)
            })
        };
        drop(cap);
        self.absorb_tape();
        out
    }

    /// Snapshot of the serving telemetry. Never contends with serving: the
    /// latency percentiles come from a merged histogram snapshot, and the
    /// live-session gauge is an atomic — the session table's lock is not
    /// taken.
    pub fn stats(&self) -> ServeStats {
        let (hits, misses, evictions, entries, capacity, cut_hits, cut_misses) = {
            let cache = self.cache.lock();
            let (cut_hits, cut_misses) = cache.entries.values().fold((0u64, 0u64), |(h, m), e| {
                (h + e.cuts.hits(), m + e.cuts.misses())
            });
            (
                cache.hits,
                cache.misses,
                cache.evictions,
                cache.entries.len(),
                cache.capacity,
                cut_hits,
                cut_misses,
            )
        };
        let snap = self.expand_hist.snapshot();
        let pct = |q: f64| -> f64 { snap.percentile(q) as f64 / 1_000.0 };
        // Relaxed: a stats snapshot tolerates torn reads across gauges;
        // each load is individually coherent and that is all we report.
        let opened = self.sessions_opened.load(Ordering::Relaxed);
        let closed = self.sessions_closed.load(Ordering::Relaxed);
        // Relaxed: the window start is telemetry; a racing reset only skews
        // one snapshot's elapsed figure.
        let elapsed =
            trace::now_ns().saturating_sub(self.started_ns.load(Ordering::Relaxed)) as f64 / 1e9;
        let lookups = hits + misses;
        ServeStats {
            cache_hits: hits,
            cache_misses: misses,
            cache_evictions: evictions,
            cache_entries: entries,
            cache_capacity: capacity,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            cut_cache_hits: cut_hits,
            cut_cache_misses: cut_misses,
            sessions_opened: opened,
            sessions_closed: closed,
            // Relaxed: same snapshot semantics as the loads above.
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            expand_count: snap.total() as usize,
            expand_p50_us: pct(0.50),
            expand_p95_us: pct(0.95),
            expand_p99_us: pct(0.99),
            elapsed_secs: elapsed,
            sessions_per_sec: if elapsed > 0.0 {
                closed as f64 / elapsed
            } else {
                0.0
            },
            stages: self.stage.stats(),
            trace_events: trace::ring_pushed(),
        }
    }

    /// Render the engine's full telemetry as a Prometheus text-format
    /// exposition (see [`trace::export::prometheus_text`]).
    pub fn prometheus_text(&self) -> String {
        trace::export::prometheus_text(&self.stats(), &self.expand_hist.snapshot(), &self.stage)
    }

    /// Resets the telemetry window in one pass: the EXPAND latency
    /// histogram, every per-stage histogram and sum, the cache hit/miss/
    /// eviction counters, opened/closed tallies, the global trace ring's
    /// events (its monotone push counter survives, see
    /// [`ServeStats::trace_events`]), and the wall clock all restart from
    /// zero. Cached trees and parked sessions are untouched (the
    /// live-session gauge keeps counting them). For long-running REPL or
    /// daemon processes that want per-window serving stats.
    pub fn reset_stats(&self) {
        self.expand_hist.reset();
        self.stage.reset();
        trace::clear_ring();
        {
            let mut cache = self.cache.lock();
            cache.reset_counters();
            for entry in cache.entries.values_mut() {
                entry.cuts.reset_counters();
            }
        }
        // Relaxed: the reset races in-flight sessions by design (documented
        // on the method); per-counter coherence is all that is needed.
        self.sessions_opened.store(0, Ordering::Relaxed);
        self.sessions_closed.store(0, Ordering::Relaxed);
        // Relaxed: window-start stamp, telemetry-only (see stats()).
        self.started_ns.store(trace::now_ns(), Ordering::Relaxed);
    }
}

// Compile-time thread-safety assertions (see module docs). These are the
// guarantees the serving layer rests on; if a future change reintroduces
// `Rc`, `Cell`, or a raw pointer anywhere in the navigation stack, the
// crate stops compiling right here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<NavigationTree>();
    assert_send_sync::<crate::edgecut::heuristic::ReducedPlan>();
    assert_send_sync::<crate::active::ActiveTree>();
    assert_send_sync::<SessionState>();
    assert_send_sync::<Session<SharedTree>>();
    assert_send::<Session<&'static NavigationTree>>();
    assert_send_sync::<ServeStats>();
    assert_send_sync::<LatencyHistogram>();
    assert_send_sync::<CutCache>();
    assert_send_sync::<StageMetrics>();
    assert_send_sync::<crate::trace::SpanRing>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use bionav_medline::corpus::{self, CorpusConfig};
    use bionav_medline::InvertedIndex;
    use bionav_mesh::synth::{self, sanitizer_scaled, SynthConfig};

    /// A tiny three-query serving fixture: one hierarchy/corpus, trees
    /// built per keyword on demand. Sizes honor `BIONAV_SANITIZER_SCALE`
    /// (see [`bionav_mesh::synth::sanitizer_scale`]) so Miri/TSan CI jobs
    /// stay fast; at the default scale of 1.0 nothing changes.
    fn fixture_engine() -> Engine<impl Fn(&str) -> Option<SharedTree> + Send + Sync> {
        let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
        let store = corpus::generate(
            &h,
            &CorpusConfig {
                n_citations: sanitizer_scaled(400, 64),
                ..CorpusConfig::default()
            },
        );
        let index = InvertedIndex::build(&store);
        Engine::new(
            move |query: &str| {
                let results = index.query(query).citations;
                if results.is_empty() {
                    return None;
                }
                Some(Arc::new(NavigationTree::build(&h, &store, &results)))
            },
            CostParams::default(),
            2,
        )
    }

    #[test]
    fn cache_hits_and_lru_eviction() {
        let h = synth::generate(&SynthConfig::small(4, sanitizer_scaled(200, 48))).unwrap();
        let store = corpus::generate(
            &h,
            &CorpusConfig {
                n_citations: sanitizer_scaled(300, 64),
                ..CorpusConfig::default()
            },
        );
        let index = InvertedIndex::build(&store);
        // Three distinct queries with results.
        let labels: Vec<String> = {
            let mut seen = Vec::new();
            for n in h.iter_preorder().skip(1) {
                let label = h.node(n).label().to_string();
                if !index.query(&label).citations.is_empty() && !seen.contains(&label) {
                    seen.push(label);
                }
                if seen.len() == 3 {
                    break;
                }
            }
            seen
        };
        assert_eq!(labels.len(), 3, "fixture needs three result-bearing labels");

        let engine = Engine::new(
            move |query: &str| {
                let results = index.query(query).citations;
                if results.is_empty() {
                    return None;
                }
                Some(Arc::new(NavigationTree::build(&h, &store, &results)))
            },
            CostParams::default(),
            2, // capacity below the number of distinct queries
        );

        // Same tree twice: one miss, one hit; normalization collapses case
        // and whitespace.
        let a1 = engine.tree_for(&labels[0]).unwrap();
        let a2 = engine
            .tree_for(&format!("  {}  ", labels[0].to_uppercase()))
            .unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "normalized queries share one tree");

        // Fill past capacity: labels[1], labels[2] → labels[0] evicted.
        engine.tree_for(&labels[1]).unwrap();
        engine.tree_for(&labels[2]).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.cache_entries, 2);
        assert_eq!(stats.cache_evictions, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 3);
        assert!(stats.cache_hit_rate > 0.0);

        // The evicted tree rebuilds on demand (a fresh Arc).
        let a3 = engine.tree_for(&labels[0]).unwrap();
        assert!(!Arc::ptr_eq(&a1, &a3), "evicted entry was rebuilt");
    }

    #[test]
    fn sessions_park_resume_and_close() {
        let engine = fixture_engine();
        // Find a query with results by probing node labels through the
        // engine itself.
        let query = {
            let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
            h.iter_preorder()
                .skip(1)
                .map(|n| h.node(n).label().to_string())
                .find(|label| engine.tree_for(label).is_some())
                .expect("some label has results")
        };
        let id = engine.open_session(&query).unwrap();
        let revealed = engine.expand(id, NavNodeId::ROOT).unwrap().unwrap();
        assert!(!revealed.is_empty());
        // The session is parked: resume it and inspect.
        let cost = engine.with_session(id, |s| s.cost().clone()).unwrap();
        assert_eq!(cost.expands, 1);
        let state = engine.close_session(id).unwrap();
        assert_eq!(state.cost.expands, 1);
        // Closed sessions are gone.
        assert!(engine.with_session(id, |_| ()).is_none());
        assert!(engine.close_session(id).is_none());
        let stats = engine.stats();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_closed, 1);
        assert_eq!(stats.sessions_active, 0);
        assert_eq!(stats.expand_count, 1);
    }

    #[test]
    fn concurrent_sessions_over_one_shared_tree_match_sequential() {
        // N sessions expanding the *same* `Arc<NavigationTree>` from N
        // threads must each reach full expansion with exactly the cost a
        // single-threaded session pays — navigation state is per-session,
        // the tree is immutable shared data.
        let engine = fixture_engine();
        let query = {
            let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
            h.iter_preorder()
                .skip(1)
                .map(|n| h.node(n).label().to_string())
                .find(|label| engine.tree_for(label).is_some_and(|t| t.len() > 3))
                .expect("some label has a multi-node tree")
        };
        let tree = engine.tree_for(&query).unwrap();

        let expand_fully = |tree: SharedTree| -> crate::sim::NavOutcome {
            let mut s = Session::new(tree, CostParams::default());
            loop {
                let next = s
                    .nav()
                    .iter_preorder()
                    .find(|&n| s.active().is_visible(n) && s.component_size(n) > 1);
                let Some(node) = next else { break };
                s.expand(node).unwrap();
            }
            let full: Vec<_> = s.nav().iter_preorder().collect();
            for n in full {
                assert!(s.active().is_visible(n), "full expansion reveals all");
            }
            s.cost().clone()
        };

        let sequential = expand_fully(Arc::clone(&tree));
        let concurrent: Vec<crate::sim::NavOutcome> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let tree = Arc::clone(&tree);
                    scope.spawn(move || expand_fully(tree))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for outcome in &concurrent {
            assert_eq!(outcome, &sequential, "threaded costs equal single-threaded");
        }
    }

    #[test]
    fn replay_is_deterministic_across_worker_counts() {
        let engine = fixture_engine();
        let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
        let jobs: Vec<(String, Vec<ScriptOp>)> = h
            .iter_preorder()
            .skip(1)
            .map(|n| h.node(n).label().to_string())
            .filter(|label| engine.tree_for(label).is_some())
            .take(6)
            .map(|label| (label, vec![ScriptOp::ExpandFully]))
            .collect();
        assert!(jobs.len() >= 2, "fixture needs a few result-bearing labels");

        let single: Vec<_> = engine.replay(&jobs, 1);
        let pooled: Vec<_> = engine.replay(&jobs, 4);
        assert_eq!(single.len(), pooled.len());
        for (a, b) in single.iter().zip(&pooled) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.query, b.query);
            assert_eq!(
                a.cost, b.cost,
                "{}: worker count changed the outcome",
                a.query
            );
            assert_eq!(a.expand_ns.len(), b.expand_ns.len());
        }
    }

    #[test]
    fn reset_stats_clears_the_telemetry_window() {
        let engine = fixture_engine();
        let query = {
            let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
            h.iter_preorder()
                .skip(1)
                .map(|n| h.node(n).label().to_string())
                .find(|label| engine.tree_for(label).is_some())
                .expect("some label has results")
        };
        let id = engine.open_session(&query).unwrap();
        engine.expand(id, NavNodeId::ROOT).unwrap().unwrap();
        let before = engine.stats();
        assert_eq!(before.expand_count, 1);
        assert_eq!(before.sessions_active, 1);
        assert!(before.cache_hits + before.cache_misses > 0);

        engine.reset_stats();
        let after = engine.stats();
        assert_eq!(after.expand_count, 0);
        assert_eq!(after.expand_p50_us, 0.0);
        assert_eq!(after.expand_p99_us, 0.0);
        assert_eq!(after.cache_hits + after.cache_misses, 0);
        assert_eq!(after.sessions_opened, 0);
        assert_eq!(after.sessions_closed, 0);
        assert_eq!(
            after.sessions_active, 1,
            "live sessions survive a stats reset"
        );
        assert!(
            after.cache_entries >= 1,
            "cached trees survive a stats reset"
        );

        // The engine keeps serving and re-accumulating after the reset.
        engine.expand(id, NavNodeId::ROOT).unwrap().ok();
        assert_eq!(engine.stats().expand_count, 1);
        engine.close_session(id).unwrap();
        assert_eq!(engine.stats().sessions_active, 0);
        assert_eq!(engine.stats().sessions_closed, 1);
    }

    #[test]
    fn cut_cache_serves_repeat_components_without_solving() {
        use crate::edgecut::counters;
        let engine = fixture_engine();
        let query = {
            let h = synth::generate(&SynthConfig::small(5, sanitizer_scaled(300, 48))).unwrap();
            h.iter_preorder()
                .skip(1)
                .map(|n| h.node(n).label().to_string())
                .find(|label| engine.tree_for(label).is_some_and(|t| t.len() > 3))
                .expect("some label has a multi-node tree")
        };

        // The first session over the tree computes the root cut fresh:
        // exactly one partitioning pipeline run.
        let a = engine.open_session(&query).unwrap();
        counters::reset();
        let first = engine.expand(a, NavNodeId::ROOT).unwrap().unwrap();
        assert_eq!(
            counters::partition_runs(),
            1,
            "fresh expand partitions once"
        );
        engine.close_session(a).unwrap();

        // A later session over the same tree replays the identical
        // component from the cross-session cut memo: zero partitionings,
        // zero solves, bit-identical reveal.
        let b = engine.open_session(&query).unwrap();
        counters::reset();
        let second = engine.expand(b, NavNodeId::ROOT).unwrap().unwrap();
        assert_eq!(
            counters::partition_runs(),
            0,
            "repeat component re-partitioned"
        );
        assert_eq!(counters::plan_solves(), 0, "repeat component re-solved");
        assert_eq!(second, first, "memoized cut diverged from the fresh cut");
        engine.close_session(b).unwrap();

        let stats = engine.stats();
        assert!(stats.cut_cache_hits >= 1, "hit went unrecorded");
        assert!(stats.cut_cache_misses >= 1, "first expand must miss");

        // reset_stats zeroes the memo's counters but keeps its entries, so
        // serving stays warm across a telemetry window reset.
        engine.reset_stats();
        let stats = engine.stats();
        assert_eq!(stats.cut_cache_hits, 0);
        assert_eq!(stats.cut_cache_misses, 0);
        let c = engine.open_session(&query).unwrap();
        counters::reset();
        engine.expand(c, NavNodeId::ROOT).unwrap().unwrap();
        assert_eq!(counters::partition_runs(), 0, "memo entries survive reset");
        assert!(engine.stats().cut_cache_hits >= 1);
        engine.close_session(c).unwrap();
    }

    #[test]
    fn unknown_queries_are_refused() {
        let engine = fixture_engine();
        assert!(engine.tree_for("zzz-no-such-term-zzz").is_none());
        assert!(engine.open_session("zzz-no-such-term-zzz").is_none());
        assert!(engine
            .run_script("zzz-no-such-term-zzz", &[ScriptOp::ExpandFully])
            .is_none());
    }
}
