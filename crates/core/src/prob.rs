//! Estimation of the navigation probabilities (paper §IV).
//!
//! **EXPLORE** (`pE`): the probability the user is interested in a component
//! subtree. For a single concept `n` it is proportional to
//! `|R(n)| / log |LT(n)|` — many attached *query* citations make a concept
//! interesting, while a huge *global* citation count marks it as
//! undiscriminating (the inverse-document-frequency intuition). Weights are
//! normalized by their sum over the whole navigation tree, so the initial
//! component (the entire tree) has `pE = 1`; a component's probability is
//! the (capped) sum of its members'.
//!
//! **EXPAND** (`pX`): the probability the user narrows a component down
//! rather than listing its citations. Pinned to 0 for singletons, 1 above
//! an upper result-count threshold, 0 below a lower one; in between it is
//! the entropy of the citation distribution over the component's nodes,
//! normalized by the duplicate-free uniform maximum `ln |I(n)|` — widely
//! spread citations make drilling down worthwhile.

use crate::cost::CostParams;

/// `pE` of a component: `min(1, Σ w(m) / W)`.
///
/// `component_weight` is the sum of member weights `|R(m)| / ln |LT(m)|`;
/// `total_weight` is the same sum over the whole navigation tree. A tree
/// with no weight at all (empty query result) explores with probability 1 —
/// there is nothing to prefer.
pub fn explore_probability(component_weight: f64, total_weight: f64) -> f64 {
    if total_weight <= 0.0 {
        return 1.0;
    }
    (component_weight / total_weight).clamp(0.0, 1.0)
}

/// `pX` of a component (paper §IV).
///
/// * `distinct` — `|R(C)|`, distinct citations in the component,
/// * `member_distincts` — distinct citations of each member unit (navigation
///   node, or supernode when evaluating a reduced tree),
/// * `underlying_nodes` — `|I(n)|`, navigation-tree nodes the component
///   hides (for a reduced tree this exceeds `member_distincts.len()`).
pub fn expand_probability(
    params: &CostParams,
    distinct: u32,
    member_distincts: &[u32],
    underlying_nodes: u32,
) -> f64 {
    if underlying_nodes <= 1 || distinct == 0 {
        return 0.0; // leaf or singleton I(n): SHOWRESULTS is the only option
    }
    if distinct > params.upper_threshold {
        return 1.0;
    }
    if distinct < params.lower_threshold {
        return 0.0;
    }
    // Entropy of the (duplicate-inflated) citation distribution. The p_m
    // may sum past 1 exactly because citations repeat across members; the
    // normalization by the duplicate-free uniform maximum ln|I(n)| absorbs
    // that, and we clamp for safety.
    let mut entropy = 0.0;
    for &d in member_distincts {
        if d == 0 {
            continue;
        }
        let p = f64::from(d) / f64::from(distinct);
        if p < 1.0 {
            entropy -= p * p.ln();
        }
    }
    let max_entropy = f64::from(underlying_nodes).ln();
    (entropy / max_entropy).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn explore_is_ratio_capped_at_one() {
        assert_eq!(explore_probability(0.5, 2.0), 0.25);
        assert_eq!(explore_probability(3.0, 2.0), 1.0);
        assert_eq!(explore_probability(0.0, 2.0), 0.0);
        assert_eq!(explore_probability(0.7, 0.0), 1.0);
    }

    #[test]
    fn whole_tree_explores_with_probability_one() {
        let w = 1.2345;
        assert_eq!(explore_probability(w, w), 1.0);
    }

    #[test]
    fn singleton_components_never_expand() {
        assert_eq!(expand_probability(&params(), 100, &[100], 1), 0.0);
    }

    #[test]
    fn thresholds_pin_the_probability() {
        let p = params();
        assert_eq!(expand_probability(&p, 51, &[20, 31], 5), 1.0);
        assert_eq!(expand_probability(&p, 9, &[4, 5], 5), 0.0);
    }

    #[test]
    fn mid_range_uses_normalized_entropy() {
        let p = params();
        // 30 distinct citations spread evenly over 3 of 3 nodes: high entropy.
        let spread = expand_probability(&p, 30, &[10, 10, 10], 3);
        // 30 distinct citations all on one node of 3: zero entropy.
        let concentrated = expand_probability(&p, 30, &[30, 0, 0], 3);
        assert!(
            spread > 0.9,
            "even spread should push pX near 1, got {spread}"
        );
        assert_eq!(concentrated, 0.0);
        assert!(spread <= 1.0);
    }

    #[test]
    fn duplicates_inflate_but_clamp_holds() {
        let p = params();
        // Members hold 3×20 distinct citations but the union is only 20:
        // heavy duplication; the clamp keeps pX ≤ 1.
        let v = expand_probability(&p, 20, &[20, 20, 20], 3);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn more_underlying_nodes_lower_the_normalized_entropy() {
        let p = params();
        let few = expand_probability(&p, 30, &[10, 10, 10], 3);
        let many = expand_probability(&p, 30, &[10, 10, 10], 30);
        assert!(many < few);
    }

    #[test]
    fn empty_component_never_expands() {
        assert_eq!(expand_probability(&params(), 0, &[], 10), 0.0);
    }

    #[test]
    fn threshold_boundaries_are_inclusive_midrange() {
        // §IV: pinned to 1 strictly *above* the upper threshold and to 0
        // strictly *below* the lower one; both boundary values fall into
        // the entropy regime.
        let p = params(); // lower 10, upper 50
        let at_upper = expand_probability(&p, 50, &[25, 25], 4);
        let at_lower = expand_probability(&p, 10, &[5, 5], 4);
        assert!(
            at_upper < 1.0 && at_upper > 0.0,
            "50 is mid-range: {at_upper}"
        );
        assert!(
            at_lower < 1.0 && at_lower > 0.0,
            "10 is mid-range: {at_lower}"
        );
        assert_eq!(expand_probability(&p, 51, &[25, 26], 4), 1.0);
        assert_eq!(expand_probability(&p, 9, &[4, 5], 4), 0.0);
    }

    #[test]
    fn two_even_members_over_two_nodes_is_maximal_entropy() {
        // H = -2·(1/2)·ln(1/2) = ln 2; Hmax = ln 2 ⇒ pX = 1 exactly.
        let p = params();
        let v = expand_probability(&p, 20, &[10, 10], 2);
        assert!((v - 1.0).abs() < 1e-12, "{v}");
    }
}
