//! Heuristic-ReducedOpt (paper §VI-B): partition the component into at most
//! `k` supernodes, solve the reduced tree exactly with Opt-EdgeCut, and map
//! the winning cut back onto navigation-tree edges.
//!
//! The reduced tree `R(T̂)` approximates the component `T̂`: each partition
//! becomes one unit whose citation set is the union over its members, whose
//! EXPLORE weight is the member sum, and whose `member_count` keeps the
//! entropy normalization honest. A cut edge of the reduced tree between
//! partitions `(P, Q)` corresponds to the original edge
//! `(parent(root(Q)), root(Q))`, so reduced cuts are always valid cuts of
//! the component.
//!
//! # Single-pass planning
//!
//! A fresh EXPAND runs the pipeline **once**: one [`partition_until_in`]
//! loop, one reduced-problem build, one exact solve — and the solve's memo
//! table is *retained inside the returned* [`ReducedPlan`], so the plan,
//! the outcome and the first [`PlannedCut`] all come from the same pass
//! (see [`plan_component_with`]). The scratch arena
//! ([`crate::scratch::NavScratch`]) supplies node-indexed epoch-stamped
//! membership/partition maps, eliminating the per-call hash maps and
//! `Vec::contains` scans of the original implementation. The historical
//! two-pass pipeline survives only as the [`reference`] module, which the
//! equivalence test-suite replays against this one.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::active::{ActiveTree, EdgeCut};
use crate::bitset::CitSet;
use crate::cost::CostParams;
use crate::edgecut::counters;
use crate::edgecut::opt::{CutProblem, SolveCache};
use crate::edgecut::partition::{partition_until_in, Partition};
use crate::navtree::{NavNodeId, NavigationTree};
use crate::scratch::{NavScratch, NodeMap};
use crate::trace::{self, Stage};

/// What one Heuristic-ReducedOpt invocation produced.
#[derive(Debug, Clone)]
pub struct ExpandOutcome {
    /// The selected EdgeCut (lower roots are navigation-tree nodes).
    pub cut: EdgeCut,
    /// Size of the reduced tree the exact solver ran on (the paper reports
    /// this per EXPAND in Fig 11 as "partitions").
    pub reduced_size: usize,
    /// The solver's expected-cost estimate for the component.
    pub estimated_cost: f64,
    /// Wall-clock time spent (partitioning + exact solve + mapping).
    pub elapsed: Duration,
    /// True when the cost model preferred SHOWRESULTS and the cut is the
    /// reveal-top-partitions fallback (the user explicitly asked to expand,
    /// so *something* must be revealed).
    pub fallback: bool,
}

/// Runs Heuristic-ReducedOpt on the component rooted at `root` of the
/// active tree. Returns `None` when the component is a single node (there
/// is nothing to cut; the interface would not offer `>>>`).
pub fn heuristic_reduced_opt(
    nav: &NavigationTree,
    active: &ActiveTree,
    root: NavNodeId,
    params: &CostParams,
) -> Option<ExpandOutcome> {
    let comp = active.component_nodes(nav, root);
    expand_component(nav, &comp, params)
}

/// A retained reduced tree, enabling the §VI-B reuse: "once Opt-EdgeCut is
/// executed for `R(T̂)`, the costs (and optimal EdgeCuts) for all possible
/// `I(n)`'s are also computed and hence there is no need to call the
/// algorithm again for subsequent expansions."
///
/// A plan describes sub-components of the original reduced tree as unit
/// bitmasks, and it carries the **retained solver memo**: the
/// [`SolveCache`] populated by the initial solve lives inside the plan
/// behind a mutex, and every later [`ReducedPlan::cut`] call resumes from
/// it. Because the dynamic program over `R(T̂)` already visited every
/// connected sub-component mask, a follow-up expansion is a memo lookup
/// plus the cut mapping — no partitioning and no fresh solve, which is
/// exactly the paper's claim above. The mutex keeps the plan `Send +
/// Sync`, so the serving engine can share `Arc<ReducedPlan>`s across
/// workers. When a sub-component shrinks to a single supernode the plan is
/// exhausted and the caller re-partitions fresh.
#[derive(Debug)]
pub struct ReducedPlan {
    problem: CutProblem,
    /// Partition root (navigation node) of each unit.
    unit_roots: Vec<NavNodeId>,
    /// The retained solver memo (§VI-B). Interior-mutable so shared plans
    /// keep learning: any expansion's sub-solves benefit later ones.
    memo: Mutex<SolveCache>,
}

impl Clone for ReducedPlan {
    fn clone(&self) -> Self {
        ReducedPlan {
            problem: self.problem.clone(),
            unit_roots: self.unit_roots.clone(),
            memo: Mutex::new(self.memo.lock().clone()),
        }
    }
}

impl ReducedPlan {
    /// Number of units (partitions) in the retained reduced tree.
    pub fn len(&self) -> usize {
        self.unit_roots.len()
    }

    /// Whether the plan holds a single unit (nothing left to cut).
    pub fn is_empty(&self) -> bool {
        self.unit_roots.len() <= 1
    }

    /// The mask describing the whole retained reduced tree.
    pub fn full_mask(&self) -> u64 {
        self.problem.full_mask()
    }

    /// Number of memoized solver entries currently retained.
    pub fn memo_len(&self) -> usize {
        self.memo.lock().len()
    }

    /// Best cut of the sub-component `mask`, or `None` when it has a single
    /// unit left (the caller should re-partition) or the planner declines.
    ///
    /// Served from the retained memo: after the initial solve this is a
    /// cache lookup, not a recomputation.
    pub fn cut(&self, mask: u64, params: &CostParams) -> Option<PlannedCut> {
        if mask.count_ones() <= 1 {
            return None;
        }
        let _sp = trace::span(Stage::MemoCut);
        // lint: allow(lock-across-solve) — the memo IS the solver's working
        // state; the lock is plan-private, never shared across sessions
        let mut cache = self.memo.lock();
        let mut solver = self.problem.solver_with_cache(&mut cache);
        let lower_units = match params.planner {
            crate::cost::Planner::Exhaustive => solver.best_cut_myopic(mask).map(|(c, _)| c)?,
            crate::cost::Planner::Recursive => solver.best_cut(mask)?,
        };
        drop(cache);
        self.map_cut(mask, lower_units)
    }

    /// [`ReducedPlan::cut`] computed with a throwaway memo, ignoring the
    /// retained cache. Exists so the equivalence test-suite can assert the
    /// retained-memo path returns bit-identical cuts; not used in serving.
    pub fn cut_uncached(&self, mask: u64, params: &CostParams) -> Option<PlannedCut> {
        if mask.count_ones() <= 1 {
            return None;
        }
        let mut solver = self.problem.solver();
        let lower_units = match params.planner {
            crate::cost::Planner::Exhaustive => solver.best_cut_myopic(mask).map(|(c, _)| c)?,
            crate::cost::Planner::Recursive => solver.best_cut(mask)?,
        };
        self.map_cut(mask, lower_units)
    }

    /// Maps reduced-tree lower units back to navigation-tree edges and
    /// component masks.
    fn map_cut(&self, mask: u64, lower_units: Vec<usize>) -> Option<PlannedCut> {
        if lower_units.is_empty() {
            return None;
        }
        let cut = EdgeCut::new(lower_units.iter().map(|&u| self.unit_roots[u]).collect());
        let mut upper_mask = mask;
        let mut lowers = Vec::with_capacity(lower_units.len());
        for &u in &lower_units {
            let sub = self.problem.subtree_mask_of(u) & mask;
            upper_mask &= !sub;
            lowers.push((self.unit_roots[u], sub));
        }
        Some(PlannedCut {
            cut,
            upper_mask,
            lowers,
        })
    }
}

/// A cut answered from a retained [`ReducedPlan`], with the masks of the
/// components it creates (for registering follow-up plan entries).
#[derive(Debug, Clone)]
pub struct PlannedCut {
    /// The EdgeCut to apply to the active tree.
    pub cut: EdgeCut,
    /// The upper component's remaining unit mask.
    pub upper_mask: u64,
    /// `(component root, unit mask)` per lower component.
    pub lowers: Vec<(NavNodeId, u64)>,
}

/// Like [`expand_component`], additionally returning the retained
/// [`ReducedPlan`] and the post-cut masks so callers (sessions with
/// [`CostParams::reuse_plans`]) can answer follow-up expansions without
/// re-partitioning. Allocates a throwaway scratch arena; hot callers use
/// [`plan_component_with`].
pub fn plan_component(
    nav: &NavigationTree,
    comp: &[NavNodeId],
    params: &CostParams,
) -> Option<(ExpandOutcome, Option<(ReducedPlan, PlannedCut)>)> {
    let mut scratch = NavScratch::new();
    plan_component_with(nav, comp, params, &mut scratch)
}

/// The single-pass Heuristic-ReducedOpt pipeline: **one** partitioning
/// loop, **one** reduced-problem build, **one** exact solve — whose memo
/// is retained in the returned plan — and the outcome plus first planned
/// cut derived from that same solve. `scratch` supplies all transient
/// state; a session threads one arena through every expansion.
pub fn plan_component_with(
    nav: &NavigationTree,
    comp: &[NavNodeId],
    params: &CostParams,
    scratch: &mut NavScratch,
) -> Option<(ExpandOutcome, Option<(ReducedPlan, PlannedCut)>)> {
    if comp.len() < 2 {
        return None;
    }
    let started = trace::now_ns();
    let parts = {
        let _sp = trace::span(Stage::Partition);
        partition_until_in(nav, comp, params.max_partitions, scratch)
    };

    if parts.len() == 1 {
        // The whole component fit one partition (tiny component): reveal
        // the component root's children directly.
        return tiny_component_fallback(nav, comp, &mut scratch.map, started)
            .map(|outcome| (outcome, None));
    }

    // Stamp each node's partition id into the scratch map: reduced_parent
    // becomes an O(1) lookup instead of a per-partition `contains` scan.
    let build_sp = trace::span(Stage::ReducedBuild);
    let map = &mut scratch.map;
    map.begin(nav.len());
    for (pid, p) in parts.iter().enumerate() {
        for &m in &p.nodes {
            map.set(m.index(), pid as u32);
        }
    }

    let problem = reduced_problem(nav, &parts, map, params);
    let plan = ReducedPlan {
        problem,
        unit_roots: parts.iter().map(|p| p.root).collect(),
        memo: Mutex::new(SolveCache::new()),
    };
    let full = plan.full_mask();
    drop(build_sp);

    // The one fresh solve; its memo stays in `plan`.
    counters::note_plan_solve();
    let (estimated_cost, best) = {
        let _sp = trace::span(Stage::Solve);
        // lint: allow(lock-across-solve) — this is the one fresh solve that
        // seeds the plan-private memo; nothing else can hold this lock yet
        let mut cache = plan.memo.lock();
        let mut solver = plan.problem.solver_with_cache(&mut cache);
        match params.planner {
            crate::cost::Planner::Exhaustive => match solver.best_cut_myopic(full) {
                Some((cut, score)) => (score, Some(cut)),
                None => (f64::NAN, None),
            },
            crate::cost::Planner::Recursive => {
                let cost = solver.solve_full();
                (cost, solver.best_cut_full())
            }
        }
    };

    let (lower_units, fallback) = match best {
        Some(cut) if !cut.is_empty() => (cut, false),
        // The model would rather SHOWRESULTS (or found an empty optimum);
        // the user still clicked `>>>`, so reveal the top layer of the
        // reduced tree — every partition whose parent partition is the
        // root's (a valid antichain by construction).
        _ => {
            let top: Vec<usize> = (1..parts.len())
                .filter(|&i| reduced_parent(nav, &parts[i], map) == 0)
                .collect();
            (top, true)
        }
    };
    let planned = if fallback {
        // A fallback reveal is not a planner decision; retaining the plan
        // would replay the decline on the sub-components. Matches the
        // historical behavior of `plan.cut` returning `None` here.
        None
    } else {
        plan.map_cut(full, lower_units.clone())
    };
    let cut = EdgeCut::new(lower_units.iter().map(|&u| parts[u].root).collect());
    let outcome = ExpandOutcome {
        cut,
        reduced_size: parts.len(),
        estimated_cost,
        elapsed: Duration::from_nanos(trace::now_ns().saturating_sub(started)),
        fallback,
    };
    Some((outcome, planned.map(|p| (plan, p))))
}

/// The tiny-component path: the whole component fit one partition, so
/// reveal the component root's in-component children. Returns `None` —
/// instead of an empty `EdgeCut` — when a stale `comp` from a racing
/// caller leaves no revealable child.
fn tiny_component_fallback(
    nav: &NavigationTree,
    comp: &[NavNodeId],
    map: &mut NodeMap,
    started_ns: u64,
) -> Option<ExpandOutcome> {
    debug_assert!(
        comp.len() >= 2,
        "the tiny-component path only runs on multi-node components"
    );
    map.begin(nav.len());
    for &n in comp {
        map.set(n.index(), 1);
    }
    let mut children: Vec<NavNodeId> = nav
        .children(comp[0])
        .iter()
        .copied()
        .filter(|c| map.get(c.index()).is_some())
        .collect();
    children.dedup();
    debug_assert!(
        children.iter().all(|&c| c != comp[0]),
        "a component root can never be its own revealable child"
    );
    if children.is_empty() {
        // Typed decline, not an empty EdgeCut: a stale `comp` from a racing
        // caller leaves nothing revealable; the caller maps None onto
        // EdgeCutError::EmptyCut and the session surfaces it.
        return None;
    }
    Some(ExpandOutcome {
        cut: EdgeCut::new(children),
        reduced_size: 1,
        estimated_cost: f64::NAN,
        elapsed: Duration::from_nanos(trace::now_ns().saturating_sub(started_ns)),
        fallback: true,
    })
}

/// The core of the heuristic, operating on an explicit component node list
/// (pre-order, `comp[0]` is the component root). Exposed for benches that
/// measure expansion outside an [`ActiveTree`]. A thin wrapper over
/// [`plan_component`] that drops the retained plan.
pub fn expand_component(
    nav: &NavigationTree,
    comp: &[NavNodeId],
    params: &CostParams,
) -> Option<ExpandOutcome> {
    plan_component(nav, comp, params).map(|(outcome, _)| outcome)
}

/// Builds the reduced-tree cut problem over the partitions. `parts[0]` is
/// the root partition (guaranteed by
/// [`partition_until`](crate::edgecut::partition::partition_until)), and
/// `map` holds each component node's partition id. Citation unions and
/// explore-weight sums run in one pass over the component in partition
/// order — the same member order as the historical implementation, keeping
/// the f64 sums bit-identical.
fn reduced_problem(
    nav: &NavigationTree,
    parts: &[Partition],
    map: &NodeMap,
    params: &CostParams,
) -> CutProblem {
    let n = parts.len();
    let mut parent: Vec<Option<usize>> = Vec::with_capacity(n);
    let mut sets: Vec<CitSet> = Vec::with_capacity(n);
    let mut member_count: Vec<u32> = Vec::with_capacity(n);
    let mut explore_weight: Vec<f64> = Vec::with_capacity(n);
    for (i, p) in parts.iter().enumerate() {
        parent.push(if i == 0 {
            None
        } else {
            Some(reduced_parent(nav, p, map))
        });
        let mut set = CitSet::new(nav.universe());
        let mut ew = 0.0;
        for &m in &p.nodes {
            set.union_with(nav.results(m));
            ew += nav.explore_weight(m);
        }
        sets.push(set);
        member_count.push(p.nodes.len() as u32);
        explore_weight.push(ew);
    }
    // Partition roots are in pre-order after the root partition, so every
    // partition's parent partition has a smaller index... except when an
    // earlier-rooted partition hangs below a later-rooted one, which cannot
    // happen: the parent of a partition root precedes it in pre-order.
    CutProblem::new(
        parent,
        sets,
        member_count,
        explore_weight,
        nav.total_explore_weight(),
        params.clone(),
    )
}

/// Index of the partition containing the navigation parent of `part`'s
/// root — an O(1) lookup in the stamped partition-id map.
fn reduced_parent(nav: &NavigationTree, part: &Partition, map: &NodeMap) -> usize {
    let up = nav
        .parent(part.root)
        // lint: allow(no-unwrap) — partition() only emits non-root partitions
        // below the component root, so the nav parent always exists
        .expect("non-root partitions hang below the component root");
    map.get(up.index())
        // lint: allow(no-unwrap) — the stamped map covers every node of the
        // component by construction (see NodeMap::stamp_component)
        .expect("the parent node belongs to some partition of the same component") as usize
}

/// The historical two-pass Heuristic-ReducedOpt pipeline, kept verbatim as
/// the behavioral reference for the equivalence test-suite
/// (`tests/plan_equivalence.rs`). **Not used in serving** — it runs
/// `partition_until` twice per planned expansion and solves with throwaway
/// memos, which is exactly the tail-latency bug the single-pass pipeline
/// replaces. Do not "optimize" this module; its value is fidelity to the
/// pre-optimization semantics.
#[doc(hidden)]
pub mod reference {
    use super::*;
    use crate::edgecut::partition::partition_until;

    /// Two-pass [`super::plan_component`]: expand, then re-partition and
    /// re-solve to retain the plan.
    pub fn plan_component(
        nav: &NavigationTree,
        comp: &[NavNodeId],
        params: &CostParams,
    ) -> Option<(ExpandOutcome, Option<(ReducedPlan, PlannedCut)>)> {
        let outcome = expand_component(nav, comp, params)?;
        if outcome.reduced_size <= 1 {
            return Some((outcome, None));
        }
        // Rebuild the partitioning deterministically and retain it.
        let parts = partition_until(nav, comp, params.max_partitions);
        let problem = reference_problem(nav, &parts, params);
        let plan = ReducedPlan {
            problem,
            unit_roots: parts.iter().map(|p| p.root).collect(),
            memo: Mutex::new(SolveCache::new()),
        };
        let planned = plan.cut_uncached(plan.full_mask(), params);
        Some((outcome, planned.map(|p| (plan, p))))
    }

    /// Single-shot expansion with a throwaway solver memo.
    pub fn expand_component(
        nav: &NavigationTree,
        comp: &[NavNodeId],
        params: &CostParams,
    ) -> Option<ExpandOutcome> {
        if comp.len() < 2 {
            return None;
        }
        // lint: allow(no-naked-instant) — the historical two-pass reference
        // is kept verbatim for the equivalence suite; it predates the
        // instrumented clock and never runs on the serve path
        let started = Instant::now();
        let parts = partition_until(nav, comp, params.max_partitions);

        if parts.len() == 1 {
            let children: Vec<NavNodeId> = nav
                .children(comp[0])
                .iter()
                .copied()
                .filter(|c| comp.contains(c))
                .collect();
            if children.is_empty() {
                // The historical code returned an empty EdgeCut here; the
                // bugfixed pipeline returns None, and the reference adopts
                // that so outcomes stay comparable (the condition requires
                // a stale component list either way).
                return None;
            }
            return Some(ExpandOutcome {
                cut: EdgeCut::new(children),
                reduced_size: 1,
                estimated_cost: f64::NAN,
                elapsed: started.elapsed(),
                fallback: true,
            });
        }

        let problem = reference_problem(nav, &parts, params);
        let mut solver = problem.solver();
        let (estimated_cost, best) = match params.planner {
            crate::cost::Planner::Exhaustive => match solver.best_cut_myopic(problem.full_mask()) {
                Some((cut, score)) => (score, Some(cut)),
                None => (f64::NAN, None),
            },
            crate::cost::Planner::Recursive => {
                let cost = solver.solve_full();
                (cost, solver.best_cut_full())
            }
        };

        let (lower_units, fallback) = match best {
            Some(cut) if !cut.is_empty() => (cut, false),
            _ => {
                let top: Vec<usize> = (1..parts.len())
                    .filter(|&i| reference_parent(nav, &parts, i) == 0)
                    .collect();
                (top, true)
            }
        };
        let cut = EdgeCut::new(lower_units.iter().map(|&u| parts[u].root).collect());
        Some(ExpandOutcome {
            cut,
            reduced_size: parts.len(),
            estimated_cost,
            elapsed: started.elapsed(),
            fallback,
        })
    }

    /// Reduced-problem build with the historical O(parts × n) parent scan.
    fn reference_problem(
        nav: &NavigationTree,
        parts: &[Partition],
        params: &CostParams,
    ) -> CutProblem {
        let n = parts.len();
        let mut parent: Vec<Option<usize>> = Vec::with_capacity(n);
        let mut sets: Vec<CitSet> = Vec::with_capacity(n);
        let mut member_count: Vec<u32> = Vec::with_capacity(n);
        let mut explore_weight: Vec<f64> = Vec::with_capacity(n);
        for (i, p) in parts.iter().enumerate() {
            parent.push(if i == 0 {
                None
            } else {
                Some(reference_parent(nav, parts, i))
            });
            let mut set = CitSet::new(nav.universe());
            let mut ew = 0.0;
            for &m in &p.nodes {
                set.union_with(nav.results(m));
                ew += nav.explore_weight(m);
            }
            sets.push(set);
            member_count.push(p.nodes.len() as u32);
            explore_weight.push(ew);
        }
        CutProblem::new(
            parent,
            sets,
            member_count,
            explore_weight,
            nav.total_explore_weight(),
            params.clone(),
        )
    }

    fn reference_parent(nav: &NavigationTree, parts: &[Partition], i: usize) -> usize {
        let up = nav
            .parent(parts[i].root)
            // lint: allow(no-unwrap) — same structural invariant as
            // reduced_parent above; kept verbatim as the reference
            .expect("non-root partitions hang below the component root");
        parts
            .iter()
            // lint: allow(hotpath-no-hashmap) — behavioral reference kept
            // verbatim; not on the serve path (see module docs)
            .position(|p| p.nodes.contains(&up))
            // lint: allow(no-unwrap) — reference twin of reduced_parent
            .expect("the parent node belongs to some partition of the same component")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::ActiveTree;
    use crate::edgecut::partition::partition_until;
    use bionav_medline::{Citation, CitationId, CitationStore};
    use bionav_mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};

    fn tn(s: &str) -> TreeNumber {
        TreeNumber::parse(s).unwrap()
    }

    /// Root with three branches; citations are spread so the middle branch
    /// dominates. ~60 citations overall to clear the upper threshold.
    fn build_nav() -> NavigationTree {
        let descs = vec![
            Descriptor::new(DescriptorId(1), "A", vec![tn("A01")]),
            Descriptor::new(DescriptorId(2), "A1", vec![tn("A01.100")]),
            Descriptor::new(DescriptorId(3), "A2", vec![tn("A01.200")]),
            Descriptor::new(DescriptorId(4), "B", vec![tn("B01")]),
            Descriptor::new(DescriptorId(5), "B1", vec![tn("B01.100")]),
            Descriptor::new(DescriptorId(6), "B2", vec![tn("B01.100.100")]),
            Descriptor::new(DescriptorId(7), "C", vec![tn("C01")]),
            Descriptor::new(DescriptorId(8), "C1", vec![tn("C01.100")]),
        ];
        let h = ConceptHierarchy::from_descriptors(&descs).unwrap();
        let mut store = CitationStore::new();
        let spread = [
            (1u32, 6u32),
            (2, 8),
            (3, 7),
            (4, 14),
            (5, 12),
            (6, 10),
            (7, 4),
            (8, 3),
        ];
        let mut next = 1u32;
        let mut results = Vec::new();
        for &(concept, count) in &spread {
            for _ in 0..count {
                store
                    .insert(Citation::new(
                        CitationId(next),
                        "t",
                        vec![],
                        vec![DescriptorId(concept)],
                        vec![],
                    ))
                    .unwrap();
                results.push(CitationId(next));
                next += 1;
            }
        }
        NavigationTree::build(&h, &store, &results)
    }

    #[test]
    fn produces_a_valid_cut_on_the_initial_component() {
        let nav = build_nav();
        let mut active = ActiveTree::new(&nav);
        let params = CostParams::default();
        let out = heuristic_reduced_opt(&nav, &active, NavNodeId::ROOT, &params)
            .expect("multi-node component must expand");
        assert!(!out.cut.is_empty());
        assert!(out.reduced_size >= 2 && out.reduced_size <= params.max_partitions);
        // The active tree accepts the cut — the heuristic only proposes
        // valid EdgeCuts.
        active.expand(&nav, NavNodeId::ROOT, &out.cut).unwrap();
    }

    #[test]
    fn respects_the_partition_budget() {
        let nav = build_nav();
        let active = ActiveTree::new(&nav);
        for k in [2usize, 3, 4, 6, 10] {
            let params = CostParams::default().with_max_partitions(k);
            let out = heuristic_reduced_opt(&nav, &active, NavNodeId::ROOT, &params).unwrap();
            assert!(
                out.reduced_size <= k,
                "k={k} gave reduced size {}",
                out.reduced_size
            );
        }
    }

    #[test]
    fn singleton_component_yields_none() {
        let nav = build_nav();
        let mut active = ActiveTree::new(&nav);
        let params = CostParams::default();
        // Cut a leaf out, making it a singleton component.
        let leaf = nav
            .iter_preorder()
            .find(|&n| nav.children(n).is_empty())
            .unwrap();
        active
            .expand(&nav, NavNodeId::ROOT, &EdgeCut::new(vec![leaf]))
            .unwrap();
        assert!(heuristic_reduced_opt(&nav, &active, leaf, &params).is_none());
    }

    #[test]
    fn expansion_chain_terminates_with_all_nodes_visible() {
        // Repeatedly expanding every expandable component must terminate
        // with every node a component root.
        let nav = build_nav();
        let mut active = ActiveTree::new(&nav);
        let params = CostParams::default();
        let mut guard = 0;
        loop {
            let target = nav
                .iter_preorder()
                .find(|&n| active.is_visible(n) && active.component_size(n) > 1);
            let Some(root) = target else { break };
            let out = heuristic_reduced_opt(&nav, &active, root, &params).unwrap();
            assert!(
                !out.cut.is_empty(),
                "expandable components must produce cuts"
            );
            active.expand(&nav, root, &out.cut).unwrap();
            guard += 1;
            assert!(guard <= nav.len() * 2, "expansion loop failed to terminate");
        }
        for n in nav.iter_preorder() {
            assert!(active.is_visible(n));
        }
    }

    #[test]
    fn small_components_fall_back_to_children_reveal() {
        // A 3-node component with few citations: the model prefers
        // SHOWRESULTS, but expansion still reveals something.
        let descs = vec![
            Descriptor::new(DescriptorId(1), "A", vec![tn("A01")]),
            Descriptor::new(DescriptorId(2), "B", vec![tn("A01.100")]),
        ];
        let h = ConceptHierarchy::from_descriptors(&descs).unwrap();
        let mut store = CitationStore::new();
        for (i, c) in [(1u32, 1u32), (2, 2), (3, 2)] {
            store
                .insert(Citation::new(
                    CitationId(i),
                    "t",
                    vec![],
                    vec![DescriptorId(c)],
                    vec![],
                ))
                .unwrap();
        }
        let nav = NavigationTree::build(&h, &store, &[CitationId(1), CitationId(2), CitationId(3)]);
        let active = ActiveTree::new(&nav);
        // The myopic planner always proposes a concrete cut.
        let out = heuristic_reduced_opt(&nav, &active, NavNodeId::ROOT, &CostParams::default())
            .expect("3-node component expands");
        assert!(!out.cut.is_empty());
        // The recursive planner declines (|R| below the lower threshold ⇒
        // pX = 0 ⇒ SHOWRESULTS preferred) and the fallback reveal fires.
        let recursive = CostParams {
            planner: crate::cost::Planner::Recursive,
            ..CostParams::default()
        };
        let out = heuristic_reduced_opt(&nav, &active, NavNodeId::ROOT, &recursive)
            .expect("3-node component expands");
        assert!(!out.cut.is_empty());
        assert!(out.fallback);
    }

    #[test]
    fn plan_component_is_consistent_with_expand_component() {
        let nav = build_nav();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        let params = CostParams::default();
        let direct = expand_component(&nav, &comp, &params).expect("expands");
        let (outcome, planned) = plan_component(&nav, &comp, &params).expect("expands");
        assert_eq!(outcome.cut, direct.cut, "both paths choose the same cut");
        let (plan, cut) = planned.expect("multi-partition components retain a plan");
        assert_eq!(cut.cut, direct.cut);
        // The returned masks partition the plan's full mask.
        let mut union = cut.upper_mask;
        for &(_, m) in &cut.lowers {
            assert_eq!(union & m, 0, "component masks must be disjoint");
            union |= m;
        }
        assert_eq!(union, plan.full_mask());
        assert_eq!(cut.lowers.len(), cut.cut.len());
        assert!(!plan.is_empty());
        assert!(plan.len() >= 2);
        // Every lower mask's root maps back to its navigation node.
        for &(root, mask) in &cut.lowers {
            assert!(mask != 0);
            assert!(comp.contains(&root));
        }
        // A follow-up cut of the upper mask (if still multi-unit) is valid
        // for the active tree that applied the first cut.
        if cut.upper_mask.count_ones() > 1 {
            if let Some(next) = plan.cut(cut.upper_mask, &params) {
                let mut active = ActiveTree::new(&nav);
                active
                    .expand(&nav, NavNodeId::ROOT, &cut.cut)
                    .expect("first cut valid");
                active
                    .expand(&nav, NavNodeId::ROOT, &next.cut)
                    .expect("follow-up plan cut valid");
            }
        }
    }

    #[test]
    fn reduced_cut_maps_to_partition_roots() {
        let nav = build_nav();
        let active = ActiveTree::new(&nav);
        let params = CostParams::default().with_max_partitions(4);
        let out = heuristic_reduced_opt(&nav, &active, NavNodeId::ROOT, &params).unwrap();
        let comp = active.component_nodes(&nav, NavNodeId::ROOT);
        let parts = partition_until(&nav, &comp, params.max_partitions);
        let roots: Vec<NavNodeId> = parts.iter().map(|p| p.root).collect();
        for lower in out.cut.lower_roots() {
            assert!(
                roots.contains(lower),
                "cut endpoints must be partition roots"
            );
        }
    }

    #[test]
    fn single_pass_matches_two_pass_reference() {
        let nav = build_nav();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        for planner in [
            crate::cost::Planner::Exhaustive,
            crate::cost::Planner::Recursive,
        ] {
            for k in [2usize, 4, 10] {
                let params = CostParams {
                    planner,
                    ..CostParams::default().with_max_partitions(k)
                };
                let new = plan_component(&nav, &comp, &params);
                let old = reference::plan_component(&nav, &comp, &params);
                match (new, old) {
                    (None, None) => {}
                    (Some((no, np)), Some((oo, op))) => {
                        assert_eq!(no.cut, oo.cut, "planner={planner:?} k={k}");
                        assert_eq!(no.reduced_size, oo.reduced_size);
                        assert_eq!(no.fallback, oo.fallback);
                        assert!(
                            no.estimated_cost == oo.estimated_cost
                                || (no.estimated_cost.is_nan() && oo.estimated_cost.is_nan()),
                            "estimated cost must be bit-identical"
                        );
                        match (np, op) {
                            (None, None) => {}
                            (Some((nplan, ncut)), Some((oplan, ocut))) => {
                                assert_eq!(ncut.cut, ocut.cut);
                                assert_eq!(ncut.upper_mask, ocut.upper_mask);
                                assert_eq!(ncut.lowers, ocut.lowers);
                                assert_eq!(nplan.full_mask(), oplan.full_mask());
                            }
                            (n, o) => panic!(
                                "plan retention diverged: new={} old={}",
                                n.is_some(),
                                o.is_some()
                            ),
                        }
                    }
                    (n, o) => panic!("outcomes diverged: new={} old={}", n.is_some(), o.is_some()),
                }
            }
        }
    }

    #[test]
    fn fresh_plan_runs_one_partitioning_and_one_solve() {
        let nav = build_nav();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        let params = CostParams::default();
        counters::reset();
        let (_, planned) = plan_component(&nav, &comp, &params).expect("expands");
        assert_eq!(
            counters::partition_runs(),
            1,
            "fresh EXPAND must partition exactly once"
        );
        assert_eq!(
            counters::plan_solves(),
            1,
            "fresh EXPAND must solve exactly once"
        );
        // Retained-plan follow-ups partition and solve zero times.
        let (plan, first) = planned.expect("plan retained");
        counters::reset();
        for &(_, mask) in &first.lowers {
            let _ = plan.cut(mask, &params);
        }
        let _ = plan.cut(first.upper_mask, &params);
        assert_eq!(
            counters::partition_runs(),
            0,
            "retained-plan cuts must not re-partition"
        );
        assert_eq!(
            counters::plan_solves(),
            0,
            "retained-plan cuts must not re-solve"
        );
    }

    #[test]
    fn retained_memo_grows_and_cuts_match_uncached() {
        let nav = build_nav();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        let params = CostParams::default();
        let (_, planned) = plan_component(&nav, &comp, &params).expect("expands");
        let (plan, first) = planned.expect("plan retained");
        assert!(
            plan.memo_len() > 0,
            "the initial solve must seed the retained memo"
        );
        let masks: Vec<u64> = std::iter::once(first.upper_mask)
            .chain(first.lowers.iter().map(|&(_, m)| m))
            .collect();
        for mask in masks {
            let cached = plan.cut(mask, &params);
            let uncached = plan.cut_uncached(mask, &params);
            match (cached, uncached) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.cut, b.cut);
                    assert_eq!(a.upper_mask, b.upper_mask);
                    assert_eq!(a.lowers, b.lowers);
                }
                (a, b) => panic!(
                    "retained/uncached diverged: cached={} uncached={}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
    }
}
