//! Opt-EdgeCut (paper §VI-A): the exact, exponential dynamic program.
//!
//! A [`CutProblem`] is a small rooted tree of *units* — either raw
//! navigation-tree nodes, or the supernodes of a reduced tree — each
//! carrying its citation set, its EXPLORE weight and how many underlying
//! navigation nodes it stands for. The solver computes, for every component
//! (encoded as a `u64` bitmask of units), the minimum expected TOPDOWN
//! exploration cost
//!
//! ```text
//! explore(C) = pE(C) · [ (1 − pX(C)) · |R(C)|  +  pX(C) · (expand_cost + bestcut(C)) ]
//! bestcut(C) = min over valid EdgeCuts of C of
//!                Σ_lower (planning_label_cost + explore(lower))  +  explore(upper)
//! ```
//!
//! `planning_label_cost` defaults to 0, matching the paper's §III formula
//! `pX · (1 + Σ_m cost(I'(m)))` which charges the EXPAND click but no
//! per-label term inside the expectation (labels are charged when a real
//! navigation is tallied). See [`CostParams::planning_label_cost`].
//!
//! The key structural fact (see `DESIGN.md` §2): valid EdgeCuts of a tree
//! are in bijection with proper connected rooted prefixes `U ⊊ C` — the cut
//! edges are exactly the edges leaving `U`, automatically an antichain. The
//! DP therefore enumerates connected prefixes and memoizes per component
//! mask; once the root component is solved, the optimal cut of *every*
//! reachable sub-component is known, which is exactly the property §VI-B
//! exploits ("there is no need to call the algorithm again for subsequent
//! expansions").

use std::collections::HashMap;

use crate::bitset::CitSet;
use crate::cost::CostParams;
use crate::prob::{expand_probability, explore_probability};

/// An exact best-EdgeCut problem instance over at most
/// [`CostParams::max_opt_nodes`] units. Unit 0 is the root.
#[derive(Debug, Clone)]
pub struct CutProblem {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    sets: Vec<CitSet>,
    unit_distinct: Vec<u32>,
    member_count: Vec<u32>,
    explore_weight: Vec<f64>,
    total_explore_weight: f64,
    params: CostParams,
    /// Full subtree of each unit within the problem tree, as a mask.
    subtree_mask: Vec<u64>,
}

/// Memoized result for one component mask.
#[derive(Debug, Clone)]
struct MaskInfo {
    cost: f64,
    /// Lower roots of the optimal cut; `None` when expanding is not
    /// worthwhile (the model prefers SHOWRESULTS) or not possible.
    best_cut: Option<Vec<usize>>,
}

/// A retainable memo table for [`CutSolver`]: per-mask exact-DP results
/// plus per-mask myopic (§V objective) results.
///
/// The cache belongs to a *specific* [`CutProblem`]; feeding it to a solver
/// over a different problem is a logic error (masks would alias). Keep it
/// next to the problem it was filled for — exactly what
/// [`ReducedPlan`](crate::edgecut::heuristic::ReducedPlan) does, realizing
/// the paper's §VI-B observation that once Opt-EdgeCut has run, every
/// sub-component's cut is already known and follow-up expansions are pure
/// lookups.
#[derive(Debug, Clone, Default)]
pub struct SolveCache {
    exact: HashMap<u64, MaskInfo>,
    myopic: HashMap<u64, Option<(Vec<usize>, f64)>>,
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized entries (exact + myopic masks).
    pub fn len(&self) -> usize {
        self.exact.len() + self.myopic.len()
    }

    /// Whether nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.myopic.is_empty()
    }
}

/// How a [`CutSolver`] holds its memo: owned (throwaway) or borrowed from a
/// caller that retains it across solver instances (§VI-B reuse).
#[derive(Debug)]
enum Memo<'c> {
    Owned(SolveCache),
    Shared(&'c mut SolveCache),
}

impl Memo<'_> {
    fn cache(&mut self) -> &mut SolveCache {
        match self {
            Memo::Owned(c) => c,
            Memo::Shared(c) => c,
        }
    }

    fn cache_ref(&self) -> &SolveCache {
        match self {
            Memo::Owned(c) => c,
            Memo::Shared(c) => c,
        }
    }
}

/// The solver: memoizes per-mask results so repeated queries stay cheap.
/// Created by [`CutProblem::solver`] (private throwaway memo) or
/// [`CutProblem::solver_with_cache`] (caller-retained memo).
#[derive(Debug)]
pub struct CutSolver<'a> {
    problem: &'a CutProblem,
    memo: Memo<'a>,
}

impl CutProblem {
    /// Builds a problem instance.
    ///
    /// * `parent[i]` — parent unit of unit `i`; exactly `parent[0] == None`
    ///   and every other unit's parent must have a smaller index (parents
    ///   precede children, which any pre-order numbering satisfies);
    /// * `sets[i]` — distinct citations of unit `i`;
    /// * `member_count[i]` — underlying navigation-tree nodes unit `i`
    ///   stands for (1 when units are raw nodes);
    /// * `explore_weight[i]` — `Σ |R(m)| / ln |LT(m)|` over those nodes;
    /// * `total_explore_weight` — the navigation-tree-wide normalizer `W`.
    ///
    /// # Panics
    /// Panics on malformed trees or if the unit count exceeds
    /// `params.max_opt_nodes` (the whole point of §VI-B is to never feed the
    /// exact solver a big tree).
    pub fn new(
        parent: Vec<Option<usize>>,
        sets: Vec<CitSet>,
        member_count: Vec<u32>,
        explore_weight: Vec<f64>,
        total_explore_weight: f64,
        params: CostParams,
    ) -> Self {
        let n = parent.len();
        assert!(n >= 1, "a cut problem needs at least the root unit");
        assert!(
            n <= params.max_opt_nodes,
            "Opt-EdgeCut invoked on {n} units, above the feasibility cap {}",
            params.max_opt_nodes
        );
        assert!(n <= 64, "component masks are u64");
        assert_eq!(sets.len(), n);
        assert_eq!(member_count.len(), n);
        assert_eq!(explore_weight.len(), n);
        assert!(parent[0].is_none(), "unit 0 must be the root");
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &p) in parent.iter().enumerate().skip(1) {
            // lint: allow(no-unwrap) — asserted above: parent[0] is the only None
            let p = p.expect("only the root lacks a parent");
            assert!(p < i, "parents must precede children (pre-order numbering)");
            children[p].push(i);
        }
        // Subtree masks bottom-up (children have larger indices).
        let mut subtree_mask = vec![0u64; n];
        for i in (0..n).rev() {
            let mut m = 1u64 << i;
            for &c in &children[i] {
                m |= subtree_mask[c];
            }
            subtree_mask[i] = m;
        }
        let unit_distinct = sets.iter().map(CitSet::count).collect();
        CutProblem {
            parent,
            children,
            sets,
            unit_distinct,
            member_count,
            explore_weight,
            total_explore_weight,
            params,
            subtree_mask,
        }
    }

    /// Builds a raw-granularity problem over a navigation-tree component:
    /// one unit per component node (`comp` in pre-order, `comp[0]` the
    /// component root). This is the tree Opt-EdgeCut would have to solve
    /// *without* the §VI-B reduction — feasible only for small components,
    /// which is exactly what the optimal-vs-heuristic ablation measures.
    pub fn from_component(
        nav: &crate::navtree::NavigationTree,
        comp: &[crate::navtree::NavNodeId],
        params: CostParams,
    ) -> Self {
        let index_of = |n: crate::navtree::NavNodeId| {
            comp.iter()
                .position(|&m| m == n)
                // lint: allow(no-unwrap) — components are parent-closed by
                // construction (partition() emits whole subtrees)
                .expect("parents of members are members")
        };
        let parent: Vec<Option<usize>> = comp
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                if i == 0 {
                    None
                } else {
                    // lint: allow(no-unwrap) — i > 0 means n is not the
                    // component root, so its nav parent exists
                    Some(index_of(nav.parent(n).expect("non-root")))
                }
            })
            .collect();
        let sets: Vec<CitSet> = comp.iter().map(|&n| nav.results(n).clone()).collect();
        let explore_weight: Vec<f64> = comp.iter().map(|&n| nav.explore_weight(n)).collect();
        CutProblem::new(
            parent,
            sets,
            vec![1; comp.len()],
            explore_weight,
            nav.total_explore_weight(),
            params,
        )
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the problem is the trivial single-unit tree.
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// The mask containing every unit.
    pub fn full_mask(&self) -> u64 {
        if self.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.len()) - 1
        }
    }

    /// Creates a solver over this problem with a fresh, throwaway memo.
    pub fn solver(&self) -> CutSolver<'_> {
        CutSolver {
            problem: self,
            memo: Memo::Owned(SolveCache::new()),
        }
    }

    /// Creates a solver that reads and fills a caller-retained
    /// [`SolveCache`]. Everything a previous solver over the same problem
    /// memoized is answered without recomputation — the §VI-B "no need to
    /// call the algorithm again" reuse. The cache must have been filled for
    /// *this* problem (masks are problem-relative).
    pub fn solver_with_cache<'a>(&'a self, cache: &'a mut SolveCache) -> CutSolver<'a> {
        CutSolver {
            problem: self,
            memo: Memo::Shared(cache),
        }
    }

    /// Mask of the full subtree rooted at `unit` within the problem tree.
    pub fn subtree_mask_of(&self, unit: usize) -> u64 {
        self.subtree_mask[unit]
    }

    /// Parent unit of `unit` (`None` for the root unit 0).
    pub fn parent_of(&self, unit: usize) -> Option<usize> {
        self.parent[unit]
    }

    fn mask_distinct(&self, mask: u64) -> u32 {
        let mut acc = CitSet::new(self.sets[0].universe());
        for i in iter_mask(mask) {
            acc.union_with(&self.sets[i]);
        }
        acc.count()
    }

    /// Root of a connected mask: the unique unit whose parent is outside.
    fn root_of(&self, mask: u64) -> usize {
        iter_mask(mask)
            .find(|&i| match self.parent[i] {
                None => true,
                Some(p) => mask & (1u64 << p) == 0,
            })
            // lint: allow(no-unwrap) — callers never pass mask == 0, and any
            // non-empty mask has a minimal element whose parent is outside it
            .expect("masks are non-empty")
    }
}

impl CutSolver<'_> {
    /// Minimum expected exploration cost of the full tree.
    pub fn solve_full(&mut self) -> f64 {
        self.solve(self.problem.full_mask())
    }

    /// The optimal cut of the full tree (lower-root unit indices), or
    /// `None` when the model would rather SHOWRESULTS than expand.
    pub fn best_cut_full(&mut self) -> Option<Vec<usize>> {
        self.best_cut(self.problem.full_mask())
    }

    /// Minimum expected exploration cost of the component `mask` (which
    /// must be non-empty and connected).
    pub fn solve(&mut self, mask: u64) -> f64 {
        self.ensure(mask);
        self.memo.cache_ref().exact[&mask].cost
    }

    /// Optimal cut of component `mask`.
    pub fn best_cut(&mut self, mask: u64) -> Option<Vec<usize>> {
        self.ensure(mask);
        self.memo.cache_ref().exact[&mask].best_cut.clone()
    }

    /// Expected cost of the component `mask` when the *first* expansion is
    /// forced to use the given cut (lower-root unit indices) and every
    /// later decision is optimal. Used by the ablation to price the
    /// heuristic's choice under the exact model; `lower_roots` must be a
    /// valid cut of `mask` (members of `mask` whose parents are in `mask`,
    /// no two on one root path).
    pub fn cost_with_first_cut(&mut self, mask: u64, lower_roots: &[usize]) -> f64 {
        let p = self.problem;
        let distinct = p.mask_distinct(mask);
        let ew: f64 = iter_mask(mask).map(|i| p.explore_weight[i]).sum();
        let members: u32 = iter_mask(mask).map(|i| p.member_count[i]).sum();
        let md: Vec<u32> = iter_mask(mask).map(|i| p.unit_distinct[i]).collect();
        let pe = explore_probability(ew, p.total_explore_weight);
        let px = expand_probability(&p.params, distinct, &md, members);
        if lower_roots.is_empty() || px <= 0.0 {
            return pe * f64::from(distinct);
        }
        let mut upper = mask;
        let mut cut_cost = 0.0;
        for &v in lower_roots {
            debug_assert!(mask & (1u64 << v) != 0, "cut node outside component");
            let sub = p.subtree_mask[v] & mask;
            upper &= !sub;
            cut_cost += p.params.planning_label_cost + self.solve(sub);
        }
        cut_cost += self.solve(upper);
        pe * ((1.0 - px) * f64::from(distinct) + px * (p.params.expand_cost + cut_cost))
    }

    /// The myopic §V objective: for component `mask`, score every valid
    /// cut as
    ///
    /// ```text
    /// expand_cost + Σ_lower label_cost + Σ_{all components m} pE(m)·|R(m)|
    /// ```
    ///
    /// (one paid label per newly revealed subtree, plus the
    /// probability-weighted SHOWRESULTS the user runs next — exactly the
    /// TOPDOWN-EXHAUSTIVE cost whose optimization §V proves NP-complete)
    /// and return the minimizing cut with its score. Returns `None` for
    /// single-unit components (nothing to cut). Results are memoized per
    /// mask (the myopic plane of [`SolveCache`]), so retained-plan
    /// expansions answer repeated masks without re-enumeration.
    pub fn best_cut_myopic(&mut self, mask: u64) -> Option<(Vec<usize>, f64)> {
        if let Some(hit) = self.memo.cache_ref().myopic.get(&mask) {
            return hit.clone();
        }
        let result = self.compute_myopic(mask);
        self.memo.cache().myopic.insert(mask, result.clone());
        result
    }

    /// The uncached §V enumeration behind [`CutSolver::best_cut_myopic`].
    fn compute_myopic(&mut self, mask: u64) -> Option<(Vec<usize>, f64)> {
        let p = self.problem;
        if mask.count_ones() <= 1 {
            return None;
        }
        let root = p.root_of(mask);
        let mut best: Option<(Vec<usize>, f64)> = None;
        for upper in enumerate_prefixes(p, mask, root) {
            if upper == mask {
                continue;
            }
            let mut score = p.params.expand_cost + self.component_read_cost(upper);
            let mut lower_roots: Vec<usize> = Vec::new();
            for v in iter_mask(mask & !upper) {
                // lint: allow(no-unwrap) — the root is in every upper prefix,
                // so v outside `upper` cannot be the root
                let pv = p.parent[v].expect("non-root units have parents");
                if upper & (1u64 << pv) != 0 {
                    lower_roots.push(v);
                    let sub = p.subtree_mask[v] & mask;
                    score += p.params.label_cost + self.component_read_cost(sub);
                }
            }
            if best.as_ref().is_none_or(|(_, b)| score < *b) {
                best = Some((lower_roots, score));
            }
        }
        best
    }

    /// `pE(C)·|R(C)|`: the expected SHOWRESULTS cost of a component under
    /// the one-step model.
    fn component_read_cost(&self, mask: u64) -> f64 {
        let p = self.problem;
        let ew: f64 = iter_mask(mask).map(|i| p.explore_weight[i]).sum();
        explore_probability(ew, p.total_explore_weight) * f64::from(p.mask_distinct(mask))
    }

    fn ensure(&mut self, mask: u64) {
        if self.memo.cache_ref().exact.contains_key(&mask) {
            return;
        }
        let info = self.compute(mask);
        self.memo.cache().exact.insert(mask, info);
    }

    fn compute(&mut self, mask: u64) -> MaskInfo {
        let p = self.problem;
        debug_assert!(mask != 0, "empty component");
        let distinct = p.mask_distinct(mask);
        let ew: f64 = iter_mask(mask).map(|i| p.explore_weight[i]).sum();
        let members: u32 = iter_mask(mask).map(|i| p.member_count[i]).sum();
        let member_distincts: Vec<u32> = iter_mask(mask).map(|i| p.unit_distinct[i]).collect();

        let p_explore = explore_probability(ew, p.total_explore_weight);
        let p_expand = expand_probability(&p.params, distinct, &member_distincts, members);

        let single_unit = mask.count_ones() == 1;
        if single_unit || p_expand <= 0.0 {
            return MaskInfo {
                cost: p_explore * f64::from(distinct),
                best_cut: None,
            };
        }

        let root = p.root_of(mask);
        let mut best = f64::INFINITY;
        let mut best_cut: Vec<usize> = Vec::new();
        for upper in enumerate_prefixes(p, mask, root) {
            if upper == mask {
                continue; // proper prefixes only: a cut must cut something
            }
            // Lower roots: units just below the prefix boundary.
            let mut cut_cost = 0.0;
            let mut lower_roots: Vec<usize> = Vec::new();
            for v in iter_mask(mask & !upper) {
                // lint: allow(no-unwrap) — the root is in every upper prefix,
                // so v outside `upper` cannot be the root
                let pv = p.parent[v].expect("non-root units have parents");
                if upper & (1u64 << pv) != 0 {
                    lower_roots.push(v);
                    let sub = p.subtree_mask[v] & mask;
                    cut_cost += p.params.planning_label_cost + self.solve(sub);
                }
            }
            cut_cost += self.solve(upper);
            if cut_cost < best {
                best = cut_cost;
                best_cut = lower_roots;
            }
        }
        debug_assert!(best.is_finite(), "a multi-unit component always has a cut");
        let cost = p_explore
            * ((1.0 - p_expand) * f64::from(distinct) + p_expand * (p.params.expand_cost + best));
        MaskInfo {
            cost,
            best_cut: Some(best_cut),
        }
    }
}

/// Monte-Carlo validation of the §III expectation: simulates one random
/// TOPDOWN user over the problem tree, making the solver's optimal cut at
/// every EXPAND and sampling the EXPLORE / EXPAND coin flips with the
/// model's own probabilities. Returns the §III cost this user paid
/// (labels of newly revealed components are charged via
/// `planning_label_cost`, exactly as the DP prices them). Averaged over
/// many users, this converges to [`CutSolver::solve`] — the property the
/// `monte_carlo_matches_the_dp` test pins down.
///
/// `coin` supplies uniform samples in `[0, 1)` (pass a closure over your
/// RNG; the core crate takes no RNG dependency).
pub fn simulate_topdown_user(
    solver: &mut CutSolver<'_>,
    mask: u64,
    coin: &mut dyn FnMut() -> f64,
) -> f64 {
    let p = solver.problem;
    let distinct = p.mask_distinct(mask);
    let ew: f64 = iter_mask(mask).map(|i| p.explore_weight[i]).sum();
    let members: u32 = iter_mask(mask).map(|i| p.member_count[i]).sum();
    let md: Vec<u32> = iter_mask(mask).map(|i| p.unit_distinct[i]).collect();
    let pe = explore_probability(ew, p.total_explore_weight);
    let px = expand_probability(&p.params, distinct, &md, members);

    if coin() >= pe {
        return 0.0; // IGNORE
    }
    let expand_possible = mask.count_ones() > 1 && px > 0.0;
    if !expand_possible || coin() >= px {
        return f64::from(distinct); // SHOWRESULTS
    }
    // EXPAND with the optimal cut; the DP prices the same choice.
    let cut = solver
        .best_cut(mask)
        // lint: allow(no-unwrap) — guarded by the px > 0 branch above; the DP
        // that priced px already materialized this cut
        .expect("px > 0 on a multi-unit component implies a cut exists");
    let mut cost = p.params.expand_cost;
    let mut upper = mask;
    for &v in &cut {
        let sub = p.subtree_mask[v] & mask;
        upper &= !sub;
        cost += p.params.planning_label_cost;
        cost += simulate_topdown_user(solver, sub, coin);
    }
    cost += simulate_topdown_user(solver, upper, coin);
    cost
}

/// Iterates over the set bits of a mask.
fn iter_mask(mask: u64) -> impl Iterator<Item = usize> {
    let mut bits = mask;
    std::iter::from_fn(move || {
        if bits == 0 {
            None
        } else {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(i)
        }
    })
}

/// All connected rooted prefixes of `mask` containing `root` (including
/// `{root}` and `mask` itself): the product, over each child subtree, of
/// "absent" or any of its prefixes.
fn enumerate_prefixes(p: &CutProblem, mask: u64, root: usize) -> Vec<u64> {
    let mut acc: Vec<u64> = vec![1u64 << root];
    for &c in &p.children[root] {
        if mask & (1u64 << c) == 0 {
            continue;
        }
        let child_prefixes = enumerate_prefixes(p, mask & p.subtree_mask[c], c);
        let mut next = Vec::with_capacity(acc.len() * (child_prefixes.len() + 1));
        for &a in &acc {
            next.push(a); // child subtree absent entirely
            for &cp in &child_prefixes {
                next.push(a | cp);
            }
        }
        acc = next;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A problem over a simple tree; every unit gets the given citation
    /// list and weight 1 per citation (ln-normalizer suppressed by using
    /// a constant global frequency).
    fn problem(
        parents: Vec<Option<usize>>,
        cits: Vec<Vec<usize>>,
        params: CostParams,
    ) -> CutProblem {
        let universe = cits.iter().flatten().copied().max().map_or(1, |m| m + 1);
        let sets: Vec<CitSet> = cits
            .iter()
            .map(|list| {
                let mut s = CitSet::new(universe);
                for &c in list {
                    s.insert(c);
                }
                s
            })
            .collect();
        let weights: Vec<f64> = sets.iter().map(|s| f64::from(s.count())).collect();
        let total: f64 = weights.iter().sum();
        let n = parents.len();
        CutProblem::new(parents, sets, vec![1; n], weights, total, params)
    }

    /// Chain root(0) — 1 — 2.
    fn chain() -> CutProblem {
        problem(
            vec![None, Some(0), Some(1)],
            vec![vec![0, 1], vec![2, 3], vec![4, 5]],
            CostParams {
                lower_threshold: 0,
                upper_threshold: 4,
                ..CostParams::default()
            },
        )
    }

    #[test]
    fn prefix_enumeration_matches_structure() {
        let p = chain();
        let prefixes = enumerate_prefixes(&p, p.full_mask(), 0);
        // Chain prefixes containing the root: {0}, {0,1}, {0,1,2}.
        let mut sorted = prefixes.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0b001, 0b011, 0b111]);
    }

    #[test]
    fn prefix_enumeration_on_star() {
        let p = problem(
            vec![None, Some(0), Some(0), Some(0)],
            vec![vec![0], vec![1], vec![2], vec![3]],
            CostParams::default(),
        );
        let prefixes = enumerate_prefixes(&p, p.full_mask(), 0);
        // Root plus any subset of 3 leaves: 8 prefixes.
        assert_eq!(prefixes.len(), 8);
        assert!(prefixes.iter().all(|m| m & 1 == 1));
    }

    #[test]
    fn root_of_masks() {
        let p = chain();
        assert_eq!(p.root_of(0b111), 0);
        assert_eq!(p.root_of(0b110), 1);
        assert_eq!(p.root_of(0b100), 2);
    }

    #[test]
    fn single_unit_cost_is_showresults() {
        let p = problem(vec![None], vec![vec![0, 1, 2]], CostParams::default());
        let mut s = p.solver();
        // pE = 1 (whole tree), pX = 0 (single unit): cost = |R| = 3.
        assert!((s.solve_full() - 3.0).abs() < 1e-9);
        assert_eq!(s.best_cut_full(), None);
    }

    #[test]
    fn small_result_components_prefer_showresults() {
        // distinct = 6 < lower_threshold 10 ⇒ pX = 0 ⇒ no cut.
        let p = problem(
            vec![None, Some(0), Some(1)],
            vec![vec![0, 1], vec![2, 3], vec![4, 5]],
            CostParams::default(),
        );
        let mut s = p.solver();
        assert_eq!(s.best_cut_full(), None);
        assert!((s.solve_full() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn expanding_is_cheaper_for_wide_spreads() {
        // Root with two heavy children, disjoint citations, above the upper
        // threshold: pX = 1, so the cost is the best cut's cost; revealing
        // the two children splits 60 citations into 30 + 30 with pE halved.
        let c0: Vec<usize> = vec![];
        let c1: Vec<usize> = (0..30).collect();
        let c2: Vec<usize> = (30..60).collect();
        let p = problem(
            vec![None, Some(0), Some(0)],
            vec![c0, c1, c2],
            CostParams::default(),
        );
        let mut s = p.solver();
        let cost = s.solve_full();
        let cut = s.best_cut_full().expect("must expand");
        // Every cut is equivalent here: each child component costs
        // pE · 30 = 15 whether revealed (planning labels are free) or left
        // in the upper for SHOWRESULTS. pE = 1, pX = 1:
        // cost = 1 + (15 + 15) = 31.
        assert!(!cut.is_empty());
        assert!((cost - 31.0).abs() < 1e-9, "got {cost}");
    }

    #[test]
    fn duplicates_steer_the_cut() {
        // Two children share all citations (pure duplicates); a third is
        // disjoint. Grouping the duplicated pair into one component avoids
        // paying for the same citations twice.
        let shared: Vec<usize> = (0..30).collect();
        let other: Vec<usize> = (30..60).collect();
        let params = CostParams::default();
        let p = problem(
            vec![None, Some(0), Some(0), Some(0)],
            vec![vec![], shared.clone(), shared, other],
            params,
        );
        let mut s = p.solver();
        let cut = s.best_cut_full().expect("must expand");
        // The cut should never separate units 1 and 2 from each other into
        // distinct lower components (that doubles the duplicate cost) — but
        // with a star they are separate children, so the solver instead
        // keeps them together in the upper component and cuts only unit 3,
        // or cuts 1,2,3 all; verify it found the cheaper of the options.
        let cost = s.solve_full();
        let mut alt = p.solver();
        // Compare with forcing all three children cut (cost of that layout):
        // compute via the enumeration result being minimal anyway.
        assert!(
            cost <= {
                // cut everything: 1 + Σ(1 + cost_child)
                let c1 = alt.solve(0b0010);
                let c2 = alt.solve(0b0100);
                let c3 = alt.solve(0b1000);
                1.0 + (1.0 + c1) + (1.0 + c2) + (1.0 + c3)
            } + 1e-9
        );
        assert!(!cut.is_empty());
    }

    #[test]
    fn memoization_reuses_subcomponents() {
        let p = chain();
        let mut s = p.solver();
        let _ = s.solve_full();
        let memo_after_full = s.memo.cache_ref().exact.len();
        // Sub-component solves hit the memo; the table does not grow.
        let _ = s.solve(0b110);
        let _ = s.solve(0b100);
        assert_eq!(s.memo.cache_ref().exact.len(), memo_after_full.max(3));
    }

    #[test]
    fn retained_cache_survives_across_solver_instances() {
        // The §VI-B reuse: a second solver over the same retained cache
        // answers previously solved masks without recomputing anything.
        let p = chain();
        let mut cache = SolveCache::new();
        let (full_cost, full_cut) = {
            let mut s = p.solver_with_cache(&mut cache);
            let cost = s.solve_full();
            let cut = s.best_cut_full();
            let _ = s.best_cut_myopic(p.full_mask());
            (cost, cut)
        };
        let len_after_first = cache.len();
        assert!(len_after_first > 0);
        {
            let mut s2 = p.solver_with_cache(&mut cache);
            assert_eq!(s2.solve_full().to_bits(), full_cost.to_bits());
            assert_eq!(s2.best_cut_full(), full_cut);
            // Sub-component queries are also answered from the cache.
            let _ = s2.solve(0b110);
        }
        assert_eq!(
            cache.len(),
            len_after_first,
            "retained cache must not recompute or grow on replayed masks"
        );
        assert!(!cache.is_empty());
    }

    #[test]
    fn myopic_results_are_memoized_and_stable() {
        let p = chain();
        let mut cache = SolveCache::new();
        let first = p.solver_with_cache(&mut cache).best_cut_myopic(0b111);
        let second = p.solver_with_cache(&mut cache).best_cut_myopic(0b111);
        assert_eq!(first, second);
        // And equal to the uncached enumeration.
        let fresh = p.solver().best_cut_myopic(0b111);
        assert_eq!(first, fresh);
    }

    #[test]
    #[should_panic(expected = "feasibility cap")]
    fn oversized_problems_are_rejected() {
        let n = 25;
        let mut parents = vec![None];
        parents.extend((1..n).map(|i| Some(i - 1)));
        let cits = vec![vec![0usize]; n];
        problem(parents, cits, CostParams::default());
    }

    #[test]
    #[should_panic(expected = "pre-order")]
    fn non_preorder_parents_are_rejected() {
        problem(
            vec![None, Some(2), Some(0)],
            vec![vec![0], vec![1], vec![2]],
            CostParams::default(),
        );
    }

    /// Brute-force reference: enumerate *every* antichain of edges directly
    /// and evaluate the same cost recursion, without the prefix bijection.
    fn brute_force_cost(p: &CutProblem, mask: u64) -> f64 {
        let distinct = p.mask_distinct(mask);
        let ew: f64 = iter_mask(mask).map(|i| p.explore_weight[i]).sum();
        let members: u32 = iter_mask(mask).map(|i| p.member_count[i]).sum();
        let md: Vec<u32> = iter_mask(mask).map(|i| p.unit_distinct[i]).collect();
        let pe = explore_probability(ew, p.total_explore_weight);
        let px = expand_probability(&p.params, distinct, &md, members);
        if mask.count_ones() == 1 || px <= 0.0 {
            return pe * f64::from(distinct);
        }
        // Edges inside the component, as (child) endpoints.
        let edges: Vec<usize> = iter_mask(mask)
            .filter(|&v| p.parent[v].map(|q| mask & (1 << q) != 0).unwrap_or(false))
            .collect();
        let mut best = f64::INFINITY;
        for bits in 1u64..(1 << edges.len()) {
            let chosen: Vec<usize> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect();
            // Valid = antichain: no chosen edge endpoint is an ancestor of
            // another within the problem tree.
            let is_antichain = chosen.iter().all(|&a| {
                chosen
                    .iter()
                    .all(|&b| a == b || p.subtree_mask[a] & (1 << b) == 0)
            });
            if !is_antichain {
                continue;
            }
            let mut upper = mask;
            let mut cost = 0.0;
            for &v in &chosen {
                let sub = p.subtree_mask[v] & mask;
                upper &= !sub;
                cost += p.params.planning_label_cost + brute_force_cost(p, sub);
            }
            cost += brute_force_cost(p, upper);
            best = best.min(cost);
        }
        pe * ((1.0 - px) * f64::from(distinct) + px * (p.params.expand_cost + best))
    }

    #[test]
    fn from_component_mirrors_the_navigation_tree() {
        use crate::navtree::{NavNodeId, NavigationTree};
        use bionav_medline::{Citation, CitationId, CitationStore};
        use bionav_mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};
        let tn = |s: &str| TreeNumber::parse(s).unwrap();
        let descs = vec![
            Descriptor::new(DescriptorId(1), "a", vec![tn("A01")]),
            Descriptor::new(DescriptorId(2), "b", vec![tn("A01.100")]),
            Descriptor::new(DescriptorId(3), "c", vec![tn("A01.200")]),
        ];
        let h = ConceptHierarchy::from_descriptors(&descs).unwrap();
        let mut store = CitationStore::new();
        let mut results = Vec::new();
        for (i, c) in [(1u32, 1u32), (2, 2), (3, 2), (4, 3), (5, 3)] {
            store
                .insert(Citation::new(
                    CitationId(i),
                    "t",
                    vec![],
                    vec![DescriptorId(c)],
                    vec![],
                ))
                .unwrap();
            results.push(CitationId(i));
        }
        let nav = NavigationTree::build(&h, &store, &results);
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        let p = CutProblem::from_component(&nav, &comp, CostParams::default());
        assert_eq!(p.len(), nav.len());
        // Unit 0 is the navigation root (no citations of its own).
        assert_eq!(p.unit_distinct[0], 0);
        let mut s = p.solver();
        let cost = s.solve_full();
        assert!(cost.is_finite() && cost >= 0.0);
    }

    #[test]
    fn forcing_the_optimal_cut_recovers_the_optimal_cost() {
        let c1: Vec<usize> = (0..30).collect();
        let c2: Vec<usize> = (30..60).collect();
        let p = problem(
            vec![None, Some(0), Some(0)],
            vec![vec![], c1, c2],
            CostParams::default(),
        );
        let mut s = p.solver();
        let optimal = s.solve_full();
        let cut = s.best_cut_full().unwrap();
        let forced = s.cost_with_first_cut(p.full_mask(), &cut);
        assert!((forced - optimal).abs() < 1e-9);
        // A suboptimal forced cut can only cost more.
        let worse = s.cost_with_first_cut(p.full_mask(), &[1, 2]);
        assert!(worse >= optimal - 1e-9);
    }

    #[test]
    fn dp_matches_brute_force_on_a_caterpillar() {
        // Spine 0-1-2-3 with a leaf hanging off each spine node.
        let parents = vec![None, Some(0), Some(1), Some(2), Some(0), Some(1), Some(2)];
        let cits = vec![
            vec![0, 1, 2],
            vec![3, 4],
            vec![5, 0],
            vec![6, 7, 8],
            vec![9],
            vec![10, 3],
            vec![11, 12],
        ];
        let params = CostParams {
            lower_threshold: 2,
            upper_threshold: 8,
            ..CostParams::default()
        };
        let p = problem(parents, cits, params);
        let mut s = p.solver();
        let dp = s.solve_full();
        let bf = brute_force_cost(&p, p.full_mask());
        assert!((dp - bf).abs() < 1e-9, "dp {dp} vs brute force {bf}");
    }

    #[test]
    fn myopic_cut_minimizes_the_hand_computed_score() {
        // A star with overlapping citation sets; every cut's §V score is
        // recomputed by hand (sets known from the construction) and the
        // solver's choice must be the arg-min.
        let sets: [Vec<usize>; 4] = [
            vec![0, 1],         // root unit
            (0..20).collect(),  // hot, overlaps root
            (15..40).collect(), // mid, overlaps unit 1
            (38..55).collect(), // cold-ish, nearly disjoint
        ];
        let p = problem(
            vec![None, Some(0), Some(0), Some(0)],
            sets.to_vec(),
            CostParams::default(),
        );
        let total_w: f64 = sets.iter().map(|s| s.len() as f64).sum();
        let distinct_of = |units: &[usize]| -> f64 {
            let mut u: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
            for &i in units {
                u.extend(sets[i].iter().copied());
            }
            u.len() as f64
        };
        let weight_of =
            |units: &[usize]| -> f64 { units.iter().map(|&i| sets[i].len() as f64).sum() };
        // §V score of cutting `lower` on the star (upper = rest ∪ {0}).
        let score = |lower: &[usize]| -> f64 {
            let upper: Vec<usize> = (0..4).filter(|u| !lower.contains(u)).collect();
            let mut s = 1.0; // expand cost
            s += (weight_of(&upper) / total_w).min(1.0) * distinct_of(&upper);
            for &u in lower {
                s += 1.0; // label
                s += (weight_of(&[u]) / total_w).min(1.0) * distinct_of(&[u]);
            }
            s
        };
        let all_cuts: [&[usize]; 7] = [&[1], &[2], &[3], &[1, 2], &[1, 3], &[2, 3], &[1, 2, 3]];
        let (hand_best_cut, hand_best) = all_cuts
            .iter()
            .map(|c| (c.to_vec(), score(c)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        let mut solver = p.solver();
        let (cut, solver_score) = solver.best_cut_myopic(p.full_mask()).expect("multi-unit");
        assert!(
            (solver_score - hand_best).abs() < 1e-9,
            "{solver_score} vs {hand_best}"
        );
        let mut sorted = cut.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, hand_best_cut, "solver cut {cut:?}");
    }

    #[test]
    fn myopic_prefers_revealing_the_fragmenting_hot_unit() {
        // Unit 1 is hot and disjoint from the rest (fragmenting); unit 2
        // duplicates the root's content (revealing it buys nothing).
        let root_c: Vec<usize> = (0..30).collect();
        let hot: Vec<usize> = (30..60).collect();
        let dup: Vec<usize> = (0..30).collect();
        let p = problem(
            vec![None, Some(0), Some(0)],
            vec![root_c, hot, dup],
            CostParams::default(),
        );
        let mut s = p.solver();
        let (cut, _) = s.best_cut_myopic(p.full_mask()).expect("multi-unit");
        assert!(
            cut.contains(&1),
            "the fragmenting hot unit must be revealed: {cut:?}"
        );
        assert!(
            !cut.contains(&2),
            "the pure-duplicate unit stays hidden: {cut:?}"
        );
    }

    #[test]
    fn myopic_none_on_single_unit() {
        let p = problem(vec![None], vec![vec![0, 1]], CostParams::default());
        let mut s = p.solver();
        assert!(s.best_cut_myopic(p.full_mask()).is_none());
    }

    #[test]
    fn subtree_and_parent_accessors() {
        let p = chain();
        assert_eq!(p.subtree_mask_of(0), 0b111);
        assert_eq!(p.subtree_mask_of(1), 0b110);
        assert_eq!(p.subtree_mask_of(2), 0b100);
        assert_eq!(p.parent_of(0), None);
        assert_eq!(p.parent_of(2), Some(1));
    }

    #[test]
    fn monte_carlo_matches_the_dp() {
        // The strongest semantic check we have: 40k simulated §III users
        // making the solver's own cuts must average to the DP's expected
        // cost within ~2%.
        let parents = vec![None, Some(0), Some(0), Some(1), Some(1), Some(2)];
        let cits = vec![
            vec![0, 1],
            (2..12).collect::<Vec<_>>(),
            (10..20).collect::<Vec<_>>(),
            vec![2, 3, 4],
            (5..12).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>(),
        ];
        let params = CostParams {
            planner: crate::cost::Planner::Recursive,
            lower_threshold: 2,
            upper_threshold: 15,
            planning_label_cost: 1.0,
            ..CostParams::default()
        };
        let p = problem(parents, cits, params);
        let mut solver = p.solver();
        let expected = solver.solve_full();

        // A tiny deterministic LCG; the core crate takes no RNG dependency.
        let mut state = 0x853c49e6748fea9bu64;
        let mut coin = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let trials = 40_000;
        let total: f64 = (0..trials)
            .map(|_| simulate_topdown_user(&mut solver, p.full_mask(), &mut coin))
            .sum();
        let mean = total / f64::from(trials);
        let rel = (mean - expected).abs() / expected.max(1e-9);
        assert!(
            rel < 0.02,
            "Monte-Carlo mean {mean:.3} vs DP expectation {expected:.3} (rel {rel:.4})"
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Random trees of 2..=7 units with random small citation sets and
        /// random thresholds.
        fn problem_strategy() -> impl Strategy<Value = CutProblem> {
            (2usize..=7).prop_flat_map(|n| {
                let parents = proptest::collection::vec(0usize..n.max(1), n - 1);
                let cits =
                    proptest::collection::vec(proptest::collection::vec(0usize..12, 0..6), n);
                let thresholds = (0u32..6, 6u32..14);
                (parents, cits, thresholds).prop_map(move |(rawp, cits, (lo, hi))| {
                    // Clamp each unit's parent to a smaller index (pre-order).
                    let mut parents: Vec<Option<usize>> = vec![None];
                    for (i, p) in rawp.into_iter().enumerate() {
                        parents.push(Some(p % (i + 1)));
                    }
                    let params = CostParams {
                        lower_threshold: lo,
                        upper_threshold: hi,
                        planner: crate::cost::Planner::Recursive,
                        ..CostParams::default()
                    };
                    problem(parents, cits, params)
                })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The memoized prefix-bijection DP equals direct antichain
            /// enumeration on every random instance.
            #[test]
            fn dp_equals_brute_force(p in problem_strategy()) {
                let mut s = p.solver();
                let dp = s.solve_full();
                let bf = brute_force_cost(&p, p.full_mask());
                prop_assert!((dp - bf).abs() < 1e-9, "dp {dp} vs bf {bf}");
            }

            /// Any forced first cut is priced at least as high as the
            /// optimum, and the optimal cut reproduces the optimal cost.
            #[test]
            fn forced_cuts_never_beat_the_optimum(p in problem_strategy()) {
                let mut s = p.solver();
                let optimal = s.solve_full();
                if let Some(cut) = s.best_cut_full() {
                    let forced = s.cost_with_first_cut(p.full_mask(), &cut);
                    prop_assert!((forced - optimal).abs() < 1e-9);
                }
                for unit in 1..p.len() {
                    // Single-edge cuts are always valid.
                    let alt = s.cost_with_first_cut(p.full_mask(), &[unit]);
                    prop_assert!(alt >= optimal - 1e-9, "unit {unit}: {alt} < {optimal}");
                }
            }

            /// The myopic planner returns a valid antichain whose upper
            /// component keeps the root.
            #[test]
            fn myopic_cuts_are_valid_antichains(p in problem_strategy()) {
                let mut s = p.solver();
                if let Some((cut, score)) = s.best_cut_myopic(p.full_mask()) {
                    prop_assert!(score.is_finite());
                    prop_assert!(!cut.is_empty());
                    prop_assert!(!cut.contains(&0), "the root is never a lower endpoint");
                    for &a in &cut {
                        for &b in &cut {
                            if a != b {
                                prop_assert_eq!(
                                    p.subtree_mask_of(a) & (1u64 << b),
                                    0,
                                    "nested cut edges {} and {}", a, b
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_on_small_trees() {
        // Tree:       0
        //           / | \
        //          1  2  3
        //         / \     \
        //        4   5     6
        let parents = vec![None, Some(0), Some(0), Some(0), Some(1), Some(1), Some(3)];
        let cits = vec![
            vec![0, 1],
            vec![2, 3, 4],
            vec![5, 6],
            vec![7, 8, 0],
            vec![9, 10, 2],
            vec![11],
            vec![12, 13],
        ];
        let params = CostParams {
            lower_threshold: 2,
            upper_threshold: 9,
            ..CostParams::default()
        };
        let p = problem(parents, cits, params);
        let mut s = p.solver();
        let dp = s.solve_full();
        let bf = brute_force_cost(&p, p.full_mask());
        assert!((dp - bf).abs() < 1e-9, "dp {dp} vs brute force {bf}");
    }
}
