//! Algorithms for selecting the best EdgeCut (paper §VI).
//!
//! Choosing the expected-cost-minimizing valid EdgeCut is NP-complete
//! (§V; see [`crate::complexity`]), so BioNav ships two solvers:
//!
//! * [`opt`] — **Opt-EdgeCut**: an exact dynamic program over component
//!   subtrees, exponential in the tree size and therefore only feasible for
//!   small trees (the paper calls it infeasible beyond ~30 nodes; we cap it
//!   via [`crate::CostParams::max_opt_nodes`]).
//! * [`partition`] — a bottom-up tree partitioner in the style of Kundu &
//!   Misra, used to shrink a component to at most `k` connected
//!   *supernodes*.
//! * [`heuristic`] — **Heuristic-ReducedOpt**: partition the component,
//!   solve the reduced supernode tree exactly with Opt-EdgeCut, and map the
//!   winning cut back onto original navigation-tree edges.

pub mod heuristic;
pub mod opt;
pub mod partition;

pub use heuristic::{heuristic_reduced_opt, ExpandOutcome};
pub use opt::CutProblem;
pub use partition::{partition_component, partition_until, Partition};
