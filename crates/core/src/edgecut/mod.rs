//! Algorithms for selecting the best EdgeCut (paper §VI).
//!
//! Choosing the expected-cost-minimizing valid EdgeCut is NP-complete
//! (§V; see [`crate::complexity`]), so BioNav ships two solvers:
//!
//! * [`opt`] — **Opt-EdgeCut**: an exact dynamic program over component
//!   subtrees, exponential in the tree size and therefore only feasible for
//!   small trees (the paper calls it infeasible beyond ~30 nodes; we cap it
//!   via [`crate::CostParams::max_opt_nodes`]).
//! * [`partition`] — a bottom-up tree partitioner in the style of Kundu &
//!   Misra, used to shrink a component to at most `k` connected
//!   *supernodes*.
//! * [`heuristic`] — **Heuristic-ReducedOpt**: partition the component,
//!   solve the reduced supernode tree exactly with Opt-EdgeCut, and map the
//!   winning cut back onto original navigation-tree edges.

pub mod heuristic;
pub mod opt;
pub mod partition;

pub use heuristic::{heuristic_reduced_opt, ExpandOutcome};
pub use opt::{CutProblem, SolveCache};
pub use partition::{partition_component, partition_until, Partition};

/// Thread-local instrumentation counters for the EXPAND pipeline.
///
/// The single-pass planning contract (ISSUE 2) is *load-bearing*: a fresh
/// EXPAND must run exactly one [`partition_until`] loop and one reduced
/// solve, and a retained-plan EXPAND must run zero partitionings. These
/// counters let tests assert that contract without instrumenting release
/// structures — they are `thread_local` `Cell`s, so they cost two
/// increments on the hot path, add no locking, and keep every navigation
/// type `Send + Sync` (the counters live in thread-local statics, not in
/// any struct).
pub mod counters {
    use std::cell::Cell;

    thread_local! {
        static PARTITION_RUNS: Cell<u64> = const { Cell::new(0) };
        static PLAN_SOLVES: Cell<u64> = const { Cell::new(0) };
    }

    /// Resets both counters for the current thread.
    pub fn reset() {
        PARTITION_RUNS.with(|c| c.set(0));
        PLAN_SOLVES.with(|c| c.set(0));
    }

    /// Number of `partition_until` pipeline runs on this thread since the
    /// last [`reset`]. Each run covers the whole M-stepping loop, so one
    /// fresh plan counts as exactly one run.
    pub fn partition_runs() -> u64 {
        PARTITION_RUNS.with(|c| c.get())
    }

    /// Number of fresh reduced-problem solves on this thread since the
    /// last [`reset`]. Retained-plan cuts served from the memo do not
    /// count.
    pub fn plan_solves() -> u64 {
        PLAN_SOLVES.with(|c| c.get())
    }

    pub(crate) fn note_partition_run() {
        PARTITION_RUNS.with(|c| c.set(c.get() + 1));
    }

    pub(crate) fn note_plan_solve() {
        PLAN_SOLVES.with(|c| c.set(c.get() + 1));
    }
}
