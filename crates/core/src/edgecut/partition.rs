//! Bottom-up tree partitioning (paper §VI, after Kundu & Misra's
//! minimum-cardinality tree partitioning).
//!
//! Heuristic-ReducedOpt shrinks a component subtree to at most `k`
//! connected partitions so the exact solver can run on the partition
//! (super-node) tree in interactive time. The algorithm processes the tree
//! bottom-up: each node accumulates the weight of its still-attached
//! children clusters and, while its cluster exceeds the weight threshold
//! `M`, detaches the heaviest child cluster as a finished partition. The
//! paper sets `M = W(C)/k` and re-runs with a gradually increased `M` until
//! at most `k` partitions remain.
//!
//! Node weights are `max(1, |R(n)|)` — the paper uses `|R(n)|`, and in a
//! navigation tree every non-root node carries results; the floor of 1 only
//! matters for the (possibly empty) root and keeps zero-weight chains from
//! producing unbounded partition counts.
//!
//! # Allocation discipline
//!
//! [`partition_until`] runs the clustering pass many times while it steps
//! `M`; on MeSH-scale components the per-pass `HashMap` membership index
//! and fresh buffers used to dominate fresh-EXPAND latency. The `*_in`
//! variants therefore thread a [`NavScratch`] arena (DESIGN.md §5c)
//! through the pass: membership is an epoch-stamped node-indexed map, the
//! cluster buffers are reused across passes, and only the **final** pass
//! materializes [`Partition`] values. The plain entry points wrap the
//! `*_in` forms with a throwaway arena and produce bit-identical output.

use crate::edgecut::counters;
use crate::navtree::{NavNodeId, NavigationTree};
use crate::scratch::{NavScratch, NodeMap, PartitionArena};

/// One connected partition of a component subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The shallowest node of the partition (its connection point upward).
    pub root: NavNodeId,
    /// Every member node, in navigation pre-order (root first).
    pub nodes: Vec<NavNodeId>,
    /// Total weight `Σ max(1, |R(n)|)`.
    pub weight: u64,
}

fn node_weight(nav: &NavigationTree, n: NavNodeId) -> u64 {
    u64::from(nav.results_count(n)).max(1)
}

/// Runs one bottom-up clustering pass with threshold `max_weight`.
///
/// On return `map` holds the component membership index (node slot →
/// component index, stamped for the current epoch), and `arena.detached`
/// holds the component indices of the partition roots — the component root
/// (index 0) last. `arena.cluster_weight` / `arena.cluster_children` are
/// pass-local working state.
fn cluster_pass(
    nav: &NavigationTree,
    comp: &[NavNodeId],
    max_weight: u64,
    map: &mut NodeMap,
    arena: &mut PartitionArena,
) {
    // Epoch-stamped membership: node slot -> component index.
    map.begin(nav.len());
    for (i, &n) in comp.iter().enumerate() {
        map.set(n.index(), i as u32);
    }

    // cluster_weight[i]: weight of the still-attached cluster rooted at
    // comp[i]; cluster_children[i]: attached child cluster roots.
    if arena.cluster_weight.len() < comp.len() {
        arena.cluster_weight.resize(comp.len(), 0);
        arena.cluster_children.resize(comp.len(), Vec::new());
    }
    for (i, &n) in comp.iter().enumerate() {
        arena.cluster_weight[i] = node_weight(nav, n);
        arena.cluster_children[i].clear();
    }
    arena.detached.clear();

    // Pre-order guarantees children come after parents; process in reverse.
    for i in (0..comp.len()).rev() {
        for &c in nav.children(comp[i]) {
            if let Some(ci) = map.get(c.index()) {
                let ci = ci as usize;
                arena.cluster_children[i].push(ci);
                arena.cluster_weight[i] += arena.cluster_weight[ci];
            }
        }
        while arena.cluster_weight[i] > max_weight && !arena.cluster_children[i].is_empty() {
            // Detach the heaviest child cluster as a finished partition.
            // `max_by_key` keeps the *last* maximum on ties, matching the
            // original implementation's tie-breaking exactly.
            let (pos, &heaviest) = arena.cluster_children[i]
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| arena.cluster_weight[c])
                // lint: allow(no-unwrap) — the while condition just checked
                // cluster_children[i] is non-empty
                .expect("non-empty");
            arena.cluster_children[i].swap_remove(pos);
            let w = arena.cluster_weight[heaviest];
            arena.cluster_weight[i] -= w;
            arena.detached.push(heaviest);
        }
    }
    arena.detached.push(0); // the root's remaining cluster
}

/// Materializes the partitions recorded in `arena.detached` by the most
/// recent [`cluster_pass`] over the same `comp`/`map` state.
fn materialize(
    nav: &NavigationTree,
    comp: &[NavNodeId],
    map: &NodeMap,
    arena: &mut PartitionArena,
) -> Vec<Partition> {
    // partition_of[i]: partition id of comp[i]; u32::MAX = unassigned.
    arena.partition_of.clear();
    arena.partition_of.resize(comp.len(), u32::MAX);
    for (pid, &root_idx) in arena.detached.iter().enumerate() {
        arena.partition_of[root_idx] = pid as u32;
    }
    // Pre-order pass: a node inherits its parent's partition unless it is a
    // partition root itself.
    for (i, &n) in comp.iter().enumerate().skip(1) {
        if arena.partition_of[i] != u32::MAX {
            continue;
        }
        // lint: allow(no-unwrap) — skip(1) leaves only non-root members,
        // whose nav parents exist by tree construction
        let parent = nav.parent(n).expect("non-root nodes have parents");
        let pi = map
            .get(parent.index())
            // lint: allow(no-unwrap) — components are parent-closed: the
            // stamped map covers every member's parent (debug-checked below)
            .expect("parents of non-root component members are in the component")
            as usize;
        debug_assert!(
            arena.partition_of[pi] != u32::MAX,
            "pre-order invariant: the parent was assigned before its child"
        );
        arena.partition_of[i] = arena.partition_of[pi];
    }

    let mut parts: Vec<Partition> = arena
        .detached
        .iter()
        .map(|&ri| Partition {
            root: comp[ri],
            nodes: Vec::new(),
            weight: 0,
        })
        .collect();
    for (i, &n) in comp.iter().enumerate() {
        let pid = arena.partition_of[i];
        debug_assert_ne!(pid, u32::MAX, "every node lands in a partition");
        parts[pid as usize].nodes.push(n);
        parts[pid as usize].weight += node_weight(nav, n);
    }
    // Root partition first, the rest in pre-order of their roots.
    parts.sort_by_key(|p| {
        if p.root == comp[0] {
            (0, p.root.0)
        } else {
            (1, p.root.0)
        }
    });
    parts
}

/// Partitions the component given by `comp` (its nodes in navigation
/// pre-order, `comp[0]` being the component root) with weight threshold
/// `max_weight`. Every partition is connected; partitions may exceed
/// `max_weight` only when a single node does.
pub fn partition_component(
    nav: &NavigationTree,
    comp: &[NavNodeId],
    max_weight: u64,
) -> Vec<Partition> {
    let mut scratch = NavScratch::new();
    partition_component_in(nav, comp, max_weight, &mut scratch)
}

/// [`partition_component`] with a caller-owned scratch arena; allocates
/// nothing beyond the returned partitions once the arena has warmed up.
pub fn partition_component_in(
    nav: &NavigationTree,
    comp: &[NavNodeId],
    max_weight: u64,
    scratch: &mut NavScratch,
) -> Vec<Partition> {
    assert!(!comp.is_empty(), "cannot partition an empty component");
    let max_weight = max_weight.max(1);
    let (map, arena) = scratch.parts();
    cluster_pass(nav, comp, max_weight, map, arena);
    materialize(nav, comp, map, arena)
}

/// The paper's reduction loop: start from `M = W(C)/k` and increase `M`
/// gradually until at most `k` partitions are obtained.
pub fn partition_until(nav: &NavigationTree, comp: &[NavNodeId], k: usize) -> Vec<Partition> {
    let mut scratch = NavScratch::new();
    partition_until_in(nav, comp, k, &mut scratch)
}

/// [`partition_until`] with a caller-owned scratch arena. Intermediate
/// `M`-steps only count detached clusters; partitions are materialized once
/// for the accepted threshold, so the loop allocates nothing per step.
pub fn partition_until_in(
    nav: &NavigationTree,
    comp: &[NavNodeId],
    k: usize,
    scratch: &mut NavScratch,
) -> Vec<Partition> {
    assert!(k >= 1);
    assert!(!comp.is_empty(), "cannot partition an empty component");
    counters::note_partition_run();
    let total: u64 = comp.iter().map(|&n| node_weight(nav, n)).sum();
    let mut m = (total / k as u64).max(1);
    let (map, arena) = scratch.parts();
    loop {
        cluster_pass(nav, comp, m.max(1), map, arena);
        if arena.detached.len() <= k {
            return materialize(nav, comp, map, arena);
        }
        // 15% steps track the smallest M reaching ≤ k reasonably closely,
        // which keeps the reduced tree as fine-grained as allowed.
        m = (m + m / 7).max(m + 1);
        if m >= total {
            cluster_pass(nav, comp, total.max(1), map, arena);
            return materialize(nav, comp, map, arena);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bionav_medline::{Citation, CitationId, CitationStore};
    use bionav_mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};

    fn tn(s: &str) -> TreeNumber {
        TreeNumber::parse(s).unwrap()
    }

    /// Builds a navigation tree shaped like the descriptor list, attaching
    /// `counts[i]` fresh citations to descriptor `i+1`.
    fn nav_with(shape: &[(&str, &str)], counts: &[u32]) -> NavigationTree {
        let descs: Vec<Descriptor> = shape
            .iter()
            .enumerate()
            .map(|(i, (label, t))| Descriptor::new(DescriptorId(i as u32 + 1), *label, vec![tn(t)]))
            .collect();
        let h = ConceptHierarchy::from_descriptors(&descs).unwrap();
        let mut store = CitationStore::new();
        let mut next = 1u32;
        let mut results = Vec::new();
        for (i, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                store
                    .insert(Citation::new(
                        CitationId(next),
                        "t",
                        vec![],
                        vec![DescriptorId(i as u32 + 1)],
                        vec![],
                    ))
                    .unwrap();
                results.push(CitationId(next));
                next += 1;
            }
        }
        NavigationTree::build(&h, &store, &results)
    }

    fn chain_tree() -> NavigationTree {
        nav_with(
            &[
                ("a", "A01"),
                ("b", "A01.100"),
                ("c", "A01.100.100"),
                ("d", "A01.100.100.100"),
            ],
            &[4, 4, 4, 4],
        )
    }

    #[test]
    fn partitions_cover_exactly_and_are_connected() {
        let nav = chain_tree();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        let parts = partition_component(&nav, &comp, 5);
        let mut all: Vec<NavNodeId> = parts.iter().flat_map(|p| p.nodes.clone()).collect();
        all.sort();
        let mut expected: Vec<NavNodeId> = comp.clone();
        expected.sort();
        assert_eq!(
            all, expected,
            "partitions must cover the component exactly once"
        );
        for p in &parts {
            // Connectivity: every member other than the partition root has
            // its navigation parent inside the same partition.
            for &n in &p.nodes {
                if n != p.root {
                    let parent = nav.parent(n).unwrap();
                    assert!(p.nodes.contains(&parent), "partition must be connected");
                }
            }
        }
    }

    #[test]
    fn weight_threshold_is_respected_when_splittable() {
        let nav = chain_tree();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        for m in [4u64, 5, 8, 9, 100] {
            let parts = partition_component(&nav, &comp, m);
            for p in &parts {
                assert!(
                    p.weight <= m || p.nodes.len() == 1,
                    "partition weight {} exceeds M={m} with {} nodes",
                    p.weight,
                    p.nodes.len()
                );
            }
        }
    }

    #[test]
    fn huge_threshold_gives_one_partition() {
        let nav = chain_tree();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        let parts = partition_component(&nav, &comp, 1_000);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].root, NavNodeId::ROOT);
    }

    #[test]
    fn tiny_threshold_isolates_every_node() {
        let nav = chain_tree();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        let parts = partition_component(&nav, &comp, 1);
        assert_eq!(parts.len(), comp.len());
    }

    #[test]
    fn root_partition_comes_first() {
        let nav = chain_tree();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        for m in [1u64, 4, 9, 1000] {
            let parts = partition_component(&nav, &comp, m);
            assert_eq!(parts[0].root, comp[0]);
        }
    }

    #[test]
    fn partition_until_meets_the_bound() {
        // A wider tree: root with 4 branches of 3 nodes each.
        let nav = nav_with(
            &[
                ("a", "A01"),
                ("a1", "A01.100"),
                ("a2", "A01.100.100"),
                ("b", "B01"),
                ("b1", "B01.100"),
                ("b2", "B01.100.100"),
                ("c", "C01"),
                ("c1", "C01.100"),
                ("c2", "C01.100.100"),
                ("d", "D01"),
                ("d1", "D01.100"),
                ("d2", "D01.100.100"),
            ],
            &[3, 5, 2, 4, 1, 6, 2, 2, 2, 7, 1, 1],
        );
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        for k in [2usize, 3, 5, 8, 10] {
            let parts = partition_until(&nav, &comp, k);
            assert!(parts.len() <= k, "k={k} gave {} partitions", parts.len());
            assert!(!parts.is_empty());
        }
    }

    #[test]
    fn single_node_component_is_one_partition() {
        let nav = chain_tree();
        let leaf = nav
            .iter_preorder()
            .find(|&n| nav.children(n).is_empty())
            .unwrap();
        let parts = partition_component(&nav, &[leaf], 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].nodes, vec![leaf]);
        let parts = partition_until(&nav, &[leaf], 10);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn oversize_single_nodes_become_their_own_partition() {
        // One node carries far more weight than the threshold; it cannot be
        // split, so it stands alone and the invariant "weight ≤ M unless a
        // single node" holds.
        let nav = nav_with(
            &[("a", "A01"), ("heavy", "A01.100"), ("b", "A01.200")],
            &[2, 50, 2],
        );
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        let parts = partition_component(&nav, &comp, 5);
        let heavy = nav.find_by_label("heavy").unwrap();
        let heavy_part = parts.iter().find(|p| p.nodes.contains(&heavy)).unwrap();
        assert_eq!(heavy_part.nodes, vec![heavy]);
        assert!(heavy_part.weight > 5);
    }

    #[test]
    fn weights_floor_at_one_for_the_empty_root() {
        let nav = chain_tree();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        let parts = partition_component(&nav, &comp, 1);
        let root_part = parts.iter().find(|p| p.root == NavNodeId::ROOT).unwrap();
        assert_eq!(root_part.weight, 1); // the root has no results
    }

    #[test]
    fn partitioning_a_subcomponent_works() {
        let nav = chain_tree();
        // Component = subtree of the first child of root.
        let sub_root = nav.children(NavNodeId::ROOT)[0];
        let comp = nav.subtree_nodes(sub_root);
        let parts = partition_component(&nav, &comp, 6);
        assert!(parts.len() >= 2);
        assert_eq!(parts[0].root, sub_root);
        let n: usize = parts.iter().map(|p| p.nodes.len()).sum();
        assert_eq!(n, comp.len());
    }

    #[test]
    fn arena_reuse_matches_fresh_scratch() {
        // Re-using one arena across many calls with different thresholds
        // and components must give the same answer as throwaway state.
        let nav = chain_tree();
        let comp: Vec<NavNodeId> = nav.iter_preorder().collect();
        let sub_root = nav.children(NavNodeId::ROOT)[0];
        let sub = nav.subtree_nodes(sub_root);
        let mut scratch = NavScratch::new();
        for m in [1u64, 4, 5, 8, 9, 100, 1000] {
            let fresh = partition_component(&nav, &comp, m);
            let reused = partition_component_in(&nav, &comp, m, &mut scratch);
            assert_eq!(fresh, reused, "M={m} full component");
            let fresh = partition_component_in(&nav, &sub, m, &mut NavScratch::new());
            let reused = partition_component_in(&nav, &sub, m, &mut scratch);
            assert_eq!(fresh, reused, "M={m} subcomponent");
        }
        for k in [1usize, 2, 3, 7, 50] {
            let fresh = partition_until(&nav, &comp, k);
            let reused = partition_until_in(&nav, &comp, k, &mut scratch);
            assert_eq!(fresh, reused, "k={k}");
        }
    }
}
