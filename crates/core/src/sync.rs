//! Synchronization shim for the concurrent serving stack (DESIGN.md §5d).
//!
//! Every lock and atomic that participates in a cross-thread protocol —
//! the sharded [`crate::telemetry::LatencyHistogram`], the
//! [`crate::session::CutCache`], and the [`crate::engine::Engine`] session
//! table and gauges — imports its primitives from here instead of naming
//! `parking_lot` / `std::sync::atomic` directly.
//!
//! * In normal builds this re-exports the real types (zero-cost).
//! * Under `RUSTFLAGS='--cfg interleave'` it swaps in the modeled types from
//!   the vendored [`interleave`] checker, so the `cfg(interleave)`-gated
//!   model tests (`tests/interleave_models.rs`) explore the *production*
//!   code paths — not hand-copied replicas — under a bounded-exhaustive
//!   scheduler. Outside a model run the modeled types pass through to their
//!   `std` behavior, so the ordinary unit tests still pass in an
//!   interleave-cfg'd build.
//!
//! The solver memo inside `edgecut::heuristic::ReducedPlan` intentionally
//! stays on `parking_lot` directly: it is per-plan internal state whose
//! interleavings are not part of the modeled protocols, and keeping it out
//! of the shim keeps the model's schedule space small.

#[cfg(not(interleave))]
pub(crate) use parking_lot::Mutex;
#[cfg(not(interleave))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[cfg(interleave)]
pub(crate) use interleave::sync::{AtomicU64, AtomicUsize, Mutex, Ordering};
