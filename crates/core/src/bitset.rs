use std::fmt;

/// A fixed-universe bitset over the *local* citation indices of one query
/// result.
///
/// Navigation trees remap the citations of a query result onto dense indices
/// `0..universe`, so per-node result lists and component-subtree unions
/// become word-parallel bit operations. Duplicate handling — the crux of the
/// paper's cost model — reduces to comparing `Σ |R(m)|` with `|∪ R(m)|`.
#[derive(Clone, PartialEq, Eq)]
pub struct CitSet {
    words: Vec<u64>,
    universe: usize,
}

impl CitSet {
    /// An empty set over `universe` possible citations.
    pub fn new(universe: usize) -> Self {
        CitSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// The universe size this set was created with.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Inserts a local citation index.
    ///
    /// # Panics
    /// Panics if `idx >= universe`.
    #[inline]
    pub fn insert(&mut self, idx: usize) {
        assert!(
            idx < self.universe,
            "citation index {idx} out of universe {}",
            self.universe
        );
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        idx < self.universe && self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of elements.
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∪= other`.
    ///
    /// # Panics
    /// Panics on universe mismatch (sets from different queries).
    pub fn union_with(&mut self, other: &CitSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `|self ∪ other|` without materializing the union.
    pub fn union_count(&self, other: &CitSet) -> u32 {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones())
            .sum()
    }

    /// `|self ∩ other|`.
    pub fn intersect_count(&self, other: &CitSet) -> u32 {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Iterates over the contained indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Builds the union of several sets over the same universe.
    pub fn union_of<'a, I: IntoIterator<Item = &'a CitSet>>(universe: usize, sets: I) -> CitSet {
        let mut out = CitSet::new(universe);
        for s in sets {
            out.union_with(s);
        }
        out
    }
}

impl fmt::Debug for CitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CitSet({}/{})", self.count(), self.universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = CitSet::new(130);
        for i in [0, 63, 64, 65, 129] {
            s.insert(i);
        }
        assert_eq!(s.count(), 5);
        assert!(s.contains(64));
        assert!(!s.contains(1));
        assert!(!s.contains(999));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        CitSet::new(10).insert(10);
    }

    #[test]
    fn union_and_counts() {
        let mut a = CitSet::new(100);
        let mut b = CitSet::new(100);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        assert_eq!(a.union_count(&b), 3);
        assert_eq!(a.intersect_count(&b), 1);
        a.union_with(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = CitSet::new(200);
        let vals = [5usize, 64, 66, 190];
        for &v in &vals {
            s.insert(v);
        }
        let collected: Vec<usize> = s.iter().collect();
        assert_eq!(collected, vals);
    }

    #[test]
    fn union_of_many() {
        let mut a = CitSet::new(16);
        let mut b = CitSet::new(16);
        a.insert(0);
        b.insert(15);
        let u = CitSet::union_of(16, [&a, &b]);
        assert_eq!(u.count(), 2);
        assert!(u.contains(0) && u.contains(15));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universes_panic() {
        let a = CitSet::new(10);
        let b = CitSet::new(20);
        a.union_count(&b);
    }

    #[test]
    fn zero_universe_is_fine() {
        let s = CitSet::new(0);
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn exact_word_boundary_universe() {
        let mut s = CitSet::new(64);
        s.insert(0);
        s.insert(63);
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63]);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// CitSet agrees with a BTreeSet model on every operation.
            #[test]
            fn matches_btreeset_model(
                xs in proptest::collection::vec(0usize..200, 0..60),
                ys in proptest::collection::vec(0usize..200, 0..60),
            ) {
                let mut a = CitSet::new(200);
                let mut b = CitSet::new(200);
                let ma: BTreeSet<usize> = xs.iter().copied().collect();
                let mb: BTreeSet<usize> = ys.iter().copied().collect();
                for &x in &xs { a.insert(x); }
                for &y in &ys { b.insert(y); }
                prop_assert_eq!(a.count() as usize, ma.len());
                prop_assert_eq!(a.iter().collect::<Vec<_>>(), ma.iter().copied().collect::<Vec<_>>());
                prop_assert_eq!(a.union_count(&b) as usize, ma.union(&mb).count());
                prop_assert_eq!(a.intersect_count(&b) as usize, ma.intersection(&mb).count());
                let mut u = a.clone();
                u.union_with(&b);
                prop_assert_eq!(u.count() as usize, ma.union(&mb).count());
                for x in 0..200 {
                    prop_assert_eq!(a.contains(x), ma.contains(&x));
                }
            }
        }
    }
}
