//! Deterministic, seeded failpoint registry + panic isolation
//! (DESIGN.md §5f).
//!
//! BioNav's serving engine must answer every EXPAND, fast, even when a
//! solver hits a pathological component or a worker thread dies. This
//! module provides the two primitives the fault-tolerance layer is built
//! on:
//!
//! 1. **Failpoints** — named injection sites ([`FailSite`]) threaded
//!    through the serve path (solver entry, cut-cache probe, tree build,
//!    lazy subtree materialization, session-lock acquisition, pool
//!    workers). A chaos test arms a seeded
//!    [`FaultPlan`]; each site then fires a [`Fault`] on a deterministic
//!    pseudo-random schedule. **Disarmed (the production default), a
//!    failpoint costs exactly one relaxed atomic load** — the same
//!    discipline as the [`trace`](crate::trace) span sites, and covered by
//!    the same `bench_guard` overhead gate.
//! 2. **Panic isolation** — [`isolate`] is the *only* place in first-party
//!    code where `catch_unwind` appears (enforced by the `no-catch-unwind`
//!    lint rule). The worker pool and the engine's EXPAND path run
//!    potentially-panicking work through it, convert escaped panics into
//!    typed errors, and quarantine the affected session instead of
//!    aborting the batch.
//!
//! Determinism contract: whether the *n*-th evaluation of a site fires is
//! a pure function of `(plan seed, site, n)`. Under concurrency the
//! assignment of ordinals to threads is scheduling-dependent, but the
//! fired *set* — and therefore the fault counts a chaos run observes — is
//! fixed by the seed.
//!
//! Under `--cfg interleave` the registry compiles to no-ops ([`hit`]
//! returns `None`, [`isolate`] runs its closure directly) so the
//! interleave models keep their schedule space focused on the lock
//! protocols; quarantine bookkeeping is modeled through a dedicated engine
//! hook instead.

// The registry globals are deliberately *plain std atomics*, not the
// `crate::sync` interleave shim: modeling them would multiply every engine
// schedule by the (advisory) arm state without testing any protocol.
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named failpoint site in the serve path.
///
/// Discriminants are stable indices into the registry's per-site state;
/// adding a site means appending — never reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum FailSite {
    /// Entry of the EXPAND planning pipeline (before partition + solve).
    SolverEntry = 0,
    /// The cross-session [`CutCache`](crate::session::CutCache) probe.
    CutCacheProbe = 1,
    /// Navigation-tree construction on a tree-cache miss.
    TreeBuild = 2,
    /// Per-session lock acquisition inside `Engine::expand`.
    SessionLock = 3,
    /// A worker-pool task body (`engine::pool::scoped_map`).
    PoolWorker = 4,
    /// First-touch materialization of a lazy navigation-tree subtree
    /// (DESIGN.md §5g). Accessors have no error channel, so any armed
    /// fault here fires as an injected panic inside the caller's
    /// [`isolate`] region.
    TreeMaterialize = 5,
}

impl FailSite {
    /// Number of sites (length of [`FailSite::ALL`]).
    pub const COUNT: usize = 6;

    /// Every site, indexed by discriminant.
    pub const ALL: [FailSite; FailSite::COUNT] = [
        FailSite::SolverEntry,
        FailSite::CutCacheProbe,
        FailSite::TreeBuild,
        FailSite::SessionLock,
        FailSite::PoolWorker,
        FailSite::TreeMaterialize,
    ];

    /// Stable snake_case name (docs, panic messages, failpoint catalog).
    pub fn name(self) -> &'static str {
        match self {
            FailSite::SolverEntry => "solver_entry",
            FailSite::CutCacheProbe => "cut_cache_probe",
            FailSite::TreeBuild => "tree_build",
            FailSite::SessionLock => "session_lock",
            FailSite::PoolWorker => "pool_worker",
            FailSite::TreeMaterialize => "tree_materialize",
        }
    }
}

/// What an armed failpoint does when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the site (caught by [`isolate`]; the session is
    /// quarantined / the pool task reports a typed `WorkerPanicked`
    /// from `engine::pool`).
    Panic,
    /// Fail the site with a typed error (e.g. a refused probe or a
    /// `SessionBusy`); the caller takes its error path.
    Error,
    /// Pretend the site's deadline budget is already exhausted; EXPAND
    /// callers drop onto the degradation ladder.
    Deadline,
}

impl Fault {
    fn encode(self) -> u64 {
        match self {
            Fault::Panic => 0,
            Fault::Error => 1,
            Fault::Deadline => 2,
        }
    }

    // Under `--cfg interleave` the armed fast path is compiled out, so the
    // decoder has no caller there.
    #[cfg_attr(interleave, allow(dead_code))]
    fn decode(v: u64) -> Fault {
        match v {
            0 => Fault::Panic,
            1 => Fault::Error,
            _ => Fault::Deadline,
        }
    }
}

/// One site's schedule inside a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SitePlan {
    /// Fire roughly every `period`-th evaluation (pseudo-randomly, seeded);
    /// `0` disables the site. `1` fires on every evaluation.
    pub period: u64,
    /// What firing does.
    pub action: Fault,
    /// Stop firing after this many fires; `0` means unbounded.
    pub limit: u64,
}

impl SitePlan {
    const OFF: SitePlan = SitePlan {
        period: 0,
        action: Fault::Error,
        limit: 0,
    };
}

/// A seeded schedule over every [`FailSite`]; arm it with [`arm`] or
/// [`scoped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixing into every site's firing schedule.
    pub seed: u64,
    sites: [SitePlan; FailSite::COUNT],
    /// Encoded shard filter: 0 = fire on every shard, `s + 1` = fire only
    /// on operations running under [`enter_shard`]`(s)`.
    shard_filter: u64,
}

impl FaultPlan {
    /// A plan with every site disabled (arm it and nothing fires).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: [SitePlan::OFF; FailSite::COUNT],
            shard_filter: 0,
        }
    }

    /// Restrict every armed site to operations scoped to `shard` (see
    /// [`enter_shard`]): evaluations on other shards — or outside any
    /// shard scope — are invisible to the schedule, so the fired set on
    /// the targeted shard is unchanged by traffic elsewhere. This is how
    /// the chaos suite storms one shard of a
    /// [`ShardedEngine`](crate::shard::ShardedEngine) while proving its
    /// siblings stay bit-identical to a clean pass.
    pub fn only_shard(mut self, shard: usize) -> Self {
        self.shard_filter = shard as u64 + 1;
        self
    }

    /// Enable `site` to fire `action` roughly every `period`-th evaluation
    /// (builder style).
    pub fn site(mut self, site: FailSite, period: u64, action: Fault) -> Self {
        self.sites[site as usize] = SitePlan {
            period,
            action,
            limit: 0,
        };
        self
    }

    /// Like [`FaultPlan::site`], but stop after `limit` fires.
    pub fn site_limited(mut self, site: FailSite, period: u64, action: Fault, limit: u64) -> Self {
        self.sites[site as usize] = SitePlan {
            period,
            action,
            limit,
        };
        self
    }
}

// ---------------------------------------------------------------------------
// Registry state
// ---------------------------------------------------------------------------

/// Master switch: 0 = disarmed (the single relaxed load every failpoint
/// costs in production), nonzero = armed.
static ARMED: AtomicU64 = AtomicU64::new(0);

/// The armed plan's seed.
static SEED: AtomicU64 = AtomicU64::new(0);

// A const *initializer* (not a shared item): each use below expands to a
// fresh atomic, which is exactly what the per-site arrays need.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

/// Per-site `period` (0 = site disabled).
static SITE_PERIOD: [AtomicU64; FailSite::COUNT] = [ZERO; FailSite::COUNT];
/// Per-site encoded [`Fault`] action.
static SITE_ACTION: [AtomicU64; FailSite::COUNT] = [ZERO; FailSite::COUNT];
/// Per-site fire cap (0 = unbounded).
static SITE_LIMIT: [AtomicU64; FailSite::COUNT] = [ZERO; FailSite::COUNT];
/// Per-site evaluation ordinal since the last [`arm`].
static SITE_HITS: [AtomicU64; FailSite::COUNT] = [ZERO; FailSite::COUNT];
/// Per-site fire count since the last [`arm`].
static SITE_FIRES: [AtomicU64; FailSite::COUNT] = [ZERO; FailSite::COUNT];
/// Armed plan's encoded shard filter (see [`FaultPlan::only_shard`]).
static SHARD_FILTER: AtomicU64 = AtomicU64::new(0);

/// Sentinel for "not inside any shard scope".
const UNSCOPED: u64 = u64::MAX;

thread_local! {
    // Which shard the current thread's in-flight engine operation belongs
    // to. A plain thread-local Cell (not the interleave shim): scope
    // tagging is advisory fault-plane routing, never a synchronization
    // protocol.
    static CURRENT_SHARD: Cell<u64> = const { Cell::new(UNSCOPED) };
}

/// RAII guard returned by [`enter_shard`]; restores the previous scope on
/// drop (scopes nest, and panic unwinding through an [`isolate`] region
/// still restores the outer scope).
pub struct ShardScope {
    prev: u64,
}

impl Drop for ShardScope {
    fn drop(&mut self) {
        CURRENT_SHARD.with(|c| c.set(self.prev));
    }
}

/// Tag the current thread's in-flight work as belonging to `shard` until
/// the returned guard drops. [`ShardedEngine`](crate::shard::ShardedEngine)
/// shards tag every public engine operation so a
/// [`FaultPlan::only_shard`]-scoped plan can storm one shard in isolation.
#[must_use = "the scope ends when the guard drops"]
pub fn enter_shard(shard: usize) -> ShardScope {
    let prev = CURRENT_SHARD.with(|c| c.replace(shard as u64));
    ShardScope { prev }
}

/// The shard the current thread's in-flight operation is scoped to, if any.
pub fn current_shard() -> Option<usize> {
    let s = CURRENT_SHARD.with(|c| c.get());
    (s != UNSCOPED).then_some(s as usize)
}

/// Arm the registry with `plan`. Counters reset; sites observe the new
/// schedule on their next evaluation. Chaos tests serialize around the
/// registry (it is process-global); see `tests/chaos.rs`.
pub fn arm(plan: FaultPlan) {
    // Ordering: Relaxed throughout — the registry is advisory test
    // machinery; no data is published through it, and racing evaluations
    // may see the old or new plan, both of which are valid schedules.
    SEED.store(plan.seed, Ordering::Relaxed);
    for site in FailSite::ALL {
        let i = site as usize;
        let sp = plan.sites[i];
        // Ordering: Relaxed — see the comment on `arm` above.
        SITE_PERIOD[i].store(sp.period, Ordering::Relaxed);
        SITE_ACTION[i].store(sp.action.encode(), Ordering::Relaxed);
        SITE_LIMIT[i].store(sp.limit, Ordering::Relaxed);
        // Ordering: Relaxed — counter resets under the same advisory plan.
        SITE_HITS[i].store(0, Ordering::Relaxed);
        SITE_FIRES[i].store(0, Ordering::Relaxed);
    }
    // Ordering: Relaxed — advisory plan field, same contract as the rest.
    SHARD_FILTER.store(plan.shard_filter, Ordering::Relaxed);
    // Ordering: Relaxed — the master switch is advisory (see above); it is
    // stored last so a site that sees it armed finds a complete-enough
    // plan (any interleaving yields a valid schedule).
    ARMED.store(1, Ordering::Relaxed);
}

/// Disarm the registry; every failpoint returns to its one-relaxed-load
/// fast path. Fire/hit counters are preserved until the next [`arm`].
pub fn disarm() {
    // Ordering: Relaxed — advisory switch, same contract as `arm`.
    ARMED.store(0, Ordering::Relaxed);
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    // Ordering: Relaxed — advisory switch, same contract as `arm`.
    ARMED.load(Ordering::Relaxed) != 0
}

/// RAII guard returned by [`scoped`]: disarms on drop (panic-safe, so a
/// failing chaos assertion never leaves the registry armed for the next
/// test).
pub struct ArmGuard(());

impl Drop for ArmGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// [`arm`] with automatic [`disarm`] when the returned guard drops.
#[must_use = "the registry disarms when the guard drops"]
pub fn scoped(plan: FaultPlan) -> ArmGuard {
    arm(plan);
    ArmGuard(())
}

/// How many times `site` has fired since the last [`arm`].
pub fn fires(site: FailSite) -> u64 {
    // Ordering: Relaxed — telemetry counter, nothing ordered through it.
    SITE_FIRES[site as usize].load(Ordering::Relaxed)
}

/// How many times `site` has been evaluated (armed) since the last [`arm`].
pub fn hits_seen(site: FailSite) -> u64 {
    // Ordering: Relaxed — telemetry counter, nothing ordered through it.
    SITE_HITS[site as usize].load(Ordering::Relaxed)
}

/// SplitMix64 finalizer: the deterministic per-evaluation coin.
// Compiled out with the armed fast path under `--cfg interleave`.
#[cfg_attr(interleave, allow(dead_code))]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Evaluate the failpoint at `site`.
///
/// Disarmed fast path: **one relaxed atomic load**, `None`. Armed, the
/// site's evaluation ordinal is drawn and the seeded schedule decides
/// whether (and which) [`Fault`] fires. Callers translate the fault into
/// their site's failure mode; for [`Fault::Panic`] they call
/// [`injected_panic`] *inside* an [`isolate`] region.
#[cfg(not(interleave))]
pub fn hit(site: FailSite) -> Option<Fault> {
    // Ordering: Relaxed — the master switch is advisory (see `arm`); this
    // single load IS the documented disarmed cost of a failpoint site.
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    hit_armed(site)
}

/// No-op under the interleave model checker: fault schedules would blow up
/// the explored state space without exercising any lock protocol.
#[cfg(interleave)]
pub fn hit(_site: FailSite) -> Option<Fault> {
    None
}

#[cfg(not(interleave))]
fn hit_armed(site: FailSite) -> Option<Fault> {
    // Ordering: Relaxed — advisory plan field (see `arm`). A shard-scoped
    // plan makes off-shard evaluations invisible *before* the ordinal
    // draw, so the targeted shard's fired set is a pure function of
    // `(seed, site, on-shard ordinal)` regardless of sibling traffic.
    let filter = SHARD_FILTER.load(Ordering::Relaxed);
    if filter != 0 && CURRENT_SHARD.with(|c| c.get()) != filter - 1 {
        return None;
    }
    let i = site as usize;
    // Ordering: Relaxed — plan fields are advisory configuration (see
    // `arm`); any interleaving with a racing re-arm yields a valid
    // schedule.
    let period = SITE_PERIOD[i].load(Ordering::Relaxed);
    if period == 0 {
        return None;
    }
    // Ordering: Relaxed — the ordinal counter only needs per-evaluation
    // uniqueness; nothing is published through it.
    let n = SITE_HITS[i].fetch_add(1, Ordering::Relaxed);
    // Ordering: Relaxed — limit/fire reads are advisory; an off-by-one
    // race against a concurrent fire only shifts which evaluation is the
    // last to fire.
    let limit = SITE_LIMIT[i].load(Ordering::Relaxed);
    if limit != 0 && SITE_FIRES[i].load(Ordering::Relaxed) >= limit {
        return None;
    }
    let coin = mix(SEED
        // Ordering: Relaxed — seed is advisory configuration (see `arm`).
        .load(Ordering::Relaxed)
        .wrapping_add((i as u64).wrapping_mul(0xa076_1d64_78bd_642f))
        .wrapping_add(n.wrapping_mul(0xe703_7ed1_a0b4_28db)));
    if !coin.is_multiple_of(period) {
        return None;
    }
    // Ordering: Relaxed — telemetry tally (see `fires`).
    SITE_FIRES[i].fetch_add(1, Ordering::Relaxed);
    // Attribute the fire to the in-flight request's flight-recorder
    // summary (DESIGN.md §5j); a no-op when no request scope is open.
    crate::trace::flightrec::note_fault(site as u8 + 1);
    // Ordering: Relaxed — advisory configuration read (see `arm`).
    Some(Fault::decode(SITE_ACTION[i].load(Ordering::Relaxed)))
}

/// Marker prefix on every injected panic's payload, so panic hooks (and
/// humans reading chaos-test logs) can tell deliberate faults from real
/// bugs.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// Panic with a recognizable payload for a fired [`Fault::Panic`]. Callers
/// must be running inside [`isolate`]; the engine turns the caught payload
/// into a typed error and quarantines the session.
pub fn injected_panic(site: FailSite) -> ! {
    // lint: allow(no-unwrap) — this IS the deliberate injected panic; every
    // caller is contractually inside a fault::isolate region
    panic!("{INJECTED_PANIC_PREFIX} {}", site.name())
}

/// Run `f`, converting an escaped panic into `Err(payload message)`.
///
/// This is the **only** first-party home of `catch_unwind` (lint rule
/// `no-catch-unwind`): centralizing it keeps the unwind boundary auditable
/// and forces every caller through the quarantine/typed-error discipline.
/// `AssertUnwindSafe` is sound here because callers treat the closure's
/// state as poisoned on `Err` — the engine quarantines the session, the
/// pool discards the task slot — so no broken invariant is ever observed.
#[cfg(not(interleave))]
pub fn isolate<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic payload of unknown type".to_string()
        }
    })
}

/// Under the interleave model checker panics are real test failures, not
/// modeled faults: run the closure directly so the scheduler sees them.
#[cfg(interleave)]
pub fn isolate<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    Ok(f())
}

#[cfg(all(test, not(interleave)))]
mod tests {
    use super::*;

    // NOTE: tests that *arm* the process-global registry do not live here.
    // The lib test binary runs its tests on parallel threads, and an armed
    // plan would leak injected faults into unrelated engine tests running
    // concurrently. Every arming test lives in `tests/chaos.rs`, where the
    // whole binary serializes on one mutex. The tests below only exercise
    // the disarmed path and the panic-isolation helper, which are safe to
    // run concurrently with anything.

    #[test]
    fn disarmed_sites_never_fire() {
        assert!(!is_armed());
        for site in FailSite::ALL {
            for _ in 0..100 {
                assert_eq!(hit(site), None);
            }
        }
    }

    #[test]
    fn shard_scopes_nest_and_restore() {
        assert_eq!(current_shard(), None);
        {
            let _outer = enter_shard(2);
            assert_eq!(current_shard(), Some(2));
            {
                let _inner = enter_shard(5);
                assert_eq!(current_shard(), Some(5));
            }
            assert_eq!(current_shard(), Some(2));
            // Unwinding through an isolate region restores the outer scope.
            let _ = isolate(|| {
                let _deep = enter_shard(7);
                panic!("{INJECTED_PANIC_PREFIX} scope test");
            });
            assert_eq!(current_shard(), Some(2));
        }
        assert_eq!(current_shard(), None);
    }

    #[test]
    fn isolate_catches_panics_and_passes_values() {
        assert_eq!(isolate(|| 41 + 1), Ok(42));
        let err = isolate(|| -> u32 { injected_panic(FailSite::PoolWorker) })
            .expect_err("injected panic must be caught");
        assert!(
            err.starts_with(INJECTED_PANIC_PREFIX),
            "payload carries the marker: {err}"
        );
        assert!(err.contains("pool_worker"));
        // Non-&'static str payloads are stringified too.
        let err = isolate(|| -> u32 { panic!("formatted {}", 7) }).expect_err("caught");
        assert_eq!(err, "formatted 7");
    }
}
