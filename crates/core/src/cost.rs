//! The TOPDOWN cost-model parameters (paper §III).
//!
//! The cost model charges the user:
//!
//! * `label_cost` (1 in the paper) for every newly revealed concept she
//!   examines after an EXPAND,
//! * `expand_cost` (1 in the paper) for executing the EXPAND action itself,
//! * 1 per citation displayed by SHOWRESULTS.
//!
//! The paper notes that raising `expand_cost` makes every expansion reveal
//! *more* concepts (an expensive click must buy more progress) — the
//! `ablation-expandcost` experiment sweeps this.

/// Which objective Heuristic-ReducedOpt optimizes when picking a cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Planner {
    /// The paper's §V TOPDOWN-EXHAUSTIVE objective, applied per EXPAND:
    /// `expand_cost + Σ_subtrees label_cost + Σ_components pE·|R|` — one
    /// label per revealed subtree plus the probability-weighted cost of the
    /// SHOWRESULTS the user will run next. Reveals the high-interest,
    /// result-fragmenting concepts in batches of a few, exactly the §IV
    /// description of what upper/lower components group.
    #[default]
    Exhaustive,
    /// The fully recursive §III expectation (Opt-EdgeCut's DP objective),
    /// where deferred exploration is damped by the upper component's
    /// EXPLORE probability. Expectation-optimal, but for goal-directed
    /// users it degenerates into peeling one concept per EXPAND on
    /// duplicate-heavy trees — the `ablation-planner` experiment
    /// quantifies the difference.
    Recursive,
}

/// Tunable constants of the BioNav cost model and algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// The objective the production heuristic optimizes per EXPAND.
    pub planner: Planner,
    /// Cost of executing an EXPAND action (paper: 1).
    pub expand_cost: f64,
    /// Cost of examining one newly revealed concept label when *tallying*
    /// a navigation (paper: 1; the 123-vs-19 numbers of the introduction
    /// count these).
    pub label_cost: f64,
    /// Label cost as seen by the *planner* (Opt-EdgeCut's recursion).
    /// The paper's §III expectation, `pX · (1 + Σ_m cost(I'(m)))`, charges
    /// the EXPAND click but no per-revealed-label term — each component's
    /// cost is already damped by its own EXPLORE probability. Keeping this
    /// at 0 reproduces the paper's batch-of-3-to-5 reveals; raising it
    /// makes the planner peel one branch at a time (swept by an ablation).
    pub planning_label_cost: f64,
    /// `|R(C)|` above which the EXPAND probability is pinned to 1
    /// (paper: 50) — users always narrow down huge components.
    pub upper_threshold: u32,
    /// `|R(C)|` below which the EXPAND probability is pinned to 0
    /// (paper: 10) — users just read small result lists.
    pub lower_threshold: u32,
    /// Maximum number of partitions `k` for Heuristic-ReducedOpt
    /// (paper: 10) — also the largest tree Opt-EdgeCut must solve
    /// in interactive time.
    pub max_partitions: usize,
    /// Retain each expansion's reduced tree and answer follow-up
    /// expansions of its sub-components from the same solved problem
    /// (§VI-B's "no need to call the algorithm again for subsequent
    /// expansions"). Off by default: re-partitioning every component gives
    /// finer granularity at ~1 ms per EXPAND; turn this on to trade cut
    /// quality for partition-free follow-ups.
    pub reuse_plans: bool,
    /// Hard cap on the tree size accepted by the exact Opt-EdgeCut solver;
    /// beyond this the `O(2^|T|)` enumeration stops being "feasible for
    /// relatively small trees" (§VI-A).
    pub max_opt_nodes: usize,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            planner: Planner::default(),
            expand_cost: 1.0,
            label_cost: 1.0,
            planning_label_cost: 0.0,
            upper_threshold: 50,
            lower_threshold: 10,
            max_partitions: 10,
            reuse_plans: false,
            max_opt_nodes: 18,
        }
    }
}

impl CostParams {
    /// Validates internal consistency; returns `self` for chaining.
    ///
    /// # Panics
    /// Panics on non-sensical settings (negative costs, inverted
    /// thresholds, `max_partitions` exceeding what Opt-EdgeCut accepts).
    pub fn validated(self) -> Self {
        assert!(self.expand_cost >= 0.0, "expand_cost must be non-negative");
        assert!(self.label_cost >= 0.0, "label_cost must be non-negative");
        assert!(
            self.planning_label_cost >= 0.0,
            "planning_label_cost must be non-negative"
        );
        assert!(
            self.lower_threshold <= self.upper_threshold,
            "lower_threshold must not exceed upper_threshold"
        );
        assert!(
            self.max_partitions >= 2,
            "at least 2 partitions are needed to cut anything"
        );
        assert!(
            self.max_partitions <= self.max_opt_nodes,
            "the reduced tree must fit the exact solver"
        );
        assert!(
            self.max_opt_nodes <= 24,
            "Opt-EdgeCut is O(2^n·2^n); beyond 24 nodes it is not interactive"
        );
        self
    }

    /// Convenience: the paper's configuration with a different `k`.
    pub fn with_max_partitions(mut self, k: usize) -> Self {
        self.max_partitions = k;
        self.validated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let p = CostParams::default().validated();
        assert_eq!(p.planner, Planner::Exhaustive);
        assert_eq!(p.expand_cost, 1.0);
        assert_eq!(p.label_cost, 1.0);
        assert_eq!(p.upper_threshold, 50);
        assert_eq!(p.lower_threshold, 10);
        assert_eq!(p.max_partitions, 10);
    }

    #[test]
    #[should_panic(expected = "lower_threshold")]
    fn inverted_thresholds_panic() {
        CostParams {
            lower_threshold: 60,
            ..CostParams::default()
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "at least 2 partitions")]
    fn degenerate_partition_count_panics() {
        CostParams {
            max_partitions: 1,
            ..CostParams::default()
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "not interactive")]
    fn oversized_opt_cap_panics() {
        CostParams {
            max_opt_nodes: 25,
            ..CostParams::default()
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "planning_label_cost")]
    fn negative_planning_label_cost_panics() {
        CostParams {
            planning_label_cost: -0.5,
            ..CostParams::default()
        }
        .validated();
    }

    #[test]
    #[should_panic(expected = "must fit the exact solver")]
    fn partitions_beyond_solver_cap_panic() {
        CostParams {
            max_partitions: 19,
            max_opt_nodes: 18,
            ..CostParams::default()
        }
        .validated();
    }

    #[test]
    fn with_max_partitions_round_trips() {
        let p = CostParams::default().with_max_partitions(6);
        assert_eq!(p.max_partitions, 6);
    }
}
