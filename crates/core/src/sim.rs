//! Oracle-user navigation simulation (paper §VIII-A methodology).
//!
//! The evaluation "assume\[s\] that the user follows a top-down navigation
//! where she always chooses the right node to expand in order to finally
//! reveal the target concept". This module implements that oracle for the
//! BioNav method (Heuristic-ReducedOpt expansion); the static baselines
//! live in [`crate::baseline`]. The headline metric, matching Fig 8, is
//! [`NavOutcome::interaction_cost`]: concepts revealed + EXPAND actions.

use std::time::Duration;

use crate::active::{ActiveTree, EdgeCut};
use crate::cost::CostParams;
use crate::edgecut::heuristic::heuristic_reduced_opt;
use crate::navtree::{NavNodeId, NavigationTree};

/// Accumulated user cost of one simulated navigation.
#[derive(Debug, Default, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NavOutcome {
    /// Concept labels examined (each newly revealed node costs 1).
    pub revealed: usize,
    /// EXPAND (and `more`) actions executed (1 each).
    pub expands: usize,
    /// Citations listed by the final SHOWRESULTS actions (1 each).
    pub results_inspected: usize,
}

impl NavOutcome {
    /// The Fig 8 metric: `revealed + expands` (SHOWRESULTS excluded — both
    /// methods pay the same for listing the target's citations).
    pub fn interaction_cost(&self) -> usize {
        self.revealed + self.expands
    }

    /// The full §III cost including SHOWRESULTS.
    pub fn total_cost(&self) -> usize {
        self.revealed + self.expands + self.results_inspected
    }
}

/// Telemetry for one EXPAND action of a BioNav navigation (feeds Figs 10
/// and 11: execution time per EXPAND and reduced-tree size).
#[derive(Debug, Clone)]
pub struct ExpandTrace {
    /// Which node was expanded.
    pub node: NavNodeId,
    /// Nodes in the expanded component before the cut.
    pub component_size: usize,
    /// Supernodes of the reduced tree the exact solver saw.
    pub reduced_size: usize,
    /// Lower roots revealed by the cut.
    pub revealed: usize,
    /// Wall-clock time of Heuristic-ReducedOpt for this EXPAND.
    pub elapsed: Duration,
    /// Whether the reveal-children fallback fired.
    pub fallback: bool,
}

/// Result of a simulated BioNav navigation.
#[derive(Debug, Clone)]
pub struct BioNavRun {
    /// The user cost tally.
    pub outcome: NavOutcome,
    /// One entry per EXPAND, in execution order.
    pub trace: Vec<ExpandTrace>,
}

/// Simulates the oracle user navigating with BioNav to every node in
/// `targets`: she repeatedly expands the component root hiding the next
/// unrevealed target until all targets are visible, then inspects each
/// target's results.
///
/// # Panics
/// Panics if a target is not a node of `nav`.
pub fn simulate_bionav(
    nav: &NavigationTree,
    params: &CostParams,
    targets: &[NavNodeId],
) -> BioNavRun {
    for &t in targets {
        assert!(
            t.index() < nav.len(),
            "target {} outside the navigation tree",
            t.0
        );
    }
    let mut active = ActiveTree::new(nav);
    let mut outcome = NavOutcome::default();
    let mut trace = Vec::new();
    let mut inspected: Vec<(NavNodeId, u32)> = Vec::new();

    for &target in targets {
        // Expand toward this target until it becomes a component root.
        let mut guard = 0usize;
        while !active.is_visible(target) {
            let root = active.component_root_of(target);
            let out = heuristic_reduced_opt(nav, &active, root, params)
                // lint: allow(no-unwrap) — !is_visible(target) means root's
                // component strictly contains target, hence ≥ 2 nodes
                .expect("a component hiding another node has ≥ 2 nodes");
            let cut = if out.cut.is_empty() {
                // Degenerate safety net; expand_component never returns an
                // empty cut for multi-node components, but a stuck loop
                // would be worse than a broad reveal.
                EdgeCut::new(nav.children(root).to_vec())
            } else {
                out.cut.clone()
            };
            outcome.expands += 1;
            outcome.revealed += cut.len();
            trace.push(ExpandTrace {
                node: root,
                component_size: active.component_size(root),
                reduced_size: out.reduced_size,
                revealed: cut.len(),
                elapsed: out.elapsed,
                fallback: out.fallback,
            });
            active
                .expand(nav, root, &cut)
                // lint: allow(no-unwrap) — the cut either came from the
                // planner (validated) or is the full child set of root
                .expect("heuristic cuts are valid");
            guard += 1;
            assert!(guard <= nav.len(), "expansion loop failed to make progress");
        }
        // SHOWRESULTS at the moment of first visibility (later expansions
        // elsewhere cannot change this component).
        if !inspected.iter().any(|&(n, _)| n == target) {
            let count = active.component_distinct(nav, target);
            inspected.push((target, count));
            outcome.results_inspected += count as usize;
        }
    }
    BioNavRun { outcome, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::simulate_static;
    use bionav_medline::corpus::{self, CorpusConfig};
    use bionav_medline::{CitationId, InvertedIndex};
    use bionav_mesh::synth::{self, SynthConfig};

    /// A mid-sized synthetic pipeline: hierarchy, corpus, one query.
    fn pipeline() -> (NavigationTree, Vec<NavNodeId>) {
        let h = synth::generate(&SynthConfig::small(77, 600)).unwrap();
        let store = corpus::generate(
            &h,
            &CorpusConfig {
                n_citations: 900,
                ..CorpusConfig::default()
            },
        );
        let index = InvertedIndex::build(&store);
        // Query the most common label word to get a big result set.
        let busiest = h
            .iter_preorder()
            .skip(1)
            .max_by_key(|&n| {
                h.node(n)
                    .descriptor()
                    .map(|d| store.observed_count(d))
                    .unwrap_or(0)
            })
            .unwrap();
        let results: Vec<CitationId> = index.query(h.node(busiest).label()).citations;
        assert!(results.len() >= 20, "query too small: {}", results.len());
        let nav = NavigationTree::build(&h, &store, &results);
        // Targets: a couple of deep nodes with results.
        let mut targets: Vec<NavNodeId> = nav
            .iter_preorder()
            .filter(|&n| nav.nav_depth(n) >= 2 && nav.results_count(n) > 0)
            .take(2)
            .collect();
        if targets.is_empty() {
            targets = vec![nav.children(NavNodeId::ROOT)[0]];
        }
        (nav, targets)
    }

    #[test]
    fn bionav_reaches_targets_and_counts_costs() {
        let (nav, targets) = pipeline();
        let run = simulate_bionav(&nav, &CostParams::default(), &targets);
        assert!(run.outcome.expands >= 1);
        assert_eq!(
            run.outcome.revealed,
            run.trace.iter().map(|t| t.revealed).sum::<usize>()
        );
        assert_eq!(run.outcome.expands, run.trace.len());
        assert!(run.outcome.results_inspected > 0);
    }

    #[test]
    fn bionav_stays_competitive_on_narrow_trees() {
        // Narrow trees are the baseline's best case (few children per
        // expand); BioNav may pay a couple of extra clicks but must stay in
        // the same ballpark. The decisive wins on bushy MeSH-scale trees
        // are asserted by `bionav_beats_static_on_bushy_trees` and the
        // workload evaluation.
        let (nav, targets) = pipeline();
        let bionav = simulate_bionav(&nav, &CostParams::default(), &targets);
        let stat = simulate_static(&nav, &targets);
        assert!(
            bionav.outcome.interaction_cost() <= 2 * stat.interaction_cost() + 10,
            "BioNav {} wildly exceeds static {}",
            bionav.outcome.interaction_cost(),
            stat.interaction_cost()
        );
    }

    #[test]
    fn bionav_beats_static_on_bushy_trees() {
        use bionav_medline::{Citation, CitationStore};
        use bionav_mesh::{ConceptHierarchy, Descriptor, DescriptorId, TreeNumber};
        // Root with 40 branches; the target hides at depth 3 of one branch.
        // Citation mass is skewed toward a few topical branches (as in real
        // query results — the paper's targets are research hot-spots): the
        // cost model then reveals the heavy branches early, while a static
        // expand pays all 40 child labels immediately.
        let mut descs = Vec::new();
        let mut id = 1u32;
        for b in 0..40u32 {
            let top = TreeNumber::parse(&format!("A{:02}", b + 1)).unwrap();
            descs.push(Descriptor::new(
                DescriptorId(id),
                format!("top{b}"),
                vec![top.clone()],
            ));
            id += 1;
            let mid = top.child("100");
            descs.push(Descriptor::new(
                DescriptorId(id),
                format!("mid{b}"),
                vec![mid.clone()],
            ));
            id += 1;
            descs.push(Descriptor::new(
                DescriptorId(id),
                format!("leaf{b}"),
                vec![mid.child("100")],
            ));
            id += 1;
        }
        let h = ConceptHierarchy::from_descriptors(&descs).unwrap();
        let mut store = CitationStore::new();
        let mut next = 1u32;
        let mut results = Vec::new();
        for d in 1..id {
            // Branch b owns descriptors 3b+1..3b+3; branches 3, 7 and 12
            // are the hot topics.
            let branch = (d - 1) / 3;
            let copies = match branch {
                7 => 25,      // the target's branch
                3 | 12 => 18, // two other hot topics
                _ => 2,       // long tail
            };
            for _ in 0..copies {
                store
                    .insert(Citation::new(
                        CitationId(next),
                        "t",
                        vec![],
                        vec![DescriptorId(d)],
                        vec![],
                    ))
                    .unwrap();
                results.push(CitationId(next));
                next += 1;
            }
        }
        let nav = NavigationTree::build(&h, &store, &results);
        let target = nav.find_by_label("leaf7").unwrap();
        let bionav = simulate_bionav(&nav, &CostParams::default(), &[target]);
        let stat = simulate_static(&nav, &[target]);
        assert!(
            bionav.outcome.interaction_cost() < stat.interaction_cost(),
            "BioNav {} must beat static {} on a bushy tree",
            bionav.outcome.interaction_cost(),
            stat.interaction_cost()
        );
    }

    #[test]
    fn visible_target_needs_no_expansion() {
        let (nav, _) = pipeline();
        let run = simulate_bionav(&nav, &CostParams::default(), &[NavNodeId::ROOT]);
        assert_eq!(run.outcome.expands, 0);
        assert_eq!(run.outcome.revealed, 0);
        assert!(run.outcome.results_inspected > 0); // SHOWRESULTS on the root
    }

    #[test]
    fn duplicate_targets_inspect_once() {
        let (nav, targets) = pipeline();
        let t = targets[0];
        let once = simulate_bionav(&nav, &CostParams::default(), &[t]);
        let twice = simulate_bionav(&nav, &CostParams::default(), &[t, t]);
        assert_eq!(
            once.outcome.results_inspected,
            twice.outcome.results_inspected
        );
    }

    #[test]
    fn recursive_planner_navigations_terminate() {
        // The literal §III planner peels one branch per EXPAND; the oracle
        // loop must still terminate within the tree-size guard.
        let (nav, targets) = pipeline();
        let params = CostParams {
            planner: crate::cost::Planner::Recursive,
            ..CostParams::default()
        };
        let run = simulate_bionav(&nav, &params, &targets);
        assert!(run.outcome.expands <= nav.len());
        assert_eq!(run.trace.len(), run.outcome.expands);
    }

    #[test]
    #[should_panic(expected = "outside the navigation tree")]
    fn foreign_targets_panic() {
        let (nav, _) = pipeline();
        simulate_bionav(&nav, &CostParams::default(), &[NavNodeId(9_999_999)]);
    }
}
